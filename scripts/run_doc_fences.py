#!/usr/bin/env python
"""Execute the ```python code fences in markdown docs so examples cannot rot.

Usage::

    PYTHONPATH=src python scripts/run_doc_fences.py docs/*.md

Each file's fences run top to bottom in one shared namespace (so a later fence
may build on an earlier one), inside a throwaway working directory.  Any
exception fails the run with the file, fence number and offending line.  Fences
tagged with a language other than ``python`` (e.g. ``bash``) are ignored, as is
any fence whose opening line is ``` ```python no-run ``` (escape hatch for
illustrative snippets).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

FENCE = re.compile(r"^```(.*)$")


def extract_fences(text: str) -> list[tuple[int, str, str]]:
    """Return (start line, language tag, body) for every fenced block."""
    fences = []
    language = None
    body: list[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = FENCE.match(line.strip())
        if match and language is None:
            language = match.group(1) or ""
            body = []
            start = number
        elif line.strip() == "```" and language is not None:
            fences.append((start, language, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    return fences


def run_file(path: Path) -> int:
    """Execute one markdown file's python fences; return the count executed."""
    namespace: dict = {"__name__": f"docfence:{path.name}"}
    executed = 0
    for start, language, body in extract_fences(path.read_text()):
        tag = language.split()[0] if language.strip() else ""
        if tag != "python" or "no-run" in language:
            continue
        try:
            code = compile(body, f"{path}:{start}", "exec")
            exec(code, namespace)  # noqa: S102 - the whole point of this script
        except Exception:
            print(f"FAILED fence at {path}:{start}", file=sys.stderr)
            traceback.print_exc()
            raise SystemExit(1)
        executed += 1
    return executed


def main(argv: list[str] | None = None) -> int:
    """Run every python fence of every given markdown file in a temp cwd."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="markdown files to execute")
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root / "src"))
    files = [Path(name).resolve() for name in args.files]
    origin = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="doc_fences_") as tmp:
        os.chdir(tmp)
        try:
            for path in files:
                count = run_file(path)
                print(f"{path.relative_to(repo_root)}: {count} python fence(s) ok")
        finally:
            os.chdir(origin)
    return 0


if __name__ == "__main__":
    sys.exit(main())
