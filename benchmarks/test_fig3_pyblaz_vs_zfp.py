"""Fig 3 — PyBlaz vs the ZFP-like codec: compression/decompression time, 2-D and 3-D."""

import pytest

from repro.codecs import get_codec
from repro.core import CompressionSettings, Compressor
from repro.experiments import fig3_zfp
from repro.simulators import gradient_array

from conftest import write_result

SIZES_2D = (64, 256, 512)
SIZES_3D = (16, 32, 64)
ZFP_BITS = (8, 16, 32)
PYBLAZ_INDEX = ("int8", "int16")


@pytest.mark.parametrize("size", SIZES_2D)
@pytest.mark.parametrize("bits", ZFP_BITS)
class TestZFP2D:
    def test_zfp_compress_2d(self, benchmark, size, bits):
        array = gradient_array((size, size))
        benchmark(get_codec("zfp", bits_per_value=bits).compress, array)

    def test_zfp_decompress_2d(self, benchmark, size, bits):
        codec = get_codec("zfp", bits_per_value=bits)
        compressed = codec.compress(gradient_array((size, size)))
        benchmark(codec.decompress, compressed)


@pytest.mark.parametrize("size", SIZES_3D)
@pytest.mark.parametrize("bits", ZFP_BITS)
class TestZFP3D:
    def test_zfp_compress_3d(self, benchmark, size, bits):
        array = gradient_array((size, size, size))
        benchmark(get_codec("zfp", bits_per_value=bits).compress, array)

    def test_zfp_decompress_3d(self, benchmark, size, bits):
        codec = get_codec("zfp", bits_per_value=bits)
        compressed = codec.compress(gradient_array((size, size, size)))
        benchmark(codec.decompress, compressed)


@pytest.mark.parametrize("size", SIZES_2D)
@pytest.mark.parametrize("index_dtype", PYBLAZ_INDEX)
class TestPyBlaz2D:
    def test_pyblaz_compress_2d(self, benchmark, size, index_dtype):
        settings = CompressionSettings(block_shape=(4, 4), float_format="float32",
                                       index_dtype=index_dtype)
        benchmark(Compressor(settings).compress, gradient_array((size, size)))

    def test_pyblaz_decompress_2d(self, benchmark, size, index_dtype):
        settings = CompressionSettings(block_shape=(4, 4), float_format="float32",
                                       index_dtype=index_dtype)
        compressor = Compressor(settings)
        compressed = compressor.compress(gradient_array((size, size)))
        benchmark(compressor.decompress, compressed)


@pytest.mark.parametrize("size", SIZES_3D)
@pytest.mark.parametrize("index_dtype", PYBLAZ_INDEX)
class TestPyBlaz3D:
    def test_pyblaz_compress_3d(self, benchmark, size, index_dtype):
        settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                       index_dtype=index_dtype)
        benchmark(Compressor(settings).compress, gradient_array((size, size, size)))

    def test_pyblaz_decompress_3d(self, benchmark, size, index_dtype):
        settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                       index_dtype=index_dtype)
        compressor = Compressor(settings)
        compressed = compressor.compress(gradient_array((size, size, size)))
        benchmark(compressor.decompress, compressed)


def test_fig3_series(benchmark, results_dir):
    """Regenerate the Fig 3 series across both dimensionalities."""
    config = fig3_zfp.Fig3Config(sizes_2d=(8, 16, 32, 64, 128, 256),
                                 sizes_3d=(8, 16, 32, 64), repeats=3)
    result = benchmark.pedantic(fig3_zfp.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig3", fig3_zfp.format_result(result))
    # times grow with size for every system (the polynomial scaling of the figure)
    for system in ("zfp ratio 8", "pyblaz ratio 8"):
        series = [r for r in result.rows if r[0] == 2 and r[2] == system and r[3] == "compress"]
        series.sort(key=lambda r: r[1])
        assert series[-1][4] >= series[0][4]
