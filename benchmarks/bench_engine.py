"""Engine fusion harness: fused plan vs sequential ops, wall-clock and decode passes.

Emits a *machine-readable* record — ``BENCH_engine.json`` at the repository
root — tracking what the lazy plan engine (:mod:`repro.engine`) buys over
op-by-op :mod:`repro.streaming.ops` calls on the six-reduction workload the
acceptance bar centres on: ``mean``, ``variance``, ``l2_norm``, ``dot``,
``covariance`` and ``cosine_similarity`` over two identically chunked stores.
Sequential evaluation sweeps the stores once per op (12 decode passes across
the pair; the two-pass statistics sweep twice); the fused plan schedules the
same folds into exactly 2 passes per store and produces bit-identical scalars
(verified per run).  A formatted table is printed to stdout and mirrored to
``benchmarks/results/bench_engine.txt``.

Each workload also times the *compiled* fused path (``Plan.execute(backend=…)``,
:mod:`repro.engine.compile`) for every available fused-pass-capable backend:
one warm-up execution pays the kernel compile (reported separately as
``compile_seconds``/``warmup_seconds``), then the recorded ``compiled_seconds``
is warm — kernels come from the signature-keyed cache.  Compiled means are
verified bit-identical to reference and every scalar within 1e-9 relative
(far inside the documented ``fused_fold_tolerance``).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # small stores only
    PYTHONPATH=src python benchmarks/bench_engine.py --check    # enforce both bars

The acceptance bars (enforced by ``--check``): fused wall-clock ≤ 0.6× the
sequential wall-clock on the 2-D headline workload, and best warm compiled
wall-clock ≤ 0.7× the interpreted fused wall-clock on the 256³ workload.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.kernels import backend_is_available
from repro.streaming import ChunkedCompressor
from repro.streaming import ops as stream_ops

#: (label, shape, slab_rows, quick)
WORKLOADS = [
    ("128x64 f32 slab16", (128, 64), 16, True),
    ("512x192 f32 slab32", (512, 192), 32, True),
    ("1024x384 f32 slab16", (1024, 384), 16, False),
    ("256x256x256 f32 slab32", (256, 256, 256), 32, False),
]

#: The acceptance workloads and bars checked by ``--check``.
HEADLINE = "1024x384 f32 slab16"
MAX_FUSED_RATIO = 0.6
COMPILED_HEADLINE = "256x256x256 f32 slab32"
MAX_COMPILED_RATIO = 0.7

#: Backends asked for a compiled fused-pass kernel (reference never compiles).
COMPILED_BACKENDS = ("gemm", "numba")

#: The six-reduction acceptance workload.
SIX_OPS = ("mean", "variance", "l2_norm", "dot", "covariance", "cosine_similarity")


def _store_pair(workdir: Path, shape: tuple[int, ...], slab_rows: int):
    """Two deterministic, identically chunked stores for one workload."""
    rng = np.random.default_rng(2023)
    settings = CompressionSettings(
        block_shape=(4,) * len(shape), float_format="float32", index_dtype="int16"
    )
    # gemm-backed *compression* only speeds store creation (untimed); the
    # reopened stores carry reference settings, so every timed sweep below
    # still reads the same bits regardless of this choice.
    chunked = ChunkedCompressor(settings, slab_rows=slab_rows, backend="gemm")
    a = np.cumsum(rng.standard_normal(shape), axis=0) * 0.05
    b = np.cumsum(rng.standard_normal(shape), axis=0) * 0.05
    return (
        chunked.compress_to_store(a, workdir / "a.pblzc"),
        chunked.compress_to_store(b, workdir / "b.pblzc"),
    )


def _sequential(store_a, store_b) -> dict:
    """The six reductions as independent streaming.ops calls (one sweep each)."""
    return {
        "mean": stream_ops.mean(store_a),
        "variance": stream_ops.variance(store_a),
        "l2_norm": stream_ops.l2_norm(store_a),
        "dot": stream_ops.dot(store_a, store_b),
        "covariance": stream_ops.covariance(store_a, store_b),
        "cosine_similarity": stream_ops.cosine_similarity(store_a, store_b),
    }


def _fused_plan(store_a, store_b):
    """The same six reductions as one fused engine plan."""
    x, y = expr.source(store_a), expr.source(store_b)
    return engine.plan({
        "mean": expr.mean(x),
        "variance": expr.variance(x),
        "l2_norm": expr.l2_norm(x),
        "dot": expr.dot(x, y),
        "covariance": expr.covariance(x, y),
        "cosine_similarity": expr.cosine_similarity(x, y),
    })


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(label: str, shape: tuple[int, ...], slab_rows: int,
                   repeats: int) -> dict:
    """Time sequential vs fused on one store pair; verify bit-identity."""
    with tempfile.TemporaryDirectory(prefix="bench_engine_") as tmp:
        workdir = Path(tmp)
        store_a, store_b = _store_pair(workdir, shape, slab_rows)
        with store_a, store_b:
            plan = _fused_plan(store_a, store_b)

            # decode-pass accounting straight off the stores' read counters
            before = (store_a.chunks_read, store_b.chunks_read)
            sequential_values = _sequential(store_a, store_b)
            sequential_passes = (
                (store_a.chunks_read - before[0]) // store_a.n_chunks,
                (store_b.chunks_read - before[1]) // store_b.n_chunks,
            )
            before = (store_a.chunks_read, store_b.chunks_read)
            fused_values = plan.execute()
            fused_passes = (
                (store_a.chunks_read - before[0]) // store_a.n_chunks,
                (store_b.chunks_read - before[1]) // store_b.n_chunks,
            )
            mismatched = [op for op in SIX_OPS
                          if sequential_values[op] != fused_values[op]]
            if mismatched:
                raise AssertionError(
                    f"fused results diverged from sequential on {mismatched}"
                )

            sequential_seconds = _best_seconds(
                lambda: _sequential(store_a, store_b), repeats
            )
            fused_seconds = _best_seconds(plan.execute, repeats)
            compiled = [
                _bench_compiled(name, plan, fused_values, fused_seconds, repeats)
                for name in COMPILED_BACKENDS
            ]
            return {
                "workload": label,
                "shape": list(shape),
                "slab_rows": slab_rows,
                "n_chunks": store_a.n_chunks,
                "operations": list(SIX_OPS),
                "sequential_seconds": sequential_seconds,
                "fused_seconds": fused_seconds,
                "fused_over_sequential": fused_seconds / sequential_seconds,
                "sequential_decode_passes": list(sequential_passes),
                "fused_decode_passes": list(fused_passes),
                "plan_passes": plan.n_passes,
                "bit_identical": True,
                "compiled": compiled,
            }


def _bench_compiled(name: str, plan, reference_values: dict,
                    fused_seconds: float, repeats: int) -> dict:
    """Warm then time one compiled backend; verify it against reference.

    The first ``execute(backend=name)`` pays kernel compilation — its wall
    time and the kernels' own ``compile_seconds`` are recorded separately and
    **excluded** from ``compiled_seconds``, which times only warm (cached)
    executions, matching the warm-up contract in ``docs/engine.md``.
    """
    if not backend_is_available(name):
        return {"backend": name, "available": False,
                "reason": "backend not importable in this environment"}
    warmup_start = time.perf_counter()
    compiled_values = plan.execute(backend=name)
    warmup_seconds = time.perf_counter() - warmup_start
    stats = dict(plan.last_execution)
    max_rel = max(
        abs(compiled_values[op] - reference_values[op])
        / max(abs(reference_values[op]), 1e-300)
        for op in SIX_OPS
    )
    if max_rel > 1e-9:
        raise AssertionError(
            f"{name} compiled results drifted {max_rel:.3e} from reference"
        )
    if compiled_values["mean"] != reference_values["mean"]:
        raise AssertionError(f"{name} compiled mean is not bit-identical")
    compiled_seconds = _best_seconds(
        lambda: plan.execute(backend=name), repeats
    )
    return {
        "backend": name,
        "available": True,
        "compiled_seconds": compiled_seconds,
        "compiled_over_fused": compiled_seconds / fused_seconds,
        "warmup_seconds": warmup_seconds,
        "compile_seconds": stats["compile_seconds"],
        "compiled_groups": stats["compiled_groups"],
        "interpreted_groups": stats["interpreted_groups"],
        "max_rel_vs_reference": max_rel,
        "mean_bit_identical": True,
    }


def format_table(results: list[dict]) -> str:
    header = (
        f"{'workload':22s} {'chunks':>6s} {'sequential s':>13s} {'fused s':>9s} "
        f"{'ratio':>6s} {'decode passes (a,b)':>21s}"
    )
    lines = [header, "-" * len(header)]
    for record in results:
        passes = (f"{record['sequential_decode_passes']}"
                  f"->{record['fused_decode_passes']}")
        lines.append(
            f"{record['workload']:22s} {record['n_chunks']:6d} "
            f"{record['sequential_seconds']:13.4f} {record['fused_seconds']:9.4f} "
            f"{record['fused_over_sequential']:6.2f} {passes:>21s}"
        )
        for row in record.get("compiled", ()):
            if not row.get("available"):
                lines.append(f"  compiled[{row['backend']}]: unavailable "
                             f"({row['reason']})")
                continue
            lines.append(
                f"  compiled[{row['backend']}]: {row['compiled_seconds']:.4f}s "
                f"({row['compiled_over_fused']:.2f}x fused; compile "
                f"{row['compile_seconds'] * 1e3:.2f}ms excluded, warm-up "
                f"{row['warmup_seconds']:.4f}s)"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_engine.json at the repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="small stores only (for CI smoke; skips the headline workload)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per timing; the best is recorded (default 3)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless fused wall-clock ≤ {MAX_FUSED_RATIO}x "
                             f"sequential on the 6-op headline workload AND the "
                             f"best warm compiled wall-clock ≤ {MAX_COMPILED_RATIO}x "
                             f"interpreted fused on {COMPILED_HEADLINE!r}")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo_root / "BENCH_engine.json"

    results: list[dict] = []
    for label, shape, slab_rows, quick in WORKLOADS:
        if args.quick and not quick:
            continue
        print(f"benchmarking {label} ...", flush=True)
        results.append(bench_workload(label, shape, slab_rows, args.repeats))

    payload = {
        "harness": "benchmarks/bench_engine.py",
        "units": {"seconds": "best of --repeats wall-clock",
                  "decode_passes": "store sweeps per (store_a, store_b)"},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(results)
    print()
    print(table)
    print(f"\nwrote {output}")
    results_dir = repo_root / "benchmarks" / "results"
    if results_dir.is_dir():
        (results_dir / "bench_engine.txt").write_text(table + "\n")

    if args.check:
        headline = [r for r in results if r["workload"] == HEADLINE]
        if not headline:
            print(f"check failed: headline workload {HEADLINE!r} was not run "
                  "(did you pass --quick?)", file=sys.stderr)
            return 1
        ratio = headline[0]["fused_over_sequential"]
        if ratio > MAX_FUSED_RATIO:
            print(f"check failed: fused/sequential {ratio:.2f} > {MAX_FUSED_RATIO}",
                  file=sys.stderr)
            return 1
        print(f"check passed: fused/sequential {ratio:.2f} ≤ {MAX_FUSED_RATIO}")

        compiled_headline = [r for r in results
                             if r["workload"] == COMPILED_HEADLINE]
        if not compiled_headline:
            print(f"check failed: compiled headline workload "
                  f"{COMPILED_HEADLINE!r} was not run (did you pass --quick?)",
                  file=sys.stderr)
            return 1
        available = [row for row in compiled_headline[0]["compiled"]
                     if row.get("available")]
        if not available:
            print("check failed: no compiled fused-pass backend was available",
                  file=sys.stderr)
            return 1
        best = min(available, key=lambda row: row["compiled_over_fused"])
        if best["compiled_over_fused"] > MAX_COMPILED_RATIO:
            print(f"check failed: compiled/fused "
                  f"{best['compiled_over_fused']:.2f} ({best['backend']}) > "
                  f"{MAX_COMPILED_RATIO}", file=sys.stderr)
            return 1
        print(f"check passed: compiled/fused {best['compiled_over_fused']:.2f} "
              f"({best['backend']}) ≤ {MAX_COMPILED_RATIO}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
