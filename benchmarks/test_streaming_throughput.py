"""Streaming-compression throughput: the slab-size ablation.

Sweeps the ``ChunkedCompressor`` slab height over a fixed 3-D field and reports
throughput against the one-shot compressor, plus a process-fan-out row.  Two
things are being demonstrated:

* exactness — every slab size must reproduce the one-shot ``maxima``/``indices``
  bit for bit (asserted, not just reported);
* the throughput shape — tiny slabs pay per-slab overhead, huge slabs converge to
  the one-shot path, and the sweet spot in between is what the CLI defaults to.

The formatted table lands in ``benchmarks/results/streaming_throughput.txt``.
"""

import numpy as np

from repro.core import CompressionSettings, Compressor
from repro.experiments.common import ExperimentResult, median_time
from repro.streaming import ChunkedCompressor

from conftest import write_result

_SHAPE = (256, 48, 32)
_SLAB_ROWS = (8, 32, 64, 128, 256)


def _field() -> np.ndarray:
    rng = np.random.default_rng(2023)
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, s) for s in _SHAPE], indexing="ij")
    field = sum(np.sin(2 * np.pi * (k + 1) * g) for k, g in enumerate(grids))
    return field + 0.02 * rng.standard_normal(_SHAPE)


def run_streaming_throughput() -> ExperimentResult:
    settings = CompressionSettings(
        block_shape=(4, 4, 4), float_format="float32", index_dtype="int16"
    )
    array = _field()
    megabytes = array.nbytes / 1e6
    reference = Compressor(settings).compress(array)

    rows = []
    one_shot_seconds = median_time(lambda: Compressor(settings).compress(array))
    rows.append(("one-shot", "-", True, one_shot_seconds, megabytes / one_shot_seconds))

    for slab_rows in _SLAB_ROWS:
        chunked = ChunkedCompressor(settings, slab_rows=slab_rows)
        result = chunked.compress(array)
        identical = bool(
            np.array_equal(result.maxima, reference.maxima)
            and np.array_equal(result.indices, reference.indices)
        )
        seconds = median_time(lambda: chunked.compress(array))
        rows.append(
            (f"streamed slab={slab_rows}", slab_rows, identical, seconds,
             megabytes / seconds)
        )

    fanout = ChunkedCompressor(settings, slab_rows=32, n_workers=2)
    fanout_result = fanout.compress(array)
    fanout_identical = bool(
        np.array_equal(fanout_result.maxima, reference.maxima)
        and np.array_equal(fanout_result.indices, reference.indices)
    )
    fanout_seconds = median_time(lambda: fanout.compress(array), repeats=1)
    rows.append(
        ("streamed slab=32 ×2 procs", 32, fanout_identical, fanout_seconds,
         megabytes / fanout_seconds)
    )

    return ExperimentResult(
        name="Streaming throughput — slab-size ablation",
        columns=("path", "slab rows", "identical to one-shot", "seconds", "MB/s"),
        rows=rows,
        metadata={"shape": _SHAPE, "input MB": round(megabytes, 2)},
    )


def test_streaming_throughput(benchmark, results_dir):
    """Every slab size is bit-identical to one-shot; the table records throughput."""
    result = benchmark.pedantic(run_streaming_throughput, rounds=1, iterations=1)
    write_result(results_dir, "streaming_throughput", result.to_text())
    assert all(row[2] for row in result.rows)
    # streamed throughput stays within an order of magnitude of one-shot
    one_shot = result.rows[0][4]
    best_streamed = max(row[4] for row in result.rows[1:])
    assert best_streamed > one_shot / 10
