"""§IV-D — error-bound validation bench."""

import pytest

from repro.experiments import error_bounds

from conftest import write_result


def test_error_bounds_hold(benchmark, results_dir):
    """Regenerate the §IV-D bound table; every observed/bound ratio must be <= 1."""
    result = benchmark.pedantic(error_bounds.run, rounds=1, iterations=1)
    write_result(results_dir, "error_bounds", error_bounds.format_result(result))
    for index_type, binning_ratio, linf_ratio, l2_low, l2_high in result.rows:
        assert binning_ratio <= 1.0 + 1e-9, index_type
        assert linf_ratio <= 1.0 + 1e-9, index_type
        assert l2_low == pytest.approx(1.0, rel=1e-6)
        assert l2_high == pytest.approx(1.0, rel=1e-6)


def test_error_bounds_with_pruning(benchmark, results_dir):
    """Same validation with half the coefficients pruned (covers the pruning term)."""
    config = error_bounds.ErrorBoundsConfig(keep_fraction=0.5)
    result = benchmark.pedantic(error_bounds.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "error_bounds_pruned", error_bounds.format_result(result))
    for index_type, binning_ratio, linf_ratio, l2_low, l2_high in result.rows:
        assert binning_ratio <= 1.0 + 1e-9, index_type
        assert linf_ratio <= 1.0 + 1e-9, index_type
        assert l2_low == pytest.approx(1.0, rel=1e-6)
        assert l2_high == pytest.approx(1.0, rel=1e-6)
