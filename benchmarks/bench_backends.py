"""Kernel-backend throughput harness: shapes × backends × compress/decompress.

Unlike the pytest-benchmark figures, this harness emits a *machine-readable*
record — ``BENCH_backends.json`` at the repository root — so the throughput
trajectory of the kernel backends can be tracked across commits (and uploaded
as a CI artifact).  A formatted table is printed to stdout and mirrored to
``benchmarks/results/bench_backends.txt`` alongside the text ablations.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_backends.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_backends.py --quick    # small shapes only

The headline workload is the 256³ float32 DCT 4³-block compression the paper's
GPU argument centres on; the acceptance bar (enforced by ``--check``) is the
``gemm`` backend compressing it ≥ 3× faster than ``reference``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import CompressionSettings, Compressor
from repro.kernels import available_backends, backend_is_available, get_backend_class

#: (label, shape, block, transform, float_format, index_dtype, quick)
WORKLOADS = [
    ("64^3 float32 dct 4^3", (64, 64, 64), (4, 4, 4), "dct", "float32", "int16", True),
    ("1024^2 float32 dct 8^2", (1024, 1024), (8, 8), "dct", "float32", "int16", True),
    ("128^3 float64 dct 4^3", (128, 128, 128), (4, 4, 4), "dct", "float64", "int16", False),
    ("256^3 float32 dct 4^3", (256, 256, 256), (4, 4, 4), "dct", "float32", "int16", False),
]

#: The acceptance workload and bar checked by ``--check``.
HEADLINE = "256^3 float32 dct 4^3"
HEADLINE_MIN_SPEEDUP = 3.0


def _workload_array(shape: tuple[int, ...], float_format: str) -> np.ndarray:
    """Deterministic compressible input at the workload's native dtype."""
    rng = np.random.default_rng(2023)
    array = np.cumsum(rng.standard_normal(shape), axis=0) * 0.05
    dtype = np.float32 if float_format in ("bfloat16", "float16", "float32") else np.float64
    return np.ascontiguousarray(array, dtype=dtype)


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(label, shape, block, transform, float_format, index_dtype, repeats):
    """Time every available backend on one workload; one dict per backend."""
    settings = CompressionSettings(
        block_shape=block, float_format=float_format,
        index_dtype=index_dtype, transform=transform,
    )
    array = _workload_array(shape, float_format)
    megabytes = array.nbytes / 1e6
    records = []
    for backend in available_backends():
        base = {
            "workload": label,
            "shape": list(shape),
            "block": list(block),
            "transform": transform,
            "float_format": float_format,
            "index_dtype": index_dtype,
            "backend": backend,
            "input_megabytes": megabytes,
        }
        if not backend_is_available(backend):
            records.append(
                {**base, "available": False,
                 "reason": get_backend_class(backend).unavailable_reason()}
            )
            continue
        compressor = Compressor(settings, backend=backend)
        warm = compressor.compress(array[: block[0] * 2])  # noqa: F841 — JIT/cache warm-up
        compressed = compressor.compress(array)
        compress_seconds = _best_seconds(lambda: compressor.compress(array), repeats)
        decompress_seconds = _best_seconds(lambda: compressor.decompress(compressed), repeats)
        records.append(
            {
                **base,
                "available": True,
                "compress_seconds": compress_seconds,
                "decompress_seconds": decompress_seconds,
                "compress_mb_per_s": megabytes / compress_seconds,
                "decompress_mb_per_s": megabytes / decompress_seconds,
            }
        )
    reference = next(r for r in records if r["backend"] == "reference")
    for record in records:
        if record.get("available"):
            record["compress_speedup_vs_reference"] = (
                reference["compress_seconds"] / record["compress_seconds"]
            )
            record["decompress_speedup_vs_reference"] = (
                reference["decompress_seconds"] / record["decompress_seconds"]
            )
    return records


def format_table(results: list[dict]) -> str:
    header = (
        f"{'workload':24s} {'backend':10s} {'compress MB/s':>14s} "
        f"{'decompress MB/s':>16s} {'speedup':>8s}"
    )
    lines = [header, "-" * len(header)]
    for record in results:
        if not record.get("available", False):
            lines.append(
                f"{record['workload']:24s} {record['backend']:10s} "
                f"{'skipped (' + (record.get('reason') or 'unavailable') + ')':>40s}"
            )
            continue
        lines.append(
            f"{record['workload']:24s} {record['backend']:10s} "
            f"{record['compress_mb_per_s']:14.1f} {record['decompress_mb_per_s']:16.1f} "
            f"{record['compress_speedup_vs_reference']:7.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_backends.json at the repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="small shapes only (for CI smoke; skips the headline workload)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per timing; the best is recorded (default 3)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless gemm compresses the headline workload "
                             f"≥{HEADLINE_MIN_SPEEDUP}x faster than reference")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo_root / "BENCH_backends.json"

    results: list[dict] = []
    for label, shape, block, transform, float_format, index_dtype, quick in WORKLOADS:
        if args.quick and not quick:
            continue
        print(f"benchmarking {label} ...", flush=True)
        results.extend(
            bench_workload(label, shape, block, transform, float_format, index_dtype,
                           args.repeats)
        )

    payload = {
        "harness": "benchmarks/bench_backends.py",
        "units": {"throughput": "MB/s of input at its native dtype",
                  "seconds": "best of --repeats wall-clock"},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(results)
    print()
    print(table)
    print(f"\nwrote {output}")
    results_dir = repo_root / "benchmarks" / "results"
    if results_dir.is_dir():
        (results_dir / "bench_backends.txt").write_text(table + "\n")

    if args.check:
        headline = [r for r in results if r["workload"] == HEADLINE and r["backend"] == "gemm"]
        if not headline:
            print(f"check failed: headline workload {HEADLINE!r} was not run "
                  "(did you pass --quick?)", file=sys.stderr)
            return 1
        speedup = headline[0]["compress_speedup_vs_reference"]
        if speedup < HEADLINE_MIN_SPEEDUP:
            print(f"check failed: gemm speedup {speedup:.2f}x < {HEADLINE_MIN_SPEEDUP}x",
                  file=sys.stderr)
            return 1
        print(f"check passed: gemm speedup {speedup:.2f}x ≥ {HEADLINE_MIN_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
