"""Sharded-store harness: incremental partial-served queries vs full sweeps.

Emits a *machine-readable* record — ``BENCH_sharded.json`` at the repository
root — measuring what persisted per-shard fold partials
(:mod:`repro.streaming.sharded`) buy over a growing store.  A base store is
sharded once, then grown by appending fractions of its size; after each growth
step the same reduction workload (``mean`` + ``l2_norm`` + ``dot(x, x)``, one
fused plan) runs two ways over freshly opened handles:

* **full** — ``ShardedStore(use_partials=False)``: the plan sweeps and decodes
  every chunk of every shard, the cost an unsharded store pays per query.
* **incremental** — partials enabled: the plan serves each fold from the
  persisted per-shard vectors, decoding nothing; only the *append* paid a
  sweep of the new shard (O(new chunks)).

Both answers are asserted bit-identical before any timing is trusted.  The
harness also records the append cost itself (compress + partial update) next
to the cost of re-sharding from scratch, the O(new)-vs-O(all) ingest story.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sharded.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_sharded.py --check    # enforce the bar

The acceptance bar (enforced by ``--check``) is incremental query time ≤ 0.3×
the full-sweep time at every growth fraction ≤ 10%.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.streaming import ShardedStore, append_shard, init_sharded_store

#: Growth fractions swept: appended rows as a fraction of the base rows.
GROWTH_FRACTIONS = [0.05, 0.10, 0.25]

#: Incremental must cost at most this fraction of a full sweep at ≤10% growth.
MAX_INCREMENTAL_RATIO = 0.3

#: Growth fractions the --check bar applies to.
CHECK_MAX_GROWTH = 0.10


def _base_array(shape: tuple[int, ...]) -> np.ndarray:
    """Deterministic smooth field (same generator family as the other benches)."""
    rng = np.random.default_rng(2023)
    return (np.cumsum(rng.standard_normal(shape), axis=0) * 0.05).astype(
        np.float64
    )


def _growth_array(shape: tuple[int, ...], step: int) -> np.ndarray:
    """Deterministic appended rows, distinct per growth step."""
    rng = np.random.default_rng(7000 + step)
    return (np.cumsum(rng.standard_normal(shape), axis=0) * 0.05).astype(
        np.float64
    )


def _workload(store) -> "engine.Plan":
    """One fused plan of the incremental-servable reductions over ``store``."""
    x = expr.source(store)
    return engine.plan({
        "mean": expr.mean(x),
        "l2_norm": expr.l2_norm(x),
        "dot_self": expr.dot(x, x),
    })


def _timed_query(path: Path, *, use_partials: bool,
                 repeats: int) -> tuple[dict, float, int, int]:
    """Best-of-``repeats`` wall time for the workload on a fresh handle.

    Returns ``(values, seconds, chunks_read, incremental_groups)``.  A fresh
    handle per repeat keeps the comparison honest: nothing is served from a
    warm in-process object, so "full" really decodes every chunk again.
    """
    best = float("inf")
    values: dict = {}
    chunks_read = incremental = 0
    for _ in range(repeats):
        with ShardedStore(path, use_partials=use_partials) as store:
            fused = _workload(store)  # plan build is untimed: same both modes
            start = time.perf_counter()
            values = fused.execute()
            seconds = time.perf_counter() - start
            chunks_read = store.chunks_read
            incremental = fused.last_execution["incremental_groups"]
        best = min(best, seconds)
    return values, best, chunks_read, incremental


def bench_growth(path: Path, base_rows: int, tail_shape: tuple[int, ...],
                 fraction: float, step: int, slab_rows: int,
                 repeats: int) -> dict:
    """Append ``fraction`` of the base rows, then time both query modes."""
    block_rows = 4  # appended rows stay block-aligned so further appends work
    grown_rows = max(block_rows,
                     int(round(base_rows * fraction / block_rows)) * block_rows)
    grown = _growth_array((grown_rows,) + tail_shape, step)

    start = time.perf_counter()
    append_shard(path, grown, slab_rows=slab_rows).close()
    append_seconds = time.perf_counter() - start

    full_values, full_seconds, full_chunks, full_inc = _timed_query(
        path, use_partials=False, repeats=repeats
    )
    inc_values, inc_seconds, inc_chunks, inc_groups = _timed_query(
        path, use_partials=True, repeats=repeats
    )
    if full_values != inc_values:
        raise AssertionError(
            f"incremental answers diverged from the full sweep at growth "
            f"{fraction}: {inc_values} != {full_values}"
        )
    if inc_groups == 0:
        raise AssertionError(
            "incremental mode fell back to sweeping (stale partials?)"
        )
    with ShardedStore(path) as store:
        n_shards, n_chunks, total_rows = (store.n_shards, store.n_chunks,
                                          store.shape[0])
    return {
        "growth_fraction": fraction,
        "appended_rows": grown_rows,
        "total_rows": total_rows,
        "shards": n_shards,
        "chunks": n_chunks,
        "append_seconds": append_seconds,
        "full_seconds": full_seconds,
        "full_chunks_read": full_chunks,
        "incremental_seconds": inc_seconds,
        "incremental_chunks_read": inc_chunks,
        "incremental_over_full": inc_seconds / full_seconds,
        "bit_identical": True,  # asserted above
    }


def format_table(results: list[dict]) -> str:
    header = (
        f"{'growth':>7s} {'rows':>7s} {'chunks':>7s} {'append ms':>10s} "
        f"{'full ms':>9s} {'incr ms':>9s} {'incr/full':>10s} {'decodes':>8s}"
    )
    lines = [header, "-" * len(header)]
    for record in results:
        lines.append(
            f"{record['growth_fraction'] * 100:6.0f}% {record['total_rows']:7d} "
            f"{record['chunks']:7d} {record['append_seconds'] * 1000:10.2f} "
            f"{record['full_seconds'] * 1000:9.2f} "
            f"{record['incremental_seconds'] * 1000:9.2f} "
            f"{record['incremental_over_full']:10.3f} "
            f"{record['incremental_chunks_read']:8d}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_sharded.json at "
                             "the repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="small store and fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per cell, best-of (default: 5, "
                             "quick: 3)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless incremental ≤ "
                             f"{MAX_INCREMENTAL_RATIO}x full-sweep time at "
                             f"every growth ≤ {CHECK_MAX_GROWTH:.0%}")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo_root / "BENCH_sharded.json"
    shape, slab_rows = ((1024, 96), 16) if args.quick else ((2048, 128), 32)
    repeats = args.repeats or (3 if args.quick else 5)

    settings = CompressionSettings(
        block_shape=(4, 4), float_format="float32", index_dtype="int16"
    )
    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_sharded_") as tmp:
        path = Path(tmp) / "grown.shards"
        base = _base_array(shape)
        start = time.perf_counter()
        init_sharded_store(path, base, settings, slab_rows=slab_rows).close()
        init_seconds = time.perf_counter() - start
        for step, fraction in enumerate(GROWTH_FRACTIONS):
            print(f"benchmarking growth {fraction:.0%} ...", flush=True)
            results.append(
                bench_growth(path, shape[0], shape[1:], fraction, step,
                             slab_rows, repeats)
            )

    payload = {
        "harness": "benchmarks/bench_sharded.py",
        "units": {
            "seconds": "best-of-repeats wall seconds on a fresh store handle",
            "decodes": "chunks decoded during the timed query",
        },
        "workload": {
            "base_shape": list(shape),
            "slab_rows": slab_rows,
            "repeats": repeats,
            "init_seconds": init_seconds,
            "operations": ["mean", "l2_norm", "dot_self"],
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(results)
    print()
    print(table)
    print(f"\nwrote {output}")
    results_dir = repo_root / "benchmarks" / "results"
    if results_dir.is_dir():
        (results_dir / "bench_sharded.txt").write_text(table + "\n")

    if args.check:
        gated = [record for record in results
                 if record["growth_fraction"] <= CHECK_MAX_GROWTH]
        worst = max(gated, key=lambda record: record["incremental_over_full"])
        ratio = worst["incremental_over_full"]
        if ratio > MAX_INCREMENTAL_RATIO:
            print(f"check failed: incremental/full {ratio:.3f} > "
                  f"{MAX_INCREMENTAL_RATIO} at growth "
                  f"{worst['growth_fraction']:.0%}", file=sys.stderr)
            return 1
        print(f"check passed: incremental/full {ratio:.3f} ≤ "
              f"{MAX_INCREMENTAL_RATIO} at every growth ≤ "
              f"{CHECK_MAX_GROWTH:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
