"""Shared infrastructure for the benchmark suite.

Each ``benchmarks/test_*.py`` file regenerates one table or figure of the paper:
the pytest-benchmark timings are the figure's data points for the performance
figures (Fig 2, 3, 7), and the experiment harnesses' formatted tables are written to
``benchmarks/results/<name>.txt`` so they can be inspected and copied into
EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where experiment tables are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Save a formatted experiment table under ``benchmarks/results/``."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2023)
