"""§IV-C — regenerate the compression-ratio worked examples and sweep."""

import pytest

from repro.core import CompressionSettings, Compressor
from repro.core.codec import serialize
from repro.experiments import compression_ratio
from repro.simulators import gradient_array

from conftest import write_result


def test_ratio_sweep_table(benchmark, results_dir):
    """Regenerate the §IV-C ratio table and check the two worked examples."""
    result = benchmark.pedantic(compression_ratio.run, rounds=1, iterations=1)
    write_result(results_dir, "compression_ratio", compression_ratio.format_result(result))
    examples = compression_ratio.paper_examples()
    assert examples[0][2] == pytest.approx(2.91, abs=0.01)
    assert examples[1][2] == pytest.approx(10.66, abs=0.01)


@pytest.mark.parametrize("index_dtype,expected_ratio", [("int8", 8.0), ("int16", 4.0)])
def test_serialized_stream_matches_accounting(benchmark, index_dtype, expected_ratio):
    """The actual byte stream approaches the asymptotic ratio for large arrays."""
    settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                   index_dtype=index_dtype)
    compressor = Compressor(settings)
    array = gradient_array((64, 64, 64))
    compressed = compressor.compress(array)
    stream = benchmark(serialize, compressed)
    achieved = array.size * 8 / len(stream)
    assert achieved == pytest.approx(expected_ratio, rel=0.15)
