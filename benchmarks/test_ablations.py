"""Design-choice ablation benches (DESIGN.md §4).

Five studies: the differentiation step PyBlaz drops relative to Blaz, the
orthonormal transform choice, the execution backend, the bin-index width, and
the cross-codec sweep through the registry (ratio/error/throughput of every
registered codec in one table).
"""

import numpy as np
import pytest

from repro.codecs import available_codecs
from repro.core import CompressionSettings, Compressor
from repro.experiments import ablations
from repro.parallel import LoopExecutor, ThreadedExecutor

from conftest import write_result


def test_ablation_differentiation(benchmark, results_dir):
    """Skipping Blaz's differentiation step keeps compressed-space addition accurate."""
    result = benchmark.pedantic(ablations.run_differentiation, rounds=1, iterations=1)
    write_result(results_dir, "ablation_differentiation", ablations.format_result(result))
    values = dict(result.rows)
    assert values["pyblaz compressed-space add"] <= values["blaz compressed-space add"]


def test_ablation_transforms(benchmark, results_dir):
    """DCT vs Haar vs identity at equal storage cost."""
    result = benchmark.pedantic(ablations.run_transforms, rounds=1, iterations=1)
    write_result(results_dir, "ablation_transforms", ablations.format_result(result))
    by_transform = {row[0]: row for row in result.rows}
    # decorrelating transforms keep the mean-family operations available; identity
    # has no DC property, which the table records as NaN
    assert np.isnan(by_transform["identity"][3])
    assert by_transform["dct"][3] < 1e-2


def test_ablation_backends(benchmark, results_dir):
    """Vectorized vs thread-pool vs per-block loop execution: identical results."""
    result = benchmark.pedantic(ablations.run_backends, rounds=1, iterations=1)
    write_result(results_dir, "ablation_backends", ablations.format_result(result))
    assert all(row[1] for row in result.rows)


def test_ablation_index_width(benchmark, results_dir):
    """int8 … int64 against round-trip error and compression ratio."""
    result = benchmark.pedantic(ablations.run_index_width, rounds=1, iterations=1)
    write_result(results_dir, "ablation_index_width", ablations.format_result(result))
    errors = [row[1] for row in result.rows]
    ratios = [row[2] for row in result.rows]
    assert errors == sorted(errors, reverse=True)  # wider indices → monotonically lower error
    assert ratios == sorted(ratios, reverse=True)  # and lower ratio


def test_ablation_codecs(benchmark, results_dir):
    """One registry-driven table replaces the per-baseline ratio/error loops."""
    result = benchmark.pedantic(ablations.run_codecs, rounds=1, iterations=1)
    write_result(results_dir, "ablation_codecs", ablations.format_result(result))
    by_codec = {row[0]: row for row in result.rows}
    # every registered 2-D-capable codec appears — third-party registrations too
    # (the sweep probes a 2-D field, so codecs without 2-D support are skipped)
    from repro.codecs import get_codec

    expected = {n for n in available_codecs() if 2 in get_codec(n).capabilities.ndims}
    assert set(by_codec) == expected
    for name, (_, ratio, error, bound, t_compress, t_decompress) in by_codec.items():
        assert ratio > 0 and t_compress > 0 and t_decompress > 0, name
        assert error <= bound + 1e-12, name  # the documented round-trip bound holds
    assert by_codec["huffman"][2] == 0.0  # lossless
    assert by_codec["sz"][2] <= by_codec["sz"][3]  # the SZ error-bound guarantee


@pytest.mark.parametrize("backend", ["vectorized", "threads", "loop"])
def test_backend_compress_cost(benchmark, backend):
    """Wall-clock cost of each execution backend on a mid-size 3-D array."""
    settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                   index_dtype="int16")
    executor = {"vectorized": None, "threads": ThreadedExecutor(4), "loop": LoopExecutor()}[backend]
    compressor = Compressor(settings, executor=executor)
    rng = np.random.default_rng(0)
    array = rng.random((48, 48, 48))
    benchmark(compressor.compress, array)
