"""Fig 5 — error of compressed-space statistics vs compression settings on MRI-like data."""

import math

import pytest

from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import fig5_lgg
from repro.simulators import generate_mri_dataset

from conftest import write_result


@pytest.fixture(scope="module")
def volume():
    return generate_mri_dataset(n_volumes=1, plane_size=128, seed=7)[0].data


@pytest.mark.parametrize("block_shape", [(4, 4, 4), (8, 8, 8), (4, 16, 16)])
@pytest.mark.parametrize("index_dtype", ["int8", "int16"])
def test_compress_mri_volume(benchmark, volume, block_shape, index_dtype):
    """Compression cost of one FLAIR-like volume under the Fig 5 setting grid."""
    settings = CompressionSettings(block_shape=block_shape, float_format="float32",
                                   index_dtype=index_dtype)
    benchmark(Compressor(settings).compress, volume)


@pytest.mark.parametrize("operation", ["mean", "variance", "l2_norm"])
def test_scalar_function_cost(benchmark, volume, operation):
    """Cost of the Fig 5 scalar functions in the compressed space."""
    settings = CompressionSettings(block_shape=(4, 16, 16), float_format="float32",
                                   index_dtype="int16")
    compressed = Compressor(settings).compress(volume)
    function = {"mean": ops.mean, "variance": ops.variance, "l2_norm": ops.l2_norm}[operation]
    benchmark(function, compressed)


def test_fig5_error_table(benchmark, results_dir):
    """Regenerate the Fig 5 error/ratio table and check its qualitative findings."""
    config = fig5_lgg.Fig5Config(n_volumes=4, plane_size=64)
    result = benchmark.pedantic(fig5_lgg.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig5", fig5_lgg.format_result(result))

    def row(operation, block, float_format, index):
        for r in result.rows:
            if r[:4] == (operation, block, float_format, index):
                return r
        raise AssertionError("missing row")

    # float32 ≈ float64; 16-bit float types are much worse on at least the variance
    assert row("mean", "4x4x4", "float32", "int16")[4] == pytest.approx(
        row("mean", "4x4x4", "float64", "int16")[4], rel=1.0, abs=1e-6
    )
    f16 = row("variance", "4x4x4", "float16", "int16")[4]
    f32 = row("variance", "4x4x4", "float32", "int16")[4]
    assert math.isnan(f16) or f16 >= f32 * 0.5

    # the smallest blocks with int16 give the lowest (or tied) L2-norm error among blocks
    best = row("l2_norm", "4x4x4", "float64", "int16")[4]
    assert best <= row("l2_norm", "16x16x16", "float64", "int16")[4] * 1.5 + 1e-9

    # non-hypercubic 4x16x16 compresses better than 8x8x8 on shallow volumes
    assert row("mean", "4x16x16", "float32", "int16")[6] > row("mean", "8x8x8", "float32", "int16")[6]
