"""Fig 2 — PyBlaz vs Blaz operation time on square 2-D arrays.

Each (system, operation, size) point of the figure is one pytest-benchmark entry;
the summary series (and the headline speedups at the largest size) are written to
``benchmarks/results/fig2.txt``.
"""

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import fig2_blaz

from conftest import write_result

SIZES = (8, 32, 128, 512)
SETTINGS = CompressionSettings(block_shape=(8, 8), float_format="float64", index_dtype="int8")


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    return {size: (rng.random((size, size)), rng.random((size, size))) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
class TestPyBlazTimes:
    def test_pyblaz_compress(self, benchmark, arrays, size):
        compressor = Compressor(SETTINGS)
        benchmark(compressor.compress, arrays[size][0])

    def test_pyblaz_decompress(self, benchmark, arrays, size):
        compressor = Compressor(SETTINGS)
        compressed = compressor.compress(arrays[size][0])
        benchmark(compressor.decompress, compressed)

    def test_pyblaz_add(self, benchmark, arrays, size):
        compressor = Compressor(SETTINGS)
        ca = compressor.compress(arrays[size][0])
        cb = compressor.compress(arrays[size][1])
        benchmark(ops.add, ca, cb)

    def test_pyblaz_multiply(self, benchmark, arrays, size):
        compressor = Compressor(SETTINGS)
        ca = compressor.compress(arrays[size][0])
        benchmark(ops.multiply_scalar, ca, 1.5)


@pytest.mark.parametrize("size", SIZES[:-1])  # Blaz is the slow per-block loop
class TestBlazTimes:
    def test_blaz_compress(self, benchmark, arrays, size):
        benchmark(get_codec("blaz").compress, arrays[size][0])

    def test_blaz_decompress(self, benchmark, arrays, size):
        blaz = get_codec("blaz")
        compressed = blaz.compress(arrays[size][0])
        benchmark(blaz.decompress, compressed)

    def test_blaz_add(self, benchmark, arrays, size):
        blaz = get_codec("blaz")
        ca, cb = blaz.compress(arrays[size][0]), blaz.compress(arrays[size][1])
        benchmark(blaz.add, ca, cb)

    def test_blaz_multiply(self, benchmark, arrays, size):
        blaz = get_codec("blaz")
        ca = blaz.compress(arrays[size][0])
        benchmark(blaz.multiply_scalar, ca, 1.5)


def test_fig2_series(benchmark, results_dir):
    """Regenerate the full Fig 2 series and check the headline comparison."""
    config = fig2_blaz.Fig2Config(sizes=(8, 16, 32, 64, 128, 256), repeats=3)
    result = benchmark.pedantic(fig2_blaz.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig2", fig2_blaz.format_result(result))
    speedups = result.metadata["speedup_at_largest_size"]
    # the paper's observation: vectorized bulk execution wins by orders of magnitude
    # over the per-block loop at large sizes (GPU vs single-thread there; vectorized
    # numpy vs Python loop here)
    assert speedups["compress"] > 5
    assert speedups["add"] > 5
    assert speedups["decompress"] > 5
