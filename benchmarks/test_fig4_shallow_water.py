"""Fig 4 — shallow-water precision study: compressed-space difference capture."""

import pytest

from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import fig4_shallow_water
from repro.simulators import ShallowWaterConfig, ShallowWaterSimulator

from conftest import write_result


@pytest.fixture(scope="module")
def surfaces():
    """FP16 and FP32 surface heights from the same medium-length run."""
    sim = ShallowWaterSimulator(ShallowWaterConfig(nx=64, ny=128))
    low = sim.run(6000, "float16").final_height
    high = sim.run(6000, "float32").final_height
    return low, high


def test_simulation_step_cost(benchmark):
    """Cost of one precision-emulated simulation chunk (the workload generator)."""
    sim = ShallowWaterSimulator(ShallowWaterConfig(nx=64, ny=128))
    benchmark(sim.run, 50, "float16")


def test_compressed_difference_cost(benchmark, surfaces):
    """Cost of the compressed-space difference (negate + add) used by the figure."""
    low, high = surfaces
    settings = CompressionSettings(block_shape=(16, 16), float_format="float32",
                                   index_dtype="int8")
    compressor = Compressor(settings)
    c_low, c_high = compressor.compress(low), compressor.compress(high)
    benchmark(lambda: ops.add(c_low, ops.negate(c_high)))


def test_fig4_difference_capture(benchmark, results_dir):
    """Regenerate the Fig 4 quantitative comparison and check the capture claim."""
    config = fig4_shallow_water.Fig4Config()
    result = benchmark.pedantic(fig4_shallow_water.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig4", fig4_shallow_water.format_result(result))
    values = dict(result.rows)
    assert values["max |FP16 − FP32| (uncompressed)"] > 0
    assert values["correlation(uncompressed diff, compressed diff)"] > 0.5
