"""Pipelined chunk I/O harness: readahead prefetcher vs the serial loop.

Emits a *machine-readable* record — ``BENCH_io.json`` at the repository
root — measuring what the bounded-window span prefetcher
(:mod:`repro.streaming.prefetch`) buys over the serial chunk loop.  The same
fused reduction workload (``mean`` + ``l2_norm``, one plan) runs two ways over
freshly opened store handles:

* **serial** — ``prefetch=0``: the plan's sweep calls ``read_chunk`` per
  chunk, one positional pread each, decode strictly after its read.
* **pipelined** — ``prefetch`` auto: a small thread pool fetches coalesced
  record spans a bounded window ahead while the consumer thread decodes and
  folds, so read latency hides behind decode work.

Both answers are asserted bit-identical before any timing is trusted, and the
pipelined run must show fewer physical preads (the coalescing proof).

Two cache regimes per cell:

* **warm** — the store file sits in the OS page cache, so preads are memcpy
  fast.  The pipeline cannot win much here and is reported honestly
  (expected ≈ 1.0×); the bar is only that it does not regress badly.
* **cold** — preads cost real latency.  A container cannot reliably drop the
  host page cache, so cold storage is *modeled* with the repo's deterministic
  fault harness: a ``latency`` rule sleeps ``delay_seconds`` before every
  chunk read, inside the same GIL-releasing fetch path a cold read would
  block in.  The model is declared in the payload under ``io_model``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_io.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_io.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_io.py --check    # enforce the bar

The acceptance bar (enforced by ``--check``) is pipelined ≤ 0.8× serial wall
time on the cold-cache 64-chunk workload under the serial executor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.reliability import faults
from repro.reliability.faults import FaultPlan, FaultRule
from repro.streaming import ChunkedCompressor, CompressedStore

#: Chunk counts swept (rows = chunks * SLAB_ROWS); --quick keeps the first.
CHUNK_COUNTS = [64, 256]

#: Rows per chunk: one slab (and so one chunk record) per SLAB_ROWS rows.
SLAB_ROWS = 16

#: Columns of the benchmark field: sized so decode work per chunk is real.
COLUMNS = 96

#: Modeled cold-storage latency per chunk read (the ``io_model``).
COLD_DELAY_SECONDS = 0.0003

#: Pipelined must cost at most this fraction of serial on the gated cell.
MAX_PIPELINED_RATIO = 0.8

#: The --check bar applies to this (chunks, cache, executor) cell.
CHECK_CELL = (64, "cold", "serial")


def _field(n_chunks: int) -> np.ndarray:
    """Deterministic smooth field (same generator family as the other benches)."""
    rng = np.random.default_rng(4242 + n_chunks)
    shape = (n_chunks * SLAB_ROWS, COLUMNS)
    return (np.cumsum(rng.standard_normal(shape), axis=0) * 0.05).astype(
        np.float64
    )


def _workload(store) -> "engine.Plan":
    """One fused plan over ``store``: a sweep that decodes every chunk."""
    x = expr.source(store)
    return engine.plan({"mean": expr.mean(x), "l2_norm": expr.l2_norm(x)})


def _timed_sweep(path: Path, *, prefetch: int | None, workers: int,
                 repeats: int) -> tuple[dict, float, int, int]:
    """Best-of-``repeats`` wall time for the workload on a fresh handle.

    Returns ``(values, seconds, chunks_read, preads)``.  A fresh handle per
    repeat keeps the chunk cache out of the comparison; counters come from
    the best repeat's handle (they are identical across repeats).
    """
    executor = None
    if workers > 0:
        from repro.parallel import ProcessExecutor
        executor = ProcessExecutor(n_workers=workers)  # pools are per map call
    best = float("inf")
    values: dict = {}
    chunks_read = preads = 0
    for _ in range(repeats):
        with CompressedStore(path) as store:
            fused = _workload(store)  # plan build untimed: same both modes
            start = time.perf_counter()
            values = fused.execute(executor=executor, prefetch=prefetch)
            seconds = time.perf_counter() - start
            if seconds < best:
                best = seconds
                chunks_read = store.chunks_read
                preads = store.preads
    return values, best, chunks_read, preads


def bench_cell(path: Path, n_chunks: int, cache: str, executor_mode: str,
               repeats: int) -> dict:
    """Time serial vs pipelined for one (chunks, cache, executor) cell."""
    workers = 2 if executor_mode == "process-2" else 0
    plan = None
    if cache == "cold":
        plan = FaultPlan(FaultRule(
            kind="latency", path=str(path),
            delay_seconds=COLD_DELAY_SECONDS, times=10 ** 9,
        ))
        faults.install(plan)
    try:
        serial_values, serial_seconds, serial_chunks, serial_preads = \
            _timed_sweep(path, prefetch=0, workers=workers, repeats=repeats)
        pipe_values, pipe_seconds, pipe_chunks, pipe_preads = \
            _timed_sweep(path, prefetch=None, workers=workers, repeats=repeats)
    finally:
        if plan is not None:
            faults.uninstall()
    if serial_values != pipe_values:
        raise AssertionError(
            f"pipelined answers diverged from serial at {n_chunks} chunks "
            f"({cache}/{executor_mode}): {pipe_values} != {serial_values}"
        )
    if serial_chunks != pipe_chunks:
        raise AssertionError(
            f"pipelined sweep decoded {pipe_chunks} chunks, serial "
            f"{serial_chunks} — the pipeline must not change coverage"
        )
    if workers == 0 and pipe_preads >= serial_preads:
        raise AssertionError(
            f"coalescing did not reduce preads ({pipe_preads} vs "
            f"{serial_preads}) at {n_chunks} chunks"
        )
    return {
        "chunks": n_chunks,
        "cache": cache,
        "executor": executor_mode,
        "serial_seconds": serial_seconds,
        "pipelined_seconds": pipe_seconds,
        "pipelined_over_serial": pipe_seconds / serial_seconds,
        "serial_preads": serial_preads,
        "pipelined_preads": pipe_preads,
        "chunks_read": serial_chunks,
        "bit_identical": True,  # asserted above
    }


def format_table(results: list[dict]) -> str:
    header = (
        f"{'chunks':>7s} {'cache':>6s} {'executor':>10s} {'serial ms':>10s} "
        f"{'piped ms':>9s} {'piped/serial':>13s} {'preads':>13s}"
    )
    lines = [header, "-" * len(header)]
    for record in results:
        preads = f"{record['serial_preads']}->{record['pipelined_preads']}"
        lines.append(
            f"{record['chunks']:7d} {record['cache']:>6s} "
            f"{record['executor']:>10s} "
            f"{record['serial_seconds'] * 1000:10.2f} "
            f"{record['pipelined_seconds'] * 1000:9.2f} "
            f"{record['pipelined_over_serial']:13.3f} {preads:>13s}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_io.json at the "
                             "repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="smallest store and fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode, best-of (default: 5, "
                             "quick: 3)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless pipelined ≤ {MAX_PIPELINED_RATIO}x "
                             f"serial on the cold-cache "
                             f"{CHECK_CELL[0]}-chunk serial-executor cell")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo_root / "BENCH_io.json"
    chunk_counts = CHUNK_COUNTS[:1] if args.quick else CHUNK_COUNTS
    repeats = args.repeats or (3 if args.quick else 5)
    # the process executor reads chunks inside its worker processes, where the
    # prefetcher does not apply; the cell documents that the pipeline neither
    # helps nor hurts fanned-out sweeps (expected ratio ≈ 1.0, warm only —
    # fault plans are per-process and would not reach the workers)
    executor_modes = ["serial"] if args.quick else ["serial", "process-2"]

    settings = CompressionSettings(
        block_shape=(4, 4), float_format="float32", index_dtype="int16"
    )
    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_io_") as tmp:
        for n_chunks in chunk_counts:
            path = Path(tmp) / f"io_{n_chunks}.rcs"
            compressor = ChunkedCompressor(settings, slab_rows=SLAB_ROWS)
            compressor.compress_to_store(_field(n_chunks), path).close()
            for executor_mode in executor_modes:
                caches = ["warm", "cold"] if executor_mode == "serial" else ["warm"]
                for cache in caches:
                    print(f"benchmarking {n_chunks} chunks "
                          f"({cache}, {executor_mode}) ...", flush=True)
                    results.append(bench_cell(path, n_chunks, cache,
                                              executor_mode, repeats))

    payload = {
        "harness": "benchmarks/bench_io.py",
        "units": {
            "seconds": "best-of-repeats wall seconds on a fresh store handle",
            "preads": "physical positional reads during the timed sweep",
        },
        "workload": {
            "chunk_counts": chunk_counts,
            "slab_rows": SLAB_ROWS,
            "columns": COLUMNS,
            "repeats": repeats,
            "executors": executor_modes,
            "operations": ["mean", "l2_norm"],
        },
        "io_model": {
            "warm": "store file in the OS page cache; preads are memcpy-fast",
            "cold": f"latency fault rule sleeps {COLD_DELAY_SECONDS}s before "
                    "every chunk read (deterministic model of uncached "
                    "storage; containers cannot drop the host page cache)",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(results)
    print()
    print(table)
    print(f"\nwrote {output}")
    results_dir = repo_root / "benchmarks" / "results"
    if results_dir.is_dir():
        (results_dir / "bench_io.txt").write_text(table + "\n")

    if args.check:
        gated = [record for record in results
                 if (record["chunks"], record["cache"],
                     record["executor"]) == CHECK_CELL]
        if not gated:
            print(f"check failed: gated cell {CHECK_CELL} was not measured",
                  file=sys.stderr)
            return 1
        ratio = gated[0]["pipelined_over_serial"]
        if ratio > MAX_PIPELINED_RATIO:
            print(f"check failed: pipelined/serial {ratio:.3f} > "
                  f"{MAX_PIPELINED_RATIO} on the cold {CHECK_CELL[0]}-chunk "
                  f"cell", file=sys.stderr)
            return 1
        print(f"check passed: pipelined/serial {ratio:.3f} ≤ "
              f"{MAX_PIPELINED_RATIO} on the cold {CHECK_CELL[0]}-chunk cell")
    return 0


if __name__ == "__main__":
    sys.exit(main())
