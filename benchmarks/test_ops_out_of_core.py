"""Out-of-core compressed-domain ops: store-level vs in-memory, serial vs fanned.

Times the :mod:`repro.streaming.ops` engine over a chunked store of a 3-D field
against the in-memory :mod:`repro.core.ops` on the assembled compressed array,
for each scalar reduction and a structural add, plus a thread-fan-out row.  Two
things are being demonstrated:

* correctness — every store-level scalar must equal the in-memory value **bit
  for bit** (asserted, not just reported): the partial-fold invariant;
* the cost shape — store-level ops pay chunk decode per pass, so their overhead
  is roughly the store read time; the fan-out row shows what ``map_jobs``
  recovers for multi-chunk stores.

The formatted table lands in ``benchmarks/results/streaming_ops.txt``.
"""

import numpy as np
import pytest

from repro.core import CompressionSettings, ops
from repro.experiments.common import ExperimentResult, median_time
from repro.parallel import ThreadedExecutor
from repro.streaming import ChunkedCompressor
from repro.streaming import ops as stream_ops

from conftest import write_result

_SHAPE = (256, 48, 32)
_SLAB_ROWS = 32


def _field(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, s) for s in _SHAPE], indexing="ij")
    field = sum(np.sin(2 * np.pi * (k + 1) * g) for k, g in enumerate(grids))
    return field + 0.02 * rng.standard_normal(_SHAPE)


def run_streaming_ops(tmp_path) -> ExperimentResult:
    """Time each op in-memory, store-level serial, and store-level thread-fanned."""
    settings = CompressionSettings(
        block_shape=(4, 4, 4), float_format="float32", index_dtype="int16"
    )
    chunked = ChunkedCompressor(settings, slab_rows=_SLAB_ROWS)
    a, b = _field(1), _field(2)
    store_a = chunked.compress_to_store(a, tmp_path / "a.pblzc")
    store_b = chunked.compress_to_store(b, tmp_path / "b.pblzc")
    ca, cb = store_a.load_compressed(), store_b.load_compressed()
    executor = ThreadedExecutor(n_workers=4)

    cases = {
        "dot": (lambda: ops.dot(ca, cb),
                lambda: stream_ops.dot(store_a, store_b),
                lambda: stream_ops.dot(store_a, store_b, executor=executor)),
        "mean": (lambda: ops.mean(ca),
                 lambda: stream_ops.mean(store_a),
                 lambda: stream_ops.mean(store_a, executor=executor)),
        "variance": (lambda: ops.variance(ca),
                     lambda: stream_ops.variance(store_a),
                     lambda: stream_ops.variance(store_a, executor=executor)),
        "l2_norm": (lambda: ops.l2_norm(ca),
                    lambda: stream_ops.l2_norm(store_a),
                    lambda: stream_ops.l2_norm(store_a, executor=executor)),
        "cosine_similarity": (
            lambda: ops.cosine_similarity(ca, cb),
            lambda: stream_ops.cosine_similarity(store_a, store_b),
            lambda: stream_ops.cosine_similarity(store_a, store_b, executor=executor),
        ),
    }

    rows = []
    for name, (in_memory, serial, fanned) in cases.items():
        # the partial-fold invariant, asserted on the benchmark workload itself
        assert serial() == in_memory(), name
        assert fanned() == in_memory(), name
        rows.append((name, "in-memory", median_time(in_memory, repeats=3)))
        rows.append((name, "store serial", median_time(serial, repeats=3)))
        rows.append((name, "store fanned x4", median_time(fanned, repeats=3)))

    def structural_add():
        """One chunk-by-chunk store-level add (output overwritten each repeat)."""
        stream_ops.add(store_a, store_b, tmp_path / "sum.pblzc").close()

    rows.append(("add", "in-memory", median_time(lambda: ops.add(ca, cb), repeats=3)))
    rows.append(("add", "store serial", median_time(structural_add, repeats=3)))

    store_a.close()
    store_b.close()
    return ExperimentResult(
        name="Out-of-core compressed-domain ops (store-level vs in-memory)",
        columns=("operation", "path", "seconds"),
        rows=rows,
        metadata={"shape": _SHAPE, "slab_rows": _SLAB_ROWS,
                  "chunks": len(range(0, _SHAPE[0], _SLAB_ROWS))},
    )


@pytest.mark.benchmark(group="streaming-ops")
def test_streaming_ops_table(benchmark, tmp_path, results_dir):
    """Regenerate the streaming-ops ablation table (and assert bit-identity)."""
    result = benchmark.pedantic(
        run_streaming_ops, args=(tmp_path,), rounds=1, iterations=1
    )
    write_result(results_dir, "streaming_ops", result.to_text())
    operations = {row[0] for row in result.rows}
    assert operations == {"dot", "mean", "variance", "l2_norm",
                          "cosine_similarity", "add"}
    assert all(row[2] >= 0 for row in result.rows)
