"""Serving harness: coalesced fused-plan serving vs naive per-request plans.

Emits a *machine-readable* record — ``BENCH_serving.json`` at the repository
root — measuring what the query service's per-tick request coalescing
(:mod:`repro.serving`) buys under concurrent load.  For each client count the
same workload runs against two servers over the same two-store catalog: the
**coalesced** server compiles every request arriving within one scheduler tick
into a single fused plan (the planner dedups overlapping folds across
requests), while the **naive** server executes one plan per request.  Each
client thread fires a fixed number of requests back-to-back through its own
connection; the harness records queries/sec plus client-side p50/p99 latency,
and verifies served results are bit-identical to local engine evaluation.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --check    # enforce the bar

The acceptance bar (enforced by ``--check``) is coalesced throughput ≥ 1.5×
naive throughput at the highest client count run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.serving import ChunkCache, QueryClient, StoreCatalog, ThreadedQueryService
from repro.streaming import ChunkedCompressor

#: Client counts swept per mode (quick is the CI smoke sweep).
CLIENT_COUNTS = {"quick": [2, 6], "full": [2, 4, 8]}

#: Coalesced must beat naive by at least this factor at the top client count.
MIN_COALESCED_SPEEDUP = 1.5

#: Coalescing window used by both servers (naive pays the same tick latency,
#: so the comparison isolates plan fusion, not scheduling overhead).
TICK_SECONDS = 0.005

#: Per-client request mix: overlapping statistics over the catalog pair, the
#: many-users-shared-dashboards shape coalescing is built for.
REQUEST_MIX = [
    {"mean_a": expr.mean(expr.source("a")),
     "var_a": expr.variance(expr.source("a"))},
    {"dot": expr.dot(expr.source("a"), expr.source("b")),
     "mean_a": expr.mean(expr.source("a"))},
    {"cos": expr.cosine_similarity(expr.source("a"), expr.source("b"))},
    {"l2_b": expr.l2_norm(expr.source("b")),
     "cov": expr.covariance(expr.source("a"), expr.source("b"))},
]


def _build_catalog_paths(workdir: Path, shape: tuple[int, ...],
                         slab_rows: int) -> dict[str, Path]:
    """Two deterministic, identically chunked stores for the catalog."""
    rng = np.random.default_rng(2023)
    settings = CompressionSettings(
        block_shape=(4, 4), float_format="float32", index_dtype="int16"
    )
    chunked = ChunkedCompressor(settings, slab_rows=slab_rows)
    paths = {}
    for name in ("a", "b"):
        data = np.cumsum(rng.standard_normal(shape), axis=0) * 0.05
        chunked.compress_to_store(data, workdir / f"{name}.pblzc").close()
        paths[name] = workdir / f"{name}.pblzc"
    return paths


def _local_reference(catalog: StoreCatalog) -> list[dict]:
    """Every request in the mix evaluated locally (the bit-identity oracle)."""
    references = []
    for outputs in REQUEST_MIX:
        resolved = {
            name: expr.Reduction(
                node.op,
                tuple(expr.source(catalog.get(operand.wrapped))
                      for operand in node.operands),
                node.options,
            )
            for name, node in outputs.items()
        }
        references.append(engine.evaluate(resolved))
    return references


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of a sorted, non-empty sample."""
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _run_clients(host: str, port: int, n_clients: int,
                 requests_per_client: int, references: list[dict]) -> dict:
    """Fire the workload from ``n_clients`` threads; returns timing + latencies."""
    barrier = threading.Barrier(n_clients + 1)
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            with QueryClient(host, port) as client:
                barrier.wait(timeout=30)
                for step in range(requests_per_client):
                    which = (index + step) % len(REQUEST_MIX)
                    start = time.perf_counter()
                    results = client.evaluate(REQUEST_MIX[which])
                    latencies[index].append(time.perf_counter() - start)
                    for name, value in results.items():
                        if value != references[which][name]:
                            raise AssertionError(
                                f"served {name} diverged from local evaluation"
                            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to the harness
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    seconds = time.perf_counter() - start
    if errors:
        raise errors[0]
    flat = sorted(second for per_client in latencies for second in per_client)
    return {
        "seconds": seconds,
        "qps": len(flat) / seconds,
        "p50_seconds": _quantile(flat, 0.50),
        "p99_seconds": _quantile(flat, 0.99),
        "n_requests": len(flat),
    }


def bench_mode(paths: dict[str, Path], coalesce: bool, n_clients: int,
               requests_per_client: int) -> dict:
    """One (mode, client count) cell: fresh server + cache, warmed, then timed."""
    with StoreCatalog(paths, cache=ChunkCache()) as catalog:
        references = _local_reference(catalog)
        with ThreadedQueryService(catalog, tick=TICK_SECONDS,
                                  coalesce=coalesce) as served:
            # warm-up: open stores, populate the chunk cache, JIT nothing
            _run_clients(served.host, served.port, n_clients=2,
                         requests_per_client=2, references=references)
            timing = _run_clients(served.host, served.port, n_clients,
                                  requests_per_client, references)
            with QueryClient(served.host, served.port) as client:
                plans = client.stats()["plans"]
    timing["plans_executed"] = plans["executed"]
    timing["mean_batch"] = plans["mean_batch"]
    timing["max_batch"] = plans["max_batch"]
    return timing


def bench_client_count(paths: dict[str, Path], n_clients: int,
                       requests_per_client: int) -> dict:
    """Coalesced vs naive at one concurrency level."""
    coalesced = bench_mode(paths, True, n_clients, requests_per_client)
    naive = bench_mode(paths, False, n_clients, requests_per_client)
    return {
        "clients": n_clients,
        "requests_per_client": requests_per_client,
        "coalesced": coalesced,
        "naive": naive,
        "coalesced_over_naive_qps": coalesced["qps"] / naive["qps"],
        "bit_identical": True,  # _run_clients raises on any divergence
    }


def format_table(results: list[dict]) -> str:
    header = (
        f"{'clients':>7s} {'mode':>9s} {'qps':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'plans':>6s} {'mean batch':>10s} {'speedup':>8s}"
    )
    lines = [header, "-" * len(header)]
    for record in results:
        for mode in ("coalesced", "naive"):
            cell = record[mode]
            speedup = (f"{record['coalesced_over_naive_qps']:8.2f}"
                       if mode == "coalesced" else f"{'':>8s}")
            lines.append(
                f"{record['clients']:7d} {mode:>9s} {cell['qps']:8.1f} "
                f"{cell['p50_seconds'] * 1000:8.2f} "
                f"{cell['p99_seconds'] * 1000:8.2f} "
                f"{cell['plans_executed']:6d} {cell['mean_batch']:10.2f} {speedup}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_serving.json at "
                             "the repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="small stores and low client counts (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default: 24, quick: 10)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless coalesced qps ≥ "
                             f"{MIN_COALESCED_SPEEDUP}x naive at the highest "
                             "client count")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo_root / "BENCH_serving.json"
    shape, slab_rows = ((320, 96), 8) if args.quick else ((768, 128), 16)
    requests_per_client = args.requests or (10 if args.quick else 24)

    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        paths = _build_catalog_paths(Path(tmp), shape, slab_rows)
        for n_clients in CLIENT_COUNTS["quick" if args.quick else "full"]:
            print(f"benchmarking {n_clients} clients ...", flush=True)
            results.append(
                bench_client_count(paths, n_clients, requests_per_client)
            )

    payload = {
        "harness": "benchmarks/bench_serving.py",
        "units": {"qps": "client requests completed per wall-clock second",
                  "latency": "client-side seconds per request (nearest-rank)"},
        "workload": {
            "store_shape": list(shape),
            "slab_rows": slab_rows,
            "tick_seconds": TICK_SECONDS,
            "request_mix": [sorted(request) for request in REQUEST_MIX],
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(results)
    print()
    print(table)
    print(f"\nwrote {output}")
    results_dir = repo_root / "benchmarks" / "results"
    if results_dir.is_dir():
        (results_dir / "bench_serving.txt").write_text(table + "\n")

    if args.check:
        top = max(results, key=lambda record: record["clients"])
        speedup = top["coalesced_over_naive_qps"]
        if speedup < MIN_COALESCED_SPEEDUP:
            print(f"check failed: coalesced/naive qps {speedup:.2f} < "
                  f"{MIN_COALESCED_SPEEDUP} at {top['clients']} clients",
                  file=sys.stderr)
            return 1
        print(f"check passed: coalesced/naive qps {speedup:.2f} ≥ "
              f"{MIN_COALESCED_SPEEDUP} at {top['clients']} clients")
    return 0


if __name__ == "__main__":
    sys.exit(main())
