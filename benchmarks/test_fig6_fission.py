"""Fig 6 — fission scission detection: adjacent-step L2 and Wasserstein distances."""

import numpy as np
import pytest

from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import fig6_fission
from repro.simulators import generate_fission_series

from conftest import write_result


@pytest.fixture(scope="module")
def compressed_steps():
    series = generate_fission_series()
    settings = CompressionSettings(block_shape=(16, 16, 16), float_format="float32",
                                   index_dtype="int16")
    compressor = Compressor(settings)
    compressed = [compressor.compress(series.log_densities[i]) for i in range(series.n_steps)]
    return series, compressed


def test_compress_one_time_step(benchmark):
    """Cost of compressing one 40x40x66 density snapshot (the per-step work)."""
    series = generate_fission_series()
    settings = CompressionSettings(block_shape=(16, 16, 16), float_format="float32",
                                   index_dtype="int16")
    compressor = Compressor(settings)
    benchmark(compressor.compress, series.log_densities[0])


def test_adjacent_l2_difference_cost(benchmark, compressed_steps):
    """Cost of one compressed-space adjacent-step L2 difference (Fig 6a point)."""
    _, compressed = compressed_steps
    benchmark(lambda: ops.l2_norm(ops.subtract(compressed[1], compressed[0])))


@pytest.mark.parametrize("order", [1, 8, 68])
def test_wasserstein_cost(benchmark, compressed_steps, order):
    """Cost of one compressed-space Wasserstein distance (Fig 6b point)."""
    _, compressed = compressed_steps
    benchmark(ops.wasserstein_distance, compressed[0], compressed[1], order)


def test_fig6_series(benchmark, results_dir):
    """Regenerate both Fig 6 panels and check the detection claims."""
    config = fig6_fission.Fig6Config()
    result = benchmark.pedantic(fig6_fission.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig6", fig6_fission.format_result(result))
    meta = result.metadata

    # Fig 6a: the compressed-space L2 curve detects the known scission pair and stays
    # within a small deviation of the uncompressed curve (paper: 1.68 vs mean 619)
    assert meta["L2_detected_pair"] == meta["known_scission_pair"]
    assert (
        meta["max_L2_deviation_compressed_vs_uncompressed"]
        < 0.05 * meta["mean_L2_uncompressed"]
    )

    # Fig 6b: the highest-order Wasserstein sweep also isolates the scission pair,
    # and the noise peaks are more suppressed (relative to the scission peak) at the
    # top order than at order 1
    assert meta["Wasserstein_p80_detected_pair"] == meta["known_scission_pair"]
    rows = result.rows
    series = {}
    for pair, measure, value in rows:
        series.setdefault(measure, []).append(value)
    l2 = np.asarray(series["L2 compressed-space"])
    w1 = np.asarray(series["Wasserstein p=1"])
    w68 = np.asarray(series["Wasserstein p=68"])
    scission = int(np.argmax(l2))
    noise_rel_l2 = np.max(np.delete(l2, scission)) / l2[scission]
    noise_rel_w68 = np.max(np.delete(w68, scission)) / w68[scission]
    # the misleading peaks are a substantial fraction of the scission peak under L2,
    # and a smaller fraction under the high-order Wasserstein distance
    assert noise_rel_l2 > noise_rel_w68
    assert int(np.argmax(w1)) == scission or int(np.argmax(w68)) == scission
