"""Fig 7 — PyBlaz operation time on 3-D arrays, block size 4, across settings."""

import numpy as np
import pytest

from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import fig7_op_times

from conftest import write_result

SIZES = (16, 32, 64)
FLOATS = ("float32", "float64")
INDICES = ("int8", "int16", "int32")


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(3)
    return {size: (rng.random((size, size, size)), rng.random((size, size, size)))
            for size in SIZES}


def _compressor(float_format: str, index_dtype: str) -> Compressor:
    return Compressor(
        CompressionSettings(block_shape=(4, 4, 4), float_format=float_format,
                            index_dtype=index_dtype)
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("float_format", FLOATS)
@pytest.mark.parametrize("index_dtype", INDICES)
class TestCompressDecompress:
    def test_compress(self, benchmark, arrays, size, float_format, index_dtype):
        compressor = _compressor(float_format, index_dtype)
        benchmark(compressor.compress, arrays[size][0])

    def test_decompress(self, benchmark, arrays, size, float_format, index_dtype):
        compressor = _compressor(float_format, index_dtype)
        compressed = compressor.compress(arrays[size][0])
        benchmark(compressor.decompress, compressed)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "operation",
    ["negate", "add", "multiply", "dot", "l2_norm", "cosine_similarity", "mean",
     "variance", "ssim"],
)
def test_compressed_space_operation(benchmark, arrays, size, operation):
    """Per-operation timing at the paper's default float32/int16 setting."""
    compressor = _compressor("float32", "int16")
    ca = compressor.compress(arrays[size][0])
    cb = compressor.compress(arrays[size][1])
    functions = {
        "negate": lambda: ops.negate(ca),
        "add": lambda: ops.add(ca, cb),
        "multiply": lambda: ops.multiply_scalar(ca, 1.5),
        "dot": lambda: ops.dot(ca, cb),
        "l2_norm": lambda: ops.l2_norm(ca),
        "cosine_similarity": lambda: ops.cosine_similarity(ca, cb),
        "mean": lambda: ops.mean(ca),
        "variance": lambda: ops.variance(ca),
        "ssim": lambda: ops.structural_similarity(ca, cb),
    }
    benchmark(functions[operation])


def test_fig7_series(benchmark, results_dir):
    """Regenerate the Fig 7 sweep (sizes × float × index × operation)."""
    config = fig7_op_times.Fig7Config(sizes=(4, 8, 16, 32, 64), repeats=3)
    result = benchmark.pedantic(fig7_op_times.run, args=(config,), rounds=1, iterations=1)
    write_result(results_dir, "fig7", fig7_op_times.format_result(result))
    # compression time grows with array size; negate stays roughly flat relative to it
    compress = {r[0]: r[4] for r in result.rows
                if r[3] == "compress" and r[1] == "float32" and r[2] == "int16"}
    negate = {r[0]: r[4] for r in result.rows
              if r[3] == "negate" and r[1] == "float32" and r[2] == "int16"}
    assert compress[64] > compress[4]
    assert negate[64] < compress[64]
