"""Table I — regenerate the operation/error-classification table.

Benchmarks every compressed-space operation on a representative 3-D workload and
writes the Table I error-classification rows (compressed-space result vs the same
operation on decompressed data) to ``benchmarks/results/table1.txt``.
"""

import numpy as np
import pytest

from repro.core import CompressionSettings, Compressor, ops
from repro.experiments import table1_operations

from conftest import write_result


@pytest.fixture(scope="module")
def workload():
    settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                   index_dtype="int16")
    compressor = Compressor(settings)
    rng = np.random.default_rng(1)
    a = np.cumsum(rng.standard_normal((48, 48, 48)), axis=0) * 0.05
    b = np.cumsum(rng.standard_normal((48, 48, 48)), axis=1) * 0.05
    return compressor, compressor.compress(a), compressor.compress(b)


OPERATIONS = {
    "negate": lambda c, x, y: ops.negate(x),
    "add": lambda c, x, y: ops.add(x, y),
    "add_scalar": lambda c, x, y: ops.add_scalar(x, 1.5),
    "multiply_scalar": lambda c, x, y: ops.multiply_scalar(x, -2.0),
    "dot": lambda c, x, y: ops.dot(x, y),
    "mean": lambda c, x, y: ops.mean(x),
    "covariance": lambda c, x, y: ops.covariance(x, y),
    "variance": lambda c, x, y: ops.variance(x),
    "l2_norm": lambda c, x, y: ops.l2_norm(x),
    "cosine_similarity": lambda c, x, y: ops.cosine_similarity(x, y),
    "ssim": lambda c, x, y: ops.structural_similarity(x, y),
    "wasserstein": lambda c, x, y: ops.wasserstein_distance(x, y, order=2),
}


@pytest.mark.parametrize("operation", sorted(OPERATIONS))
def test_table1_operation_timing(benchmark, workload, operation):
    """Time each of the dozen Table I operations in the compressed space."""
    compressor, ca, cb = workload
    benchmark(OPERATIONS[operation], compressor, ca, cb)


def test_table1_error_classification(benchmark, results_dir):
    """Regenerate the Table I rows and verify the error classification."""
    result = benchmark.pedantic(table1_operations.run, rounds=1, iterations=1)
    write_result(results_dir, "table1", table1_operations.format_result(result))
    rows = {row[0]: row for row in result.rows}
    assert rows["negation"][3] == 0.0
    assert rows["multiplication by scalar"][3] < 1e-12
    for exact_op in ("dot product", "mean", "variance", "covariance", "L2 norm",
                     "cosine similarity", "SSIM"):
        assert rows[exact_op][3] < 1e-6
