"""Setup shim so `python setup.py develop` works in offline environments without the
`wheel` package (pip's PEP-660 editable path needs it); all metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
