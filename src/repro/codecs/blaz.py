"""The original Blaz baseline as a registrable :class:`Codec`.

Adds what :class:`repro.baselines.blaz.BlazCompressor` lacked for registry use:
a self-describing byte stream, a nominal compression ratio, and a data-dependent
L∞ round-trip bound.  The two compressed-space operations Blaz supports (`add`,
`multiply_scalar`) are re-exposed so the Fig 2 harness can obtain everything it
needs from the registry.
"""

from __future__ import annotations

import struct
from typing import ClassVar

import numpy as np

from ..baselines.blaz import BlazCompressed, BlazCompressor
from .base import Codec, CodecCapabilities
from .serialization import check_magic, pack_shape, unpack_shape

__all__ = ["BlazCodec"]

_VERSION = 1
#: Blaz geometry: 8×8 blocks, exact first element + max coefficient per block
#: (64 bits each), 28 kept int8 bin indices (the 6×6 high-frequency corner of
#: the 8×8 coefficient block is pruned).
_BLOCK = 8
_RADIUS = 127
_KEPT = 28
_BITS_PER_BLOCK = 64 + 64 + 8 * _KEPT


class BlazCodec(Codec):
    """Single-threaded Blaz codec (2-dimensional float64 arrays, 8×8 blocks)."""

    name: ClassVar[str] = "blaz"
    magic: ClassVar[bytes] = b"BLZ1"
    capabilities: ClassVar[CodecCapabilities] = CodecCapabilities(
        ndims=(2,),
        dtypes=("float64",),
        compressed_ops=("add", "multiply_scalar"),
        lossless=False,
    )

    def __init__(self) -> None:
        self._impl = BlazCompressor()

    # ------------------------------------------------------------------ protocol
    def compress(self, array: np.ndarray) -> BlazCompressed:
        return self._impl.compress(self.validate_input(array))

    def decompress(self, compressed: BlazCompressed) -> np.ndarray:
        return self._impl.decompress(compressed)

    def to_bytes(self, compressed: BlazCompressed) -> bytes:
        out = bytearray()
        out += self.magic
        out += struct.pack("<B", _VERSION)
        out += pack_shape(compressed.shape)
        out += struct.pack("<QQ", *compressed.grid_shape)
        out += np.ascontiguousarray(compressed.firsts, dtype="<f8").tobytes()
        out += np.ascontiguousarray(compressed.maxima, dtype="<f8").tobytes()
        out += np.ascontiguousarray(compressed.indices, dtype=np.int8).tobytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> BlazCompressed:
        offset = check_magic(data, cls.magic, _VERSION, cls.name)
        shape, offset = unpack_shape(data, offset)
        grid = struct.unpack_from("<QQ", data, offset)
        offset += 16
        n_blocks = int(grid[0] * grid[1])
        firsts = np.frombuffer(data, dtype="<f8", count=n_blocks, offset=offset)
        offset += 8 * n_blocks
        maxima = np.frombuffer(data, dtype="<f8", count=n_blocks, offset=offset)
        offset += 8 * n_blocks
        indices = np.frombuffer(data, dtype=np.int8, count=n_blocks * _KEPT, offset=offset)
        return BlazCompressed(
            shape=(int(shape[0]), int(shape[1])),
            firsts=firsts.astype(np.float64).reshape(grid),
            maxima=maxima.astype(np.float64).reshape(grid),
            indices=indices.reshape(n_blocks, _KEPT).copy(),
        )

    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        rows, cols = array_shape
        n_blocks = -(-int(rows) // _BLOCK) * (-(-int(cols) // _BLOCK))
        return (float(input_bits) * rows * cols) / float(_BITS_PER_BLOCK * n_blocks)

    def roundtrip_bound(self, array: np.ndarray) -> float:
        """Data-dependent L∞ bound through Blaz's differentiate→DCT→bin pipeline.

        Per block: each kept coefficient is off by at most the half-bin width
        ``biggest/(2·127)``; each pruned coefficient contributes its magnitude;
        DCT basis amplitudes are < 1, so the per-element *difference* error is at
        most that sum ``E``.  Integration accumulates at most 15 differences per
        element and re-anchoring adds one more path, giving ≤ 31·E; 32·E is the
        stated bound.
        """
        array = np.asarray(array, dtype=np.float64)
        padded, _ = BlazCompressor._pad(array)
        worst = 0.0
        keep = np.ones((_BLOCK, _BLOCK), dtype=bool)
        keep[_BLOCK - 6 :, _BLOCK - 6 :] = False
        for gi in range(padded.shape[0] // _BLOCK):
            for gj in range(padded.shape[1] // _BLOCK):
                block = padded[gi * _BLOCK : (gi + 1) * _BLOCK, gj * _BLOCK : (gj + 1) * _BLOCK]
                coeff = np.abs(
                    self._impl._forward_dct(self._impl._differentiate(block))
                )
                e_block = coeff[~keep].sum() + _KEPT * coeff.max() / (2.0 * _RADIUS)
                worst = max(worst, float(e_block))
        return 32.0 * worst + 1e-12

    # ------------------------------------------------------------------ compressed ops
    def add(self, a: BlazCompressed, b: BlazCompressed) -> BlazCompressed:
        """Compressed-space element-wise addition (see :meth:`BlazCompressor.add`)."""
        return self._impl.add(a, b)

    def multiply_scalar(self, a: BlazCompressed, scalar: float) -> BlazCompressed:
        """Compressed-space scalar multiplication (see :meth:`BlazCompressor.multiply_scalar`)."""
        return self._impl.multiply_scalar(a, scalar)
