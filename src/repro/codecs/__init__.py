"""Uniform codec protocol + registry over every compressor in the repository.

The paper's comparison (Figs 2–3, Table 1) pits the PyBlaz pipeline against
Blaz, a ZFP-style codec and an SZ-style codec.  This package makes "which
compressor" a runtime parameter instead of four parallel code paths: every
backend implements the :class:`Codec` protocol (``compress`` / ``decompress`` /
``to_bytes`` / ``from_bytes`` / ``compression_ratio`` / ``roundtrip_bound``
plus :class:`CodecCapabilities` flags), and a string-keyed registry maps names
to lazily imported implementations.  The CLI (``--codec``), the streaming
:class:`repro.streaming.CompressedStore` (which records the codec name in its
chunk table) and the experiment/benchmark harnesses all go through it.

Built-in codecs
---------------

==========  =========================================================  ======
name        implementation                                             magic
==========  =========================================================  ======
``pyblaz``  :class:`repro.codecs.pyblaz.PyBlazCodec` (the paper's      PBLZ
            compressor; 12 compressed-space operations)
``blaz``    :class:`repro.codecs.blaz.BlazCodec` (Martel 2022; 2-D,    BLZ1
            add/multiply in compressed space)
``zfp``     :class:`repro.codecs.zfp.ZFPCodec` (fixed-rate, 1–3-D)     ZFPL
``sz``      :class:`repro.codecs.sz.SZCodec` (error-bounded)           SZL1
``huffman`` :class:`repro.codecs.huffman.HuffmanCodec` (lossless)      HUF1
==========  =========================================================  ======

Registering a third-party codec
-------------------------------

Subclass :class:`Codec`, set ``name``/``magic``/``capabilities``, implement the
abstract methods, and register it — either eagerly with the class itself or
lazily with a ``"module:ClassName"`` spec so your module only imports when the
codec is first used::

    from repro.codecs import Codec, CodecCapabilities, register_codec

    class MyGPUCodec(Codec):
        name = "mygpu"
        magic = b"MYG1"
        capabilities = CodecCapabilities(ndims=(2, 3))
        ...  # compress / decompress / to_bytes / from_bytes /
             # compression_ratio / roundtrip_bound

    register_codec("mygpu", MyGPUCodec)
    # or, deferring the import (e.g. from an entry point):
    register_codec("mygpu", "my_package.codecs:MyGPUCodec", magic=b"MYG1")

After registration the codec is a first-class citizen everywhere:
``repro compress --codec mygpu``, ``get_codec("mygpu")``, streaming stores
record its name, and the cross-codec property/benchmark suites pick it up from
:func:`available_codecs`.  Re-registering an existing name replaces it, so an
optimized third-party binding can transparently override a built-in.
"""

from .base import Codec, CodecCapabilities
from .registry import (
    available_codecs,
    detect_codec,
    get_codec,
    get_codec_class,
    register_codec,
)

__all__ = [
    "Codec",
    "CodecCapabilities",
    "register_codec",
    "get_codec",
    "get_codec_class",
    "available_codecs",
    "detect_codec",
]

# Built-in registrations: lazy "module:Class" specs with explicit magics, so
# listing codecs or sniffing a stream's magic never imports the implementations.
register_codec("pyblaz", "repro.codecs.pyblaz:PyBlazCodec", magic=b"PBLZ")
register_codec("blaz", "repro.codecs.blaz:BlazCodec", magic=b"BLZ1")
register_codec("zfp", "repro.codecs.zfp:ZFPCodec", magic=b"ZFPL")
register_codec("sz", "repro.codecs.sz:SZCodec", magic=b"SZL1")
register_codec("huffman", "repro.codecs.huffman:HuffmanCodec", magic=b"HUF1")
