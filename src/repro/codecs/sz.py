"""The SZ-style error-bounded baseline as a registrable :class:`Codec`.

Adds byte-level serialization (anchors, outliers and the Huffman-coded residual
stream) to :class:`repro.baselines.sz_like.SZCompressor`.  The round-trip bound
is the one property SZ is defined by: every reconstructed element is within the
configured absolute error bound, so :meth:`SZCodec.roundtrip_bound` is simply
that constant — the only codec in the registry with a data-independent bound.
"""

from __future__ import annotations

import struct
from typing import ClassVar

import numpy as np

from ..baselines.sz_like import SZCompressed, SZCompressor
from .base import Codec, CodecCapabilities
from .serialization import (
    check_magic,
    pack_f8,
    pack_huffman,
    pack_shape,
    unpack_f8,
    unpack_huffman,
    unpack_shape,
)

__all__ = ["SZCodec"]

_VERSION = 1


class SZCodec(Codec):
    """Error-bounded interpolation-predicting codec.

    Parameters
    ----------
    error_bound:
        Absolute (L∞) error bound; every reconstructed element is within this
        bound of the original.  Defaults to ``1e-6``.
    levels:
        Interpolation refinement levels (anchor spacing is ``2**levels``).
    """

    name: ClassVar[str] = "sz"
    magic: ClassVar[bytes] = b"SZL1"
    # the interpolation predictor works on the flattened array, so any rank goes
    capabilities: ClassVar[CodecCapabilities] = CodecCapabilities(
        ndims=(1, 2, 3, 4, 5, 6, 7, 8),
        dtypes=("float32", "float64"),
        compressed_ops=(),
        lossless=False,
    )

    def __init__(self, error_bound: float = 1e-6, levels: int = 8):
        self._impl = SZCompressor(error_bound, levels=levels)

    @property
    def error_bound(self) -> float:
        return self._impl.error_bound

    # ------------------------------------------------------------------ protocol
    def compress(self, array: np.ndarray) -> SZCompressed:
        return self._impl.compress(self.validate_input(array))

    def decompress(self, compressed: SZCompressed) -> np.ndarray:
        return self._impl.decompress(compressed)

    def to_bytes(self, compressed: SZCompressed) -> bytes:
        out = bytearray()
        out += self.magic
        out += struct.pack("<B", _VERSION)
        out += pack_shape(compressed.shape)
        out += struct.pack("<dB", compressed.error_bound, compressed.levels)
        out += pack_f8(compressed.anchors)
        out += pack_f8(compressed.outliers)
        out += pack_huffman(compressed.codes)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> SZCompressed:
        offset = check_magic(data, cls.magic, _VERSION, cls.name)
        shape, offset = unpack_shape(data, offset)
        error_bound, levels = struct.unpack_from("<dB", data, offset)
        offset += 9
        anchors, offset = unpack_f8(data, offset)
        outliers, offset = unpack_f8(data, offset)
        codes, offset = unpack_huffman(data, offset)
        return SZCompressed(
            shape=shape,
            error_bound=float(error_bound),
            anchors=anchors,
            codes=codes,
            outliers=outliers,
            levels=int(levels),
        )

    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        """``nan``: SZ's output size is data-dependent (use :meth:`measured_ratio`)."""
        return float("nan")

    def roundtrip_bound(self, array: np.ndarray) -> float:
        return self.error_bound
