"""Byte-packing primitives shared by the codec adapters.

Each codec's ``to_bytes`` stream is ``magic + version + body``; the helpers here
pack the recurring body pieces — shapes, float64 arrays, and
:class:`repro.baselines.huffman.HuffmanCode` blobs — in one little-endian layout
so the per-codec modules only describe *what* they store, not how.  All readers
take and return an explicit offset so pieces compose by concatenation.
"""

from __future__ import annotations

import struct

import numpy as np

from ..baselines.huffman import HuffmanCode
from ..core.exceptions import CodecError

__all__ = [
    "DECODE_ERRORS",
    "check_magic",
    "pack_shape",
    "unpack_shape",
    "pack_f8",
    "unpack_f8",
    "pack_huffman",
    "unpack_huffman",
]

#: Exception types a ``from_bytes``/``decompress`` on corrupt or truncated
#: bytes can raise out of numpy/struct (garbage counts, short buffers, bogus
#: type codes); callers wrap these into :class:`CodecError` at API boundaries.
DECODE_ERRORS = (
    ValueError,
    IndexError,
    KeyError,
    OverflowError,
    struct.error,
    UnicodeDecodeError,
)


def check_magic(data: bytes, magic: bytes, version: int, codec_name: str) -> int:
    """Validate ``magic + u8 version`` at the head of ``data``; return the offset."""
    if data[: len(magic)] != magic:
        raise CodecError(f"not a {codec_name} stream (bad magic {data[:len(magic)]!r})")
    offset = len(magic)
    (found,) = struct.unpack_from("<B", data, offset)
    if found != version:
        raise CodecError(f"unsupported {codec_name} stream version {found}")
    return offset + 1


def pack_shape(shape: tuple[int, ...]) -> bytes:
    """Pack an array shape as ``u8 ndim`` + ``ndim × u64`` extents."""
    return struct.pack(f"<B{len(shape)}Q", len(shape), *shape)


def unpack_shape(data: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    """Inverse of :func:`pack_shape`."""
    (ndim,) = struct.unpack_from("<B", data, offset)
    shape = struct.unpack_from(f"<{ndim}Q", data, offset + 1)
    return tuple(int(s) for s in shape), offset + 1 + 8 * ndim


def pack_f8(values: np.ndarray) -> bytes:
    """Pack a float64 array as ``u64 count`` + little-endian doubles."""
    values = np.asarray(values, dtype=np.float64).ravel()
    return struct.pack("<Q", values.size) + values.astype("<f8").tobytes()


def unpack_f8(data: bytes, offset: int) -> tuple[np.ndarray, int]:
    """Inverse of :func:`pack_f8`."""
    (count,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    values = np.frombuffer(data, dtype="<f8", count=count, offset=offset).astype(np.float64)
    return values, offset + 8 * count


def pack_huffman(code: HuffmanCode) -> bytes:
    """Pack a canonical Huffman code: table (symbols + lengths) and payload."""
    out = struct.pack("<Q", code.symbols.size)
    out += np.ascontiguousarray(code.symbols, dtype="<i8").tobytes()
    out += np.ascontiguousarray(code.lengths, dtype=np.uint8).tobytes()
    out += struct.pack("<QQQ", code.bit_length, code.count, len(code.payload))
    out += code.payload
    return out


def unpack_huffman(data: bytes, offset: int) -> tuple[HuffmanCode, int]:
    """Inverse of :func:`pack_huffman`."""
    (n_symbols,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    symbols = np.frombuffer(data, dtype="<i8", count=n_symbols, offset=offset).astype(np.int64)
    offset += 8 * n_symbols
    lengths = np.frombuffer(data, dtype=np.uint8, count=n_symbols, offset=offset).copy()
    offset += n_symbols
    bit_length, count, payload_len = struct.unpack_from("<QQQ", data, offset)
    offset += 24
    payload = bytes(data[offset : offset + payload_len])
    return (
        HuffmanCode(
            symbols=symbols,
            lengths=lengths,
            payload=payload,
            bit_length=int(bit_length),
            count=int(count),
        ),
        offset + payload_len,
    )
