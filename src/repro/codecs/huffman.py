"""A lossless byte-level Huffman codec, completing the registry's spectrum.

The canonical Huffman coder of :mod:`repro.baselines.huffman` operates on
integer symbol arrays; this codec applies it to the raw bytes of any numeric
array (alphabet ≤ 256, so the code table stays tiny), making it the registry's
lossless reference point: ratio ≈ 1 on incompressible float data, high on
low-entropy data, and zero reconstruction error always — the foil the paper's
lossy ratio/error trade-offs are judged against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..baselines.huffman import HuffmanCode, huffman_decode, huffman_encode
from ..core.exceptions import CodecError
from .base import Codec, CodecCapabilities
from .serialization import check_magic, pack_huffman, pack_shape, unpack_huffman, unpack_shape

__all__ = ["HuffmanCodec", "HuffmanCompressed"]

_VERSION = 1


@dataclass
class HuffmanCompressed:
    """Compressed form produced by :class:`HuffmanCodec`.

    Attributes
    ----------
    shape:
        Original array shape.
    dtype:
        Original dtype (restored exactly on decompression).
    code:
        The canonical Huffman code of the array's little-endian byte stream.
    """

    shape: tuple[int, ...]
    dtype: np.dtype
    code: HuffmanCode

    def size_bytes(self) -> int:
        return self.code.size_bytes() + 16


class HuffmanCodec(Codec):
    """Lossless byte-level entropy codec for numeric arrays of any dimensionality."""

    name: ClassVar[str] = "huffman"
    magic: ClassVar[bytes] = b"HUF1"
    # byte-level coding is rank-agnostic
    capabilities: ClassVar[CodecCapabilities] = CodecCapabilities(
        ndims=(1, 2, 3, 4, 5, 6, 7, 8),
        dtypes=("float32", "float64", "int8", "int16", "int32", "int64"),
        compressed_ops=(),
        lossless=True,
    )

    # ------------------------------------------------------------------ protocol
    def compress(self, array: np.ndarray) -> HuffmanCompressed:
        # lossless: non-finite values are representable, so skip the finiteness check
        array = self.validate_input(array, check_finite=False)
        little = np.ascontiguousarray(array, dtype=array.dtype.newbyteorder("<"))
        symbols = np.frombuffer(little.tobytes(), dtype=np.uint8)
        return HuffmanCompressed(
            shape=array.shape, dtype=array.dtype, code=huffman_encode(symbols)
        )

    def decompress(self, compressed: HuffmanCompressed) -> np.ndarray:
        raw = huffman_decode(compressed.code).astype(np.uint8).tobytes()
        little = compressed.dtype.newbyteorder("<")
        return np.frombuffer(raw, dtype=little).astype(compressed.dtype).reshape(
            compressed.shape
        )

    def to_bytes(self, compressed: HuffmanCompressed) -> bytes:
        dtype_tag = np.dtype(compressed.dtype).str.encode("ascii")
        out = bytearray()
        out += self.magic
        out += struct.pack("<B", _VERSION)
        out += pack_shape(compressed.shape)
        out += struct.pack("<B", len(dtype_tag)) + dtype_tag
        out += pack_huffman(compressed.code)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> HuffmanCompressed:
        offset = check_magic(data, cls.magic, _VERSION, cls.name)
        shape, offset = unpack_shape(data, offset)
        (tag_len,) = struct.unpack_from("<B", data, offset)
        offset += 1
        try:
            dtype = np.dtype(data[offset : offset + tag_len].decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise CodecError(f"corrupt huffman stream: bad dtype tag: {exc}") from exc
        offset += tag_len
        code, offset = unpack_huffman(data, offset)
        return HuffmanCompressed(shape=shape, dtype=dtype, code=code)

    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        """``nan``: entropy-coded size is data-dependent (use :meth:`measured_ratio`)."""
        return float("nan")

    def roundtrip_bound(self, array: np.ndarray) -> float:
        return 0.0
