"""The core PyBlaz pipeline exposed as a registrable :class:`Codec`.

This adapter is a thin wrapper over :class:`repro.core.Compressor` and the
bit-exact stream format of :mod:`repro.core.codec`; it adds nothing numerically.
Its job is to make the core pipeline interchangeable with the baselines: a fixed
interface, a self-describing byte stream, capability flags, and the loose (but
always valid) round-trip bound assembled from the §IV-D error analysis.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..core import codec as core_codec
from ..core.blocking import block_array
from ..core.compressed import CompressedArray
from ..core.compressor import Compressor
from ..core.settings import CompressionSettings
from ..core.transforms import get_transform
from ..numerics import round_to_format
from .base import Codec, CodecCapabilities

__all__ = ["PyBlazCodec"]


class PyBlazCodec(Codec):
    """The paper's compressor behind the uniform codec interface.

    Parameters
    ----------
    settings:
        A full :class:`CompressionSettings`; fixes the dimensionality.  When
        omitted, settings are derived per input from the keyword defaults below,
        with a hypercubic ``(block_extent,) * ndim`` block shape — which is what
        lets one unconfigured instance serve 1- to 4-dimensional arrays.
    block_extent, float_format, index_dtype, transform:
        Per-dimension block extent and the remaining pipeline knobs used when
        ``settings`` is not given.
    backend:
        Kernel backend executing the hot loop (see :mod:`repro.kernels`).
        Overrides ``settings.backend`` when both are given; applies to both
        compression and decompression of this instance.
    """

    name: ClassVar[str] = "pyblaz"
    magic: ClassVar[bytes] = b"PBLZ"
    # the core pipeline handles any dimensionality; 8 covers every realistic
    # scientific-array rank while keeping the capability tuple finite
    capabilities: ClassVar[CodecCapabilities] = CodecCapabilities(
        ndims=(1, 2, 3, 4, 5, 6, 7, 8),
        dtypes=("float32", "float64"),
        compressed_ops=(
            "add", "subtract", "negate", "multiply_scalar", "dot", "mean",
            "variance", "covariance", "l2_norm", "euclidean_distance",
            "cosine_similarity", "structural_similarity", "wasserstein_distance",
        ),
        lossless=False,
    )

    def __init__(
        self,
        settings: CompressionSettings | None = None,
        *,
        block_extent: int = 4,
        float_format: str = "float32",
        index_dtype: str = "int16",
        transform: str = "dct",
        backend: str | None = None,
    ):
        self.settings = settings
        self.backend = str(backend).lower() if backend is not None else None
        self._block_extent = int(block_extent)
        self._defaults = {
            "float_format": float_format,
            "index_dtype": index_dtype,
            "transform": transform,
        }

    def _settings_for(self, ndim: int) -> CompressionSettings:
        if self.settings is not None:
            return self.settings
        return CompressionSettings(
            block_shape=(self._block_extent,) * ndim, **self._defaults
        )

    # ------------------------------------------------------------------ protocol
    def compress(self, array: np.ndarray) -> CompressedArray:
        array = self.validate_input(array)
        return Compressor(self._settings_for(array.ndim), backend=self.backend).compress(array)

    def decompress(self, compressed: CompressedArray) -> np.ndarray:
        # the compressed form carries its settings, so decompression never
        # depends on this instance's configuration (the streaming store relies
        # on this when it decodes chunks knowing only the codec name) — except
        # the kernel backend, a pure execution choice of this instance
        return Compressor(compressed.settings, backend=self.backend).decompress(compressed)

    def to_bytes(self, compressed: CompressedArray) -> bytes:
        return core_codec.serialize(compressed)

    @classmethod
    def from_bytes(cls, data: bytes) -> CompressedArray:
        return core_codec.deserialize(data)

    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        settings = self._settings_for(len(array_shape))
        return core_codec.compression_ratio(
            settings, tuple(array_shape), input_bits_per_element=input_bits
        )

    def roundtrip_bound(self, array: np.ndarray) -> float:
        """Loose L∞ bound from the §IV-D analysis, data-dependent via the maxima.

        Per block: each kept coefficient is off by at most the half-bin width
        ``N/(2r)`` plus the rounding of the stored maximum (``ε·N``); each pruned
        coefficient contributes its own magnitude; orthonormal basis amplitudes
        are ≤ 1, so summing per-coefficient errors bounds the per-element error.
        The data-type-conversion step adds ``ε·max|x|``.  A 2× safety factor
        absorbs float64 arithmetic noise.
        """
        array = np.asarray(array, dtype=np.float64)
        settings = self._settings_for(array.ndim)
        fmt = settings.float_format
        eps = fmt.machine_epsilon

        lowered = round_to_format(array, fmt)
        blocked = block_array(lowered, settings.block_shape)
        coefficients = np.abs(
            get_transform(settings.transform, settings.block_shape).forward(blocked)
        )
        per_block = coefficients.reshape(-1, settings.block_size)
        maxima = per_block.max(axis=1)
        mask = settings.mask.ravel()
        pruned_sum = per_block[:, ~mask].sum(axis=1) if not mask.all() else 0.0
        radius = float(settings.index_radius)
        kept = settings.kept_per_block
        binning = kept * maxima * (1.0 / (2.0 * radius) + eps)
        conversion = eps * float(np.max(np.abs(array), initial=0.0)) + fmt.smallest_subnormal
        return 2.0 * (float(np.max(binning + pruned_sum, initial=0.0)) + conversion)

    # ------------------------------------------------------------------ streaming
    @property
    def chunk_row_multiple(self) -> int:
        if self.settings is not None:
            return int(self.settings.block_shape[0])
        return self._block_extent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.settings is not None:
            return f"PyBlazCodec({self.settings.describe()})"
        return f"PyBlazCodec(block_extent={self._block_extent}, **{self._defaults})"
