"""The fixed-rate ZFP-style baseline as a registrable :class:`Codec`.

The in-memory :class:`repro.baselines.zfp_like.ZFPCompressed` keeps every
negabinary coefficient in a ``uint64`` even though only ``kept_planes`` bit
planes survive truncation.  The byte stream here recovers the fixed-rate budget:
each block's coefficients are right-shifted by the block's (recomputable) number
of dropped planes and stored in the narrowest unsigned dtype that holds
``kept_planes`` bits, alongside the per-block exponent and shift.  At the
paper's 16-bits-per-value rate this serializes within a few percent of the
nominal ``16 × elements`` bits.
"""

from __future__ import annotations

import struct
from typing import ClassVar

import numpy as np

from ..baselines.zfp_like import (
    BLOCK,
    EXPONENT_BITS,
    MAX_SHIFT,
    PRECISION,
    ZFPCompressed,
    ZFPCompressor,
    bit_lengths,
)
from ..core.exceptions import CodecError
from .base import Codec, CodecCapabilities
from .serialization import check_magic, pack_shape, unpack_shape

__all__ = ["ZFPCodec"]

_VERSION = 1


def _plane_dtype(kept_planes: int) -> np.dtype:
    """Narrowest little-endian unsigned dtype holding ``kept_planes`` bits."""
    for bits, dtype in ((8, "<u1"), (16, "<u2"), (32, "<u4")):
        if kept_planes <= bits:
            return np.dtype(dtype)
    return np.dtype("<u8")


class ZFPCodec(Codec):
    """Fixed-rate ZFP-style codec for 1- to 3-dimensional float arrays.

    Parameters
    ----------
    bits_per_value:
        The fixed rate in bits per array element (the paper's Fig 3 uses 8, 16
        and 32 on FP64 inputs, i.e. nominal ratios 8, 4 and 2).
    """

    name: ClassVar[str] = "zfp"
    magic: ClassVar[bytes] = b"ZFPL"
    capabilities: ClassVar[CodecCapabilities] = CodecCapabilities(
        ndims=(1, 2, 3),
        dtypes=("float32", "float64"),
        compressed_ops=(),
        lossless=False,
    )

    def __init__(self, bits_per_value: int = 16):
        self._impl = ZFPCompressor(bits_per_value)

    @property
    def bits_per_value(self) -> int:
        return self._impl.bits_per_value

    # ------------------------------------------------------------------ protocol
    def compress(self, array: np.ndarray) -> ZFPCompressed:
        return self._impl.compress(self.validate_input(array))

    def decompress(self, compressed: ZFPCompressed) -> np.ndarray:
        return self._impl.decompress(compressed)

    def to_bytes(self, compressed: ZFPCompressed) -> bytes:
        planes = compressed.planes
        kept = compressed.kept_planes
        # recompute each block's dropped-plane count: truncation zeroes the low
        # `drop` bits but keeps the top bit, so the max's bit length is unchanged
        block_max = planes.max(axis=1)
        drops = np.clip(bit_lengths(block_max) - kept, 0, 63).astype(np.uint8)
        shifted = planes >> drops.astype(np.uint64).reshape(-1, 1)
        dtype = _plane_dtype(kept)

        out = bytearray()
        out += self.magic
        out += struct.pack("<B", _VERSION)
        out += pack_shape(compressed.shape)
        out += struct.pack("<HB", compressed.bits_per_value, kept)
        out += np.ascontiguousarray(compressed.exponents, dtype="<i2").tobytes()
        out += drops.tobytes()
        out += shifted.astype(dtype).tobytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> ZFPCompressed:
        offset = check_magic(data, cls.magic, _VERSION, cls.name)
        shape, offset = unpack_shape(data, offset)
        bits_per_value, kept = struct.unpack_from("<HB", data, offset)
        offset += 3
        ndim = len(shape)
        grid = tuple(-(-extent // BLOCK) for extent in shape)
        n_blocks = int(np.prod(grid))
        block_size = BLOCK**ndim
        exponents = np.frombuffer(data, dtype="<i2", count=n_blocks, offset=offset)
        offset += 2 * n_blocks
        drops = np.frombuffer(data, dtype=np.uint8, count=n_blocks, offset=offset)
        offset += n_blocks
        dtype = _plane_dtype(kept)
        shifted = np.frombuffer(
            data, dtype=dtype, count=n_blocks * block_size, offset=offset
        ).astype(np.uint64).reshape(n_blocks, block_size)
        planes = shifted << drops.astype(np.uint64).reshape(-1, 1)
        return ZFPCompressed(
            shape=shape,
            exponents=exponents.astype(np.int16).reshape(grid),
            planes=planes,
            bits_per_value=int(bits_per_value),
            kept_planes=int(kept),
        )

    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        return self._impl.compression_ratio(tuple(array_shape), input_bits)

    def roundtrip_bound(self, array: np.ndarray) -> float:
        """Loose L∞ bound from the fixed-rate truncation budget.

        Coefficients live in ≈``2^30`` fixed-point units; their negabinary
        encodings have bit length ≤ 34, so zeroing all but ``kept_planes``
        planes perturbs a coefficient by < ``2^(34-kept)`` units (plus ~2 units
        of rounding).  The inverse lifting transform amplifies by at most
        ``3.75`` per axis, and the block-floating-point quantisation step is
        ``2^-min(30-e, 1022)`` with ``2^e ≤ 2·max|x|`` (the clamp matches the
        compressor's shift clamp for deep-subnormal data).  A 4× safety factor
        on top.
        """
        array = np.asarray(array, dtype=np.float64)
        biggest = float(np.max(np.abs(array), initial=0.0))
        if biggest == 0.0 or array.size == 0:
            return 0.0
        ndim = array.ndim
        if ndim not in self.capabilities.ndims:
            raise CodecError(
                f"codec {self.name!r} supports {self.capabilities.ndims}-dimensional "
                f"arrays, got ndim={ndim}"
            )
        block_size = BLOCK**ndim
        budget_bits = self.bits_per_value * block_size
        kept = max(0, min((budget_bits - EXPONENT_BITS) // block_size, 64))
        _, exponent = np.frexp(biggest)
        truncation = 2.0 ** max(0, PRECISION + 4 - kept) + 2.0
        step = 2.0 ** (-min(PRECISION - int(exponent), MAX_SHIFT))
        return 4.0 * (3.75**ndim) * truncation * step
