"""String-keyed codec registry with lazy imports.

Registration stores only a ``"module:ClassName"`` spec (or an already-imported
class) plus the codec's stream magic, so listing codecs or detecting a stream's
codec never imports the implementation modules; :func:`get_codec_class` resolves
the spec on first use.  The five built-in codecs are registered by
:mod:`repro.codecs` at import time; third-party backends call
:func:`register_codec` themselves.
"""

from __future__ import annotations

import importlib

from ..core.exceptions import CodecError
from .base import Codec

__all__ = [
    "register_codec",
    "get_codec",
    "get_codec_class",
    "available_codecs",
    "detect_codec",
]

#: name -> (spec, magic); spec is a "module:attr" string or a Codec subclass.
_REGISTRY: dict[str, tuple[object, bytes | None]] = {}

#: The chunked-store prefix, which shares the one-shot pyblaz prefix "PBLZ" and
#: must therefore be checked first during detection.
_STORE_MAGIC = b"PBLZC"


def register_codec(name: str, codec: "str | type[Codec]", *, magic: bytes | None = None) -> None:
    """Register a codec under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case identifier).
    codec:
        Either a :class:`Codec` subclass or a lazy ``"module:ClassName"`` spec —
        the latter defers the import until :func:`get_codec_class`.
    magic:
        The codec's stream prefix, enabling :func:`detect_codec`.  When omitted
        and ``codec`` is a class, the class's own ``magic`` attribute is used.

    Re-registering an existing name replaces it (useful for tests and for
    overriding a built-in with an optimized third-party implementation).
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise CodecError(f"codec name must be a non-empty identifier, got {name!r}")
    if isinstance(codec, str):
        if ":" not in codec:
            raise CodecError(
                f"lazy codec spec must look like 'package.module:ClassName', got {codec!r}"
            )
    elif isinstance(codec, type) and issubclass(codec, Codec):
        if magic is None:
            magic = getattr(codec, "magic", None)
    else:
        raise CodecError(
            f"codec must be a Codec subclass or a 'module:ClassName' string, got {codec!r}"
        )
    _REGISTRY[name.lower()] = (codec, magic)


def available_codecs() -> tuple[str, ...]:
    """Sorted names of every registered codec."""
    return tuple(sorted(_REGISTRY))


def get_codec_class(name: str) -> "type[Codec]":
    """Resolve ``name`` to its :class:`Codec` subclass, importing lazily."""
    try:
        spec, _ = _REGISTRY[name.lower()]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; registered codecs: {', '.join(available_codecs())}"
        ) from None
    if isinstance(spec, str):
        module_name, _, attr = spec.partition(":")
        try:
            resolved = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise CodecError(f"codec {name!r} failed to import from {spec!r}: {exc}") from exc
        if not (isinstance(resolved, type) and issubclass(resolved, Codec)):
            raise CodecError(f"codec spec {spec!r} did not resolve to a Codec subclass")
        # cache the resolved class so later lookups skip the import machinery
        _REGISTRY[name.lower()] = (resolved, _REGISTRY[name.lower()][1])
        spec = resolved
    return spec


def get_codec(name: str, **params) -> Codec:
    """Instantiate the codec registered under ``name`` with ``params``.

    Parameter errors (unknown keyword, invalid value) surface as
    :class:`CodecError`.
    """
    cls = get_codec_class(name)
    try:
        return cls(**params)
    except TypeError as exc:  # unknown/missing constructor keywords
        raise CodecError(f"invalid parameters for codec {name!r}: {exc}") from exc


def detect_codec(data: bytes) -> str:
    """Name of the codec whose magic prefixes ``data``.

    Chunked-store files are not one-shot codec streams; they get a pointed
    error directing the caller at :class:`repro.streaming.CompressedStore`.
    """
    if data[: len(_STORE_MAGIC)] == _STORE_MAGIC:
        raise CodecError(
            "this is a chunked store, not a one-shot codec stream; open it with "
            "repro.streaming.CompressedStore (CLI: stream-decompress)"
        )
    for name, (_, magic) in sorted(_REGISTRY.items()):
        if magic and data[: len(magic)] == magic:
            return name
    raise CodecError(
        "unrecognized stream: no registered codec's magic matches "
        f"the leading bytes {data[:5]!r}"
    )
