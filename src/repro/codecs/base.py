"""The :class:`Codec` protocol every compressor in this repository implements.

A codec is the unit the CLI, the streaming store, the experiment harnesses and the
benchmarks program against: something that turns an array into a compressed object,
turns that object into self-describing bytes and back, and reports its compression
ratio.  Capability flags (:class:`CodecCapabilities`) describe what each codec can
handle — dimensionalities, input dtypes, compressed-space operations, losslessness —
so consumers can iterate the registry and skip combinations a codec does not
support instead of special-casing names.

The contract, for a codec ``c`` and a supported array ``x``:

* ``c.decompress(c.from_bytes(c.to_bytes(c.compress(x))))`` reconstructs ``x``
  within ``c.roundtrip_bound(x)`` in L∞ (exactly, for lossless codecs), and the
  bytes trip changes nothing: decompressing the deserialized object equals
  decompressing the original object bit for bit.
* ``to_bytes`` output starts with the codec's :attr:`magic`, so streams are
  self-identifying (:func:`repro.codecs.detect_codec`).
* invalid dtypes/shapes/parameters raise :class:`repro.core.errors.CodecError`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from ..core.exceptions import CodecError

__all__ = ["Codec", "CodecCapabilities"]


@dataclass(frozen=True)
class CodecCapabilities:
    """What a codec supports, for registry consumers to query.

    Parameters
    ----------
    ndims:
        Array dimensionalities the codec accepts.
    dtypes:
        Input dtypes the codec is designed for (informational; integer inputs are
        promoted to float64 by the lossy codecs).
    compressed_ops:
        Names of the operations the codec can perform in compressed space without
        decompressing (empty for codecs that only store).
    lossless:
        Whether decompression reproduces the input bit for bit.
    """

    ndims: tuple[int, ...]
    dtypes: tuple[str, ...] = ("float32", "float64")
    compressed_ops: tuple[str, ...] = field(default=())
    lossless: bool = False

    def describe(self) -> str:
        """One-line human-readable capability summary."""
        ops = ",".join(self.compressed_ops) if self.compressed_ops else "-"
        return (
            f"ndims={','.join(map(str, self.ndims))} "
            f"dtypes={','.join(self.dtypes)} "
            f"lossless={'yes' if self.lossless else 'no'} ops={ops}"
        )


class Codec(abc.ABC):
    """Abstract base for every compressor backend.

    Subclasses set :attr:`name` (the registry key), :attr:`magic` (the 4-byte
    stream prefix emitted by :meth:`to_bytes`) and :attr:`capabilities`, and
    implement the abstract methods.  See the module docstring of
    :mod:`repro.codecs` for how to register a third-party implementation.
    """

    #: Registry key, e.g. ``"zfp"``.
    name: ClassVar[str]
    #: First bytes of every stream :meth:`to_bytes` produces.
    magic: ClassVar[bytes]
    #: What this codec supports.
    capabilities: ClassVar[CodecCapabilities]

    # ------------------------------------------------------------------ protocol
    @abc.abstractmethod
    def compress(self, array: np.ndarray) -> Any:
        """Compress ``array`` into this codec's compressed object."""

    @abc.abstractmethod
    def decompress(self, compressed: Any) -> np.ndarray:
        """Reconstruct an array from a compressed object."""

    @abc.abstractmethod
    def to_bytes(self, compressed: Any) -> bytes:
        """Serialize a compressed object to a self-describing byte string."""

    @classmethod
    @abc.abstractmethod
    def from_bytes(cls, data: bytes) -> Any:
        """Inverse of :meth:`to_bytes`.

        A classmethod on purpose: the stream is self-describing, so no instance
        parameters are needed to decode it (the streaming store relies on this to
        decode chunks knowing only the codec *name*).
        """

    @abc.abstractmethod
    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        """Nominal (data-independent) compression ratio for ``array_shape``.

        Codecs whose output size depends on the data (entropy coders) return
        ``nan``; use :meth:`measured_ratio` for those.
        """

    @abc.abstractmethod
    def roundtrip_bound(self, array: np.ndarray) -> float:
        """Documented L∞ bound on ``|decompress(compress(array)) - array|``.

        May be loose (each codec's docstring derives its constant) but must hold
        for every supported input; the cross-codec property suite enforces it.
        Lossless codecs return ``0.0``.
        """

    # ------------------------------------------------------------------ shared helpers
    @property
    def chunk_row_multiple(self) -> int:
        """Preferred slab-row alignment for streaming (1 = no preference).

        Block codecs report their axis-0 block extent so streamed slabs tile
        whole blocks; for the core pyblaz codec this is what makes streamed
        output bit-identical to one-shot compression.
        """
        return 1

    def validate_input(self, array: np.ndarray, *, check_finite: bool = True) -> np.ndarray:
        """Common input validation: reject unsupported ndim/dtype/empty/non-finite.

        Returns ``np.asarray(array)``; raises :class:`CodecError` otherwise.
        """
        array = np.asarray(array)
        if array.dtype.kind not in "fiu":
            raise CodecError(
                f"codec {self.name!r} compresses real numeric arrays, got dtype {array.dtype}"
            )
        if array.ndim not in self.capabilities.ndims:
            raise CodecError(
                f"codec {self.name!r} supports {self.capabilities.ndims}-dimensional "
                f"arrays, got ndim={array.ndim}"
            )
        if array.size == 0:
            raise CodecError("cannot compress an empty array")
        if check_finite and array.dtype.kind == "f" and not np.all(np.isfinite(array)):
            raise CodecError("input contains non-finite values")
        return array

    def measured_ratio(self, array: np.ndarray) -> float:
        """Achieved ratio on concrete data: input bytes over serialized bytes."""
        array = np.asarray(array)
        data = self.to_bytes(self.compress(array))
        return (array.size * array.dtype.itemsize) / len(data)

    def describe(self) -> str:
        """One-line summary used by the CLI ``codecs`` listing."""
        return f"{self.name}: {self.capabilities.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
