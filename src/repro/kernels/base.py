"""The kernel-backend protocol: how the transform+binning hot loop is executed.

A :class:`KernelBackend` realises the two numeric kernels at the heart of the
pipeline — the fused forward transform → per-block maxima → binning step of
compression, and the inverse transform of decompression — for one *execution
strategy*.  The strategy is orthogonal to *what* is computed: every backend
consumes the same blocked arrays and :class:`repro.core.settings.CompressionSettings`
and produces the same ``(maxima, indices)`` contract, so backends are
interchangeable everywhere a :class:`repro.core.Compressor` runs.

Exactness contract
------------------

Backends come in two exactness classes, advertised by :attr:`KernelBackend.bit_exact`:

* **Bit-exact** backends (``reference``) fix the per-element summation order, so
  transforming any subset of blocks is bit-identical to transforming them all at
  once.  This is the invariant the streaming :class:`repro.streaming.ChunkedCompressor`
  and the golden-file suites rest on.
* **Fast** backends (``gemm``, ``numba``) are free to reassociate the contraction
  (BLAS kernels, optionally float32 accumulation).  Their results agree with
  ``reference`` within the documented :meth:`KernelBackend.accumulation_tolerance`:
  every transform coefficient is within ``tol × N`` of the reference coefficient,
  where ``N`` is the block's maximum coefficient magnitude.  :func:`parity_bound`
  turns that per-coefficient bound into a decompressed-value bound the parity
  suite asserts.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.settings import CompressionSettings
    from ..core.transforms import Transform

__all__ = ["KernelBackend", "parity_bound"]


class KernelBackend(abc.ABC):
    """One execution strategy for the transform+binning hot loop.

    Class attributes
    ----------------
    name:
        Registry key (lower-case identifier).
    bit_exact:
        Whether results are bit-identical to the ``reference`` backend for every
        input and every chunking of the block grid.
    summary:
        One-line human-readable description for the CLI ``backends`` listing.
    """

    name: ClassVar[str] = "abstract"
    bit_exact: ClassVar[bool] = False
    summary: ClassVar[str] = ""

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        """Why :meth:`is_available` is False (``None`` when available)."""
        return None

    # ------------------------------------------------------------------ kernels
    @abc.abstractmethod
    def transform_and_bin(
        self,
        blocked: np.ndarray,
        transform: "Transform",
        settings: "CompressionSettings",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused forward transform → per-block maxima → integer binning.

        Parameters
        ----------
        blocked:
            ``(grid..., block...)``-shaped array from
            :func:`repro.core.blocking.block_array`.
        transform:
            The separable orthonormal transform matching ``settings``.
        settings:
            The compression configuration (block shape, index dtype, ...).

        Returns
        -------
        tuple
            ``(maxima, indices)``: float64 per-block maxima shaped like the grid
            axes, and bin indices of ``settings.index_dtype`` shaped like
            ``blocked``.
        """

    @abc.abstractmethod
    def inverse_transform(
        self,
        coefficients: np.ndarray,
        transform: "Transform",
        settings: "CompressionSettings",
    ) -> np.ndarray:
        """Inverse transform of blocked coefficients back into blocked data."""

    # ------------------------------------------------------------------ fused passes
    def compile_fused_pass(self, signature):
        """Compile one fused plan pass into a single kernel, or ``None`` to decline.

        ``signature`` is a :class:`repro.engine.compile.PassSignature` (duck-typed
        here to keep the dependency one-way: the engine imports kernels, never
        the reverse) describing the term set, index dtype, block geometry and
        index radius the kernel may specialise on.  A returned kernel is called
        as ``kernel(chunks, shifts) -> list[np.ndarray]``:

        * ``chunks`` — the aligned decoded :class:`repro.core.CompressedArray`
          tuple, one per source position;
        * ``shifts`` — float64 per-source global DC means to subtract from each
          source's DC column (all zeros for uncentered passes);
        * result — one float64 per-block partial-sum vector per signature term,
          in term order (the ``dc`` term's vector is the per-block DC
          coefficients themselves).

        The default declines (the engine then runs the interpreted partials),
        so backends without a fused-pass story need no changes.  Backends that
        do compile must stay within :meth:`fused_fold_tolerance`.
        """
        return None

    # ------------------------------------------------------------------ contract
    def fused_fold_tolerance(self, settings: "CompressionSettings") -> float:
        """Per-block error bound of :meth:`compile_fused_pass` partial sums.

        For every summing fold term, the compiled per-block partial sum is
        within ``fused_fold_tolerance(settings) × Σ_j |x_j|`` of the reference
        per-block sum over the same summands ``x_j`` (the per-coefficient
        products/squares, which are bit-identical — only the summation order
        differs).  ``dc`` vectors are exempt: they involve no summation and are
        bit-identical on every backend.  Backends without a fused-pass compiler
        return ``0.0``.
        """
        return 0.0

    def accumulation_tolerance(self, settings: "CompressionSettings") -> float:
        """Per-coefficient error bound relative to the block maximum ``N``.

        For any input, each transform coefficient produced by this backend is
        within ``accumulation_tolerance(settings) × N`` of the ``reference``
        coefficient of the same block.  Bit-exact backends return ``0.0``; fast
        backends derive it from the accumulation dtype and the contraction
        length (see :func:`repro.kernels.gemm.accumulation_tolerance`).
        """
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, bit_exact={self.bit_exact})"


def parity_bound(
    backend: KernelBackend,
    settings: "CompressionSettings",
    maxima: np.ndarray,
) -> float:
    """L∞ bound on ``|decompress(backend) − decompress(reference)|``.

    A per-coefficient perturbation of ``tol × N`` moves the scaled bin value by
    at most ``tol × r`` (``r`` the index radius), so after rounding the bin
    indices differ by at most ``tol × r + 1``; unbinning multiplies back by
    ``N / r``.  The stored maxima themselves may differ by one working-format
    ulp (``ε_fmt × N``), perturbing every coefficient of the block.  Basis
    amplitudes are ≤ 1, so summing the ``B`` per-coefficient errors bounds the
    per-element error; a 2× safety factor absorbs float64 arithmetic noise.
    """
    tol = backend.accumulation_tolerance(settings)
    radius = float(settings.index_radius)
    eps_fmt = settings.float_format.machine_epsilon
    n_max = float(np.max(maxima, initial=0.0))
    per_coefficient = n_max * (tol + 1.0 / radius + eps_fmt)
    return 2.0 * settings.block_size * per_coefficient
