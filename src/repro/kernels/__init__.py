"""Kernel backends: interchangeable execution strategies for the hot loop.

The compressor's cost is concentrated in two numeric kernels — the fused
forward transform→maxima→binning step of compression and the inverse transform
of decompression.  This subpackage makes the *implementation* of those kernels
a string-keyed, lazily-imported choice (mirroring :mod:`repro.codecs`), so the
same pipeline can run bit-exactly for reproducibility or at BLAS/JIT speed for
throughput:

* ``reference`` — the fixed-order float64 einsum path.  Bit-identical under any
  chunking of the block grid; the default everywhere, and the only backend the
  streaming :class:`repro.streaming.ChunkedCompressor` uses unless explicitly
  overridden.
* ``gemm`` — the whole separable transform collapsed into a single 2-D BLAS
  GEMM via the Kronecker operator, fused with binning through preallocated
  buffers, accumulating in float32 when the working format is ≤ 32 bits.
* ``numba`` — a fully-fused JIT per-block kernel; registered always, available
  only when the optional numba dependency is installed.

Selection is wired through :class:`repro.core.CompressionSettings` (the
``backend`` field), :class:`repro.core.Compressor` (the ``backend`` argument),
every :class:`repro.parallel.BlockExecutor`, the pyblaz codec and the CLI
(``--backend`` / the ``backends`` listing).  Third-party backends register via
:func:`register_backend`::

    from repro.kernels import KernelBackend, register_backend

    class MyKernel(KernelBackend):
        name = "mine"
        ...

    register_backend("mine", MyKernel)            # or "pkg.module:MyKernel"
    Compressor(settings, backend="mine")
"""

from .base import KernelBackend, parity_bound
from .registry import (
    available_backends,
    backend_is_available,
    get_backend,
    get_backend_class,
    register_backend,
)

__all__ = [
    "KernelBackend",
    "parity_bound",
    "register_backend",
    "get_backend",
    "get_backend_class",
    "available_backends",
    "backend_is_available",
    "DEFAULT_BACKEND",
]

#: The backend used when nothing selects one — the bit-exact reference path.
DEFAULT_BACKEND = "reference"

register_backend("reference", "repro.kernels.reference:ReferenceKernel")
register_backend("gemm", "repro.kernels.gemm:GemmKernel")
register_backend("numba", "repro.kernels.numba_backend:NumbaKernel")
