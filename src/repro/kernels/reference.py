"""The bit-exact reference backend: fixed-order einsum, float64 throughout.

This is the historical hot loop of :class:`repro.core.Compressor` behind the
:class:`repro.kernels.KernelBackend` interface.  The transform contracts one
block axis at a time with ``np.einsum(..., optimize=False)``, which never
dispatches to BLAS, so the per-element summation order is fixed and transforming
any subset of blocks is bit-identical to transforming them all at once — the
invariant streaming/chunked execution and the golden files rest on.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..core.binning import bin_coefficients
from .base import KernelBackend

__all__ = ["ReferenceKernel"]


class ReferenceKernel(KernelBackend):
    """Fixed-order einsum transform + shared binning helpers (bit-exact)."""

    name: ClassVar[str] = "reference"
    bit_exact: ClassVar[bool] = True
    summary: ClassVar[str] = (
        "fixed-order float64 einsum; bit-identical under any chunking (the default)"
    )

    def transform_and_bin(self, blocked, transform, settings):
        coefficients = transform.forward(blocked)
        return bin_coefficients(coefficients, settings.ndim, settings.index_dtype)

    def inverse_transform(self, coefficients, transform, settings):
        return transform.inverse(np.asarray(coefficients, dtype=np.float64))
