"""Optional numba backend: a JIT-compiled fused per-block kernel.

The whole per-block pipeline — Kronecker transform, maxima, scaling, rounding,
clipping — is one ``prange`` loop body, so each block is read once and its
indices written once with no intermediate arrays at all.  This is the closest
CPU analogue of the paper's fused GPU kernels.

numba is an *optional* dependency: when it is absent this module still imports
(the registry lists the backend as unavailable and :func:`repro.kernels.get_backend`
refuses it with a pointed error), and every consumer — the parity suite, the
benchmark harness, the CI smoke job — skips it automatically.

Exactness: the JIT kernel accumulates in float64 but rounds half-up
(``floor(x + 0.5)``) rather than numpy's round-half-to-even, so bin indices can
differ from ``reference`` by one at exact bin midpoints; together with the
compilation's freedom to reassociate this places ``numba`` under the same
documented tolerance contract as ``gemm`` (see
:func:`repro.kernels.base.parity_bound`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import ClassVar

import numpy as np

from ..core.binning import index_radius
from .base import KernelBackend
from .gemm import _operator_t, fused_fold_tolerance

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the usual case in minimal environments
    _numba = None

__all__ = ["NumbaKernel"]


@lru_cache(maxsize=None)
def _compiled_kernels():  # pragma: no cover - requires numba
    """Compile the fused forward and inverse kernels once per process."""

    @_numba.njit(parallel=True, cache=False)
    def forward(flat, op_t, radius, limit, indices_out, maxima_out):
        n_blocks, block_size = flat.shape
        for i in _numba.prange(n_blocks):
            row = np.empty(block_size, np.float64)
            block_max = 0.0
            for j in range(block_size):
                acc = 0.0
                for k in range(block_size):
                    acc += flat[i, k] * op_t[k, j]
                row[j] = acc
                magnitude = abs(acc)
                if magnitude > block_max:
                    block_max = magnitude
            maxima_out[i] = block_max
            # divide by the maximum before scaling so the product cannot
            # overflow for subnormal maxima (radius / block_max can reach inf)
            safe = block_max if block_max != 0.0 else 1.0
            for j in range(block_size):
                value = np.floor((row[j] / safe) * radius + 0.5)
                if value > limit:
                    value = limit
                elif value < -limit:
                    value = -limit
                indices_out[i, j] = int(value)

    @_numba.njit(parallel=True, cache=False)
    def inverse(flat, op_t, out):
        n_blocks, block_size = flat.shape
        for i in _numba.prange(n_blocks):
            for j in range(block_size):
                acc = 0.0
                for k in range(block_size):
                    acc += flat[i, k] * op_t[k, j]
                out[i, j] = acc

    return forward, inverse


def _fused_pass_source(signature) -> str:
    """Generate the specialised fused-pass loop body for one plan signature.

    One ``prange`` over blocks; inside, a single traversal of the kept
    coefficient columns feeds every term's accumulator — each source's index
    row is read once however many folds consume it.  Per-source descale
    constants (``N_i / r``) arrive precomputed in float64 so the per-element
    value ``F[i, j] * c`` is bit-identical to ``specified_coefficients``; the
    centered DC shift applies at column 0 exactly as the centered partials do.
    """
    loop_terms = [(index, name, positions)
                  for index, (name, positions) in enumerate(signature.terms)
                  if name != "dc"]
    read = sorted({position for _, _, positions in loop_terms
                   for position in positions})
    args = ", ".join(f"idx{k}, scale{k}" for k in range(signature.n_sources))
    lines = [
        f"def fused_pass({args}, shifts, out):",
        "    n_blocks = idx0.shape[0]",
        "    kept = idx0.shape[1]",
        "    for i in prange(n_blocks):",
    ]
    lines += [f"        c{k} = scale{k}[i]" for k in range(signature.n_sources)]
    lines += [f"        acc{index} = 0.0" for index, _, _ in loop_terms]
    if loop_terms:
        lines.append("        for j in range(kept):")
        lines += [f"            v{k} = idx{k}[i, j] * c{k}" for k in read]
        if signature.centered:
            lines.append("            if j == 0:")
            lines += [f"                v{k} = v{k} - shifts[{k}]" for k in read]
        for index, name, positions in loop_terms:
            if name in ("square", "centered_square"):
                product = f"v{positions[0]} * v{positions[0]}"
            elif name in ("product", "centered_product"):
                product = f"v{positions[0]} * v{positions[1]}"
            else:  # diff_square
                lines.append(f"            d{index} = "
                             f"v{positions[0]} - v{positions[1]}")
                product = f"d{index} * d{index}"
            lines.append(f"            acc{index} += {product}")
    for index, (name, positions) in enumerate(signature.terms):
        if name == "dc":
            lines.append(f"        out[{index}, i] = "
                         f"idx{positions[0]}[i, 0] * c{positions[0]}")
        else:
            lines.append(f"        out[{index}, i] = acc{index}")
    return "\n".join(lines)


@lru_cache(maxsize=None)
def _compiled_pass_kernel(signature):  # pragma: no cover - requires numba
    """JIT-compile (once per process per signature) the generated pass loop."""
    source = _fused_pass_source(signature)
    namespace: dict = {"prange": _numba.prange}
    exec(compile(source, f"<fused-pass {signature.terms}>", "exec"), namespace)
    return _numba.njit(parallel=True, cache=False)(namespace["fused_pass"])


class NumbaKernel(KernelBackend):
    """Fused per-block JIT kernel (requires the optional numba dependency)."""

    name: ClassVar[str] = "numba"
    bit_exact: ClassVar[bool] = False
    summary: ClassVar[str] = (
        "JIT-compiled fully-fused per-block loop (optional; skipped when numba "
        "is not installed)"
    )

    @classmethod
    def is_available(cls) -> bool:
        return _numba is not None

    @classmethod
    def unavailable_reason(cls) -> str | None:
        return None if _numba is not None else "numba is not installed"

    def accumulation_tolerance(self, settings) -> float:
        eps = float(np.finfo(np.float64).eps)
        return 4.0 * float(settings.block_size) ** 1.5 * eps

    def fused_fold_tolerance(self, settings) -> float:
        return fused_fold_tolerance(settings)

    # ------------------------------------------------------------------ fused passes
    def compile_fused_pass(self, signature):  # pragma: no cover - requires numba
        """One generated+JIT-compiled loop per plan signature (see
        :func:`_fused_pass_source`); declines when numba is absent so the
        engine falls back to the interpreter."""
        if _numba is None:
            return None
        jitted = _compiled_pass_kernel(signature)
        radius = float(signature.index_radius)
        n_terms = len(signature.terms)

        def kernel(chunks, shifts):
            args = []
            for chunk in chunks:
                args.append(np.ascontiguousarray(chunk.indices))
                args.append(chunk.maxima.reshape(-1) / radius)
            out = np.empty((n_terms, chunks[0].n_blocks), dtype=np.float64)
            jitted(*args, np.asarray(shifts, dtype=np.float64), out)
            return [np.array(row) for row in out]
        return kernel

    # ------------------------------------------------------------------ kernels
    def transform_and_bin(self, blocked, transform, settings):  # pragma: no cover
        ndim = settings.ndim
        block_size = settings.block_size
        blocked = np.asarray(blocked)
        grid_shape = blocked.shape[:-ndim] if blocked.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1

        flat2d = np.ascontiguousarray(blocked, dtype=np.float64).reshape(n_blocks, block_size)
        op_t = _operator_t(transform.name, settings.block_shape, False, "float64")
        dtype = settings.index_dtype
        radius = index_radius(dtype)
        limit = float(radius) if dtype.itemsize < 8 else float(2**63 - 1024)
        indices = np.empty((n_blocks, block_size), dtype=dtype)
        maxima = np.empty(n_blocks, dtype=np.float64)
        forward, _ = _compiled_kernels()
        forward(flat2d, op_t, float(radius), limit, indices, maxima)
        return maxima.reshape(grid_shape), indices.reshape(grid_shape + settings.block_shape)

    def inverse_transform(self, coefficients, transform, settings):  # pragma: no cover
        ndim = settings.ndim
        block_size = settings.block_size
        coefficients = np.asarray(coefficients)
        grid_shape = coefficients.shape[:-ndim] if coefficients.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1

        flat2d = np.ascontiguousarray(coefficients, dtype=np.float64).reshape(
            n_blocks, block_size
        )
        op_t = _operator_t(transform.name, settings.block_shape, True, "float64")
        out = np.empty_like(flat2d)
        _, inverse = _compiled_kernels()
        inverse(flat2d, op_t, out)
        return out.reshape(grid_shape + settings.block_shape)
