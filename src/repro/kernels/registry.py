"""String-keyed kernel-backend registry with lazy imports.

Mirrors :mod:`repro.codecs.registry`: registration stores only a
``"module:ClassName"`` spec (or an already-imported class), so listing backends
never imports the implementation modules — in particular the optional ``numba``
backend's module is only imported when actually requested.
:func:`get_backend_class` resolves the spec on first use and caches the class.

Backends may be registered but *unavailable* (a missing optional dependency):
:func:`available_backends` lists every registered name so callers can report
availability, while :func:`get_backend` refuses to instantiate an unavailable
backend with a pointed :class:`repro.core.exceptions.CodecError`.
"""

from __future__ import annotations

import importlib

from ..core.exceptions import CodecError
from .base import KernelBackend

__all__ = [
    "register_backend",
    "get_backend",
    "get_backend_class",
    "available_backends",
    "backend_is_available",
]

#: name -> spec; spec is a "module:attr" string or a KernelBackend subclass.
_REGISTRY: dict[str, object] = {}

#: name -> shared stateless instance (backends take no constructor parameters).
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(name: str, backend: "str | type[KernelBackend]") -> None:
    """Register a kernel backend under ``name``.

    ``backend`` is either a :class:`KernelBackend` subclass or a lazy
    ``"package.module:ClassName"`` spec; the latter defers the import until
    :func:`get_backend_class`.  Re-registering an existing name replaces it
    (useful for tests and for overriding a built-in with a tuned third-party
    implementation).
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise CodecError(f"backend name must be a non-empty identifier, got {name!r}")
    if isinstance(backend, str):
        if ":" not in backend:
            raise CodecError(
                f"lazy backend spec must look like 'package.module:ClassName', got {backend!r}"
            )
    elif not (isinstance(backend, type) and issubclass(backend, KernelBackend)):
        raise CodecError(
            f"backend must be a KernelBackend subclass or a 'module:ClassName' string, "
            f"got {backend!r}"
        )
    _REGISTRY[name.lower()] = backend
    _INSTANCES.pop(name.lower(), None)


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend (including unavailable ones)."""
    return tuple(sorted(_REGISTRY))


def get_backend_class(name: str) -> "type[KernelBackend]":
    """Resolve ``name`` to its :class:`KernelBackend` subclass, importing lazily."""
    try:
        spec = _REGISTRY[name.lower()]
    except KeyError:
        raise CodecError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        ) from None
    if isinstance(spec, str):
        module_name, _, attr = spec.partition(":")
        try:
            resolved = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise CodecError(f"backend {name!r} failed to import from {spec!r}: {exc}") from exc
        if not (isinstance(resolved, type) and issubclass(resolved, KernelBackend)):
            raise CodecError(f"backend spec {spec!r} did not resolve to a KernelBackend subclass")
        # cache the resolved class so later lookups skip the import machinery
        _REGISTRY[name.lower()] = resolved
        spec = resolved
    return spec


def backend_is_available(name: str) -> bool:
    """Whether the backend registered under ``name`` can run here."""
    return get_backend_class(name).is_available()


def get_backend(name: str) -> KernelBackend:
    """Return the (shared, stateless) backend instance registered under ``name``.

    Raises :class:`CodecError` for unknown names and for registered-but-
    unavailable backends (e.g. ``numba`` without numba installed), naming the
    missing dependency.
    """
    key = name.lower()
    instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    cls = get_backend_class(key)
    if not cls.is_available():
        reason = cls.unavailable_reason() or "unavailable in this environment"
        raise CodecError(f"kernel backend {key!r} is unavailable: {reason}")
    instance = cls()
    _INSTANCES[key] = instance
    return instance
