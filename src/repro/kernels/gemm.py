"""The GEMM fast path: one BLAS matmul per block grid, fused with binning.

Two ideas make this backend fast where the ``reference`` einsum path is slow:

1. **The separable transform is a single 2-D GEMM.**  A separable orthonormal
   transform over a block is the Kronecker product of its per-axis matrices:
   flattening each block (C order) to a row of length ``B = prod(block_shape)``,
   the whole forward transform of *all* blocks is one ``(n_blocks, B) @ (B, B)``
   matrix product — which numpy hands to BLAS.  The per-axis operator matrices
   are tiny (``B ≤ 1024`` covers every practical block shape), so the Kronecker
   operator stays cache-resident; larger blocks fall back to one 2-D GEMM per
   axis.  ``out=`` buffers are preallocated and the input copy is reused as the
   binning scratch buffer, so the fused transform→maxima→binning pipeline
   allocates two ``(n_blocks, B)`` buffers total — no intermediate float64
   copies like the unfused ``bin_coefficients``/``scale_to_indices`` chain.
2. **Optional low-precision accumulation.**  When the working float format is
   ≤ float32 the whole pipeline (GEMM, maxima, scaling) runs in float32, halving
   memory traffic; the stored maxima are rounded to the working format
   afterwards anyway, so no representable information is lost.

The price is exactness: BLAS reassociates the contraction, so results agree
with ``reference`` only within :func:`accumulation_tolerance` (documented
below, verified by the parity suite in ``tests/property/test_prop_kernels.py``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import ClassVar

import numpy as np

from ..core.binning import index_radius
from ..core.transforms import transform_matrix
from .base import KernelBackend

__all__ = ["GemmKernel", "accumulation_dtype", "accumulation_tolerance",
           "fused_fold_tolerance"]

#: Largest block size for which the full Kronecker operator is materialised
#: (a float64 1024×1024 operator is 8 MB); larger blocks use the per-axis path.
MAX_FUSED_OPERATOR = 1024


def accumulation_dtype(settings) -> np.dtype:
    """float32 when the working format is ≤ 32 bits, float64 otherwise."""
    return np.dtype(np.float32 if settings.float_format.storage_bits <= 32 else np.float64)


def accumulation_tolerance(settings) -> float:
    """Documented per-coefficient error bound relative to the block maximum.

    Reassociating a length-``B`` contraction at precision ``ε`` perturbs a
    coefficient by at most ``B·ε·max|x|``; orthonormality gives
    ``max|x| ≤ √B·N`` with ``N`` the block's max coefficient magnitude, so the
    relative-to-``N`` bound is ``B^1.5·ε`` — a 4× factor covers the abs/max/
    scale steps also running at accumulation precision.
    """
    eps = float(np.finfo(accumulation_dtype(settings)).eps)
    return 4.0 * float(settings.block_size) ** 1.5 * eps


def fused_fold_tolerance(settings) -> float:
    """Per-block fused-pass summation bound shared by the fast backends.

    Compiled fused passes accumulate per-block partial sums in float64 over the
    ``K = kept_per_block`` per-coefficient products (each product bit-identical
    to the reference summand — only the summation order differs from the
    reference dense block-axis reduction).  Reassociating a length-``K`` sum at
    precision ``ε`` perturbs it by at most ``K·ε·Σ|x_j|``; a 4× factor covers
    the DC-shift and subtraction steps of the centered/difference folds also
    rounding at float64.
    """
    eps = float(np.finfo(np.float64).eps)
    return 4.0 * float(settings.kept_per_block) * eps


@lru_cache(maxsize=None)
def _operator_t(
    name: str, block_shape: tuple[int, ...], inverse: bool, dtype_name: str
) -> np.ndarray:
    """Transposed Kronecker operator so that ``flat2d @ op_t`` applies the transform.

    The forward separable transform flattened over C-ordered blocks is
    ``K = M₁ ⊗ M₂ ⊗ … ⊗ M_k``; its inverse is ``Kᵀ`` (orthonormality), so the
    inverse operator is the untransposed ``K``.
    """
    operator = np.asarray(transform_matrix(name, block_shape[0]))
    for extent in block_shape[1:]:
        operator = np.kron(operator, transform_matrix(name, extent))
    result = operator if inverse else operator.T
    result = np.ascontiguousarray(result, dtype=np.dtype(dtype_name))
    result.setflags(write=False)
    return result


@lru_cache(maxsize=None)
def _clip_limit(index_dtype_name: str, acc_dtype_name: str) -> float:
    """Largest accumulation-dtype value that safely casts into the index dtype.

    ``float(radius)`` may round *up* to a value outside the index type (e.g.
    float32(2³¹−1) = 2³¹), which would wrap on the final integer cast; step
    down to the nearest representable value below the radius instead.
    """
    acc = np.dtype(acc_dtype_name)
    radius = index_radius(np.dtype(index_dtype_name))
    limit = np.asarray(radius, dtype=acc)
    # compare in exact integer space: float(radius) itself already rounds
    # 2⁶³−1 up to 2⁶³, so a float-float comparison would miss the overflow
    if int(limit) > radius:
        limit = np.nextafter(limit, np.asarray(0, dtype=acc))
    return float(limit)


def _apply_per_axis(flat_blocks: np.ndarray, matrices: tuple[np.ndarray, ...]) -> np.ndarray:
    """Contract each block axis via one 2-D GEMM (the large-block fallback).

    ``flat_blocks`` is ``(n_blocks,) + block_shape``; axis ``i+1`` is moved to
    the end, flattened, multiplied by ``Mᵢᵀ`` as a single ``(rest, bᵢ) @ (bᵢ, bᵢ)``
    product, and moved back.
    """
    result = flat_blocks
    for axis, matrix in enumerate(matrices, start=1):
        moved = np.moveaxis(result, axis, -1)
        shape = moved.shape
        flat2d = np.ascontiguousarray(moved).reshape(-1, shape[-1])
        out2d = np.matmul(flat2d, matrix.T.astype(flat2d.dtype, copy=False))
        result = np.moveaxis(out2d.reshape(shape), -1, axis)
    return np.ascontiguousarray(result)


class GemmKernel(KernelBackend):
    """BLAS-backed fused transform+binning with optional float32 accumulation."""

    name: ClassVar[str] = "gemm"
    bit_exact: ClassVar[bool] = False
    summary: ClassVar[str] = (
        "single-GEMM Kronecker transform fused with binning; float32 accumulation "
        "for ≤32-bit working formats"
    )

    def accumulation_tolerance(self, settings) -> float:
        return accumulation_tolerance(settings)

    def fused_fold_tolerance(self, settings) -> float:
        return fused_fold_tolerance(settings)

    # ------------------------------------------------------------------ fused passes
    def compile_fused_pass(self, signature):
        """Vectorized fused-pass kernel: one scaled matrix per source, one row
        dot per term.

        The interpreted step materialises the dense padded coefficient array
        once *per fold* (plus a primed-cache copy per extra fold); this kernel
        builds each source's ``(n_blocks, kept_per_block)`` scaled matrix
        ``S = F.astype(float64) * (N / r)`` exactly once — the same expression
        ``specified_coefficients`` evaluates, so each element is bit-identical
        — then every term is an ``einsum('ij,ij->i')`` row dot over it.  For
        the 6-op fused workload that cuts per-chunk memory traffic roughly
        from 18 array passes to 8, which is where the compiled speedup in
        BENCH_engine.json comes from; BLAS-free, so it is available wherever
        numpy is.
        """
        terms = signature.terms
        radius = float(signature.index_radius)
        centered = signature.centered
        n_sources = signature.n_sources

        if all(name == "dc" for name, _ in terms):
            # mean-only groups never need the full scaled matrix: the DC
            # column alone reproduces dc_partial bit for bit
            def dc_kernel(chunks, shifts):
                out = []
                for _, positions in terms:
                    chunk = chunks[positions[0]]
                    dc = chunk.indices[:, 0].astype(np.float64)
                    np.multiply(dc, chunk.maxima.reshape(-1) / radius, out=dc)
                    out.append(dc)
                return out
            return dc_kernel

        def kernel(chunks, shifts):
            scaled = []
            for position in range(n_sources):
                chunk = chunks[position]
                matrix = chunk.indices.astype(np.float64)
                np.multiply(matrix, chunk.maxima.reshape(-1, 1) / radius,
                            out=matrix)
                if centered:
                    matrix[:, 0] -= shifts[position]
                scaled.append(matrix)
            out = []
            for name, positions in terms:
                if name == "dc":
                    out.append(scaled[positions[0]][:, 0].copy())
                elif name in ("square", "centered_square"):
                    matrix = scaled[positions[0]]
                    out.append(np.einsum("ij,ij->i", matrix, matrix))
                elif name in ("product", "centered_product"):
                    out.append(np.einsum("ij,ij->i", scaled[positions[0]],
                                         scaled[positions[1]]))
                else:  # diff_square
                    difference = scaled[positions[0]] - scaled[positions[1]]
                    out.append(np.einsum("ij,ij->i", difference, difference))
            return out
        return kernel

    # ------------------------------------------------------------------ helpers
    def _forward_coefficients(
        self, flat2d: np.ndarray, transform, settings, acc: np.dtype
    ) -> np.ndarray:
        block_size = settings.block_size
        if block_size <= MAX_FUSED_OPERATOR:
            op_t = _operator_t(transform.name, settings.block_shape, False, acc.name)
            coefficients = np.empty_like(flat2d)
            np.matmul(flat2d, op_t, out=coefficients)
            return coefficients
        matrices = tuple(np.asarray(m) for m in transform.matrices)
        blocks = flat2d.reshape((flat2d.shape[0],) + settings.block_shape)
        return _apply_per_axis(blocks, matrices).reshape(flat2d.shape)

    # ------------------------------------------------------------------ kernels
    def transform_and_bin(self, blocked, transform, settings):
        ndim = settings.ndim
        block_size = settings.block_size
        blocked = np.asarray(blocked)
        grid_shape = blocked.shape[:-ndim] if blocked.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        acc = accumulation_dtype(settings)

        flat2d = np.ascontiguousarray(blocked, dtype=acc).reshape(n_blocks, block_size)
        coefficients = self._forward_coefficients(flat2d, transform, settings, acc)

        # Fused binning: the input copy is dead after the GEMM, so it doubles as
        # the scratch buffer — abs, scale, round and clip all run in place.
        # (Unless ascontiguousarray returned a view of the caller's array — a
        # contiguous input already at the accumulation dtype — which must not
        # be scribbled over.)
        if block_size > MAX_FUSED_OPERATOR or np.may_share_memory(flat2d, blocked):
            work = np.empty_like(coefficients)
        else:
            work = flat2d
        np.abs(coefficients, out=work)
        maxima_acc = work.max(axis=1)

        dtype = settings.index_dtype
        radius = index_radius(dtype)
        safe = np.where(maxima_acc == 0, acc.type(1), maxima_acc)
        # One per-row reciprocal + one per-element multiply is much cheaper
        # than a per-element division, but radius/safe overflows the
        # accumulation dtype for tiny block maxima.  Compute the per-row scale
        # in float64 and only fall back to the divide-first order of
        # binning.scale_to_indices (|c/safe| <= 1, so the product cannot
        # overflow) when any row's scale would not survive the downcast.
        scale = float(radius) / safe.astype(np.float64)
        if np.all(scale <= 0.5 * np.finfo(acc).max):
            np.multiply(coefficients, scale.astype(acc)[:, None], out=work)
        else:
            np.divide(coefficients, safe[:, None], out=work)
            np.multiply(work, acc.type(radius), out=work)
        np.rint(work, out=work)
        limit = _clip_limit(dtype.name, acc.name)
        np.clip(work, -limit, limit, out=work)
        indices = work.astype(dtype)

        maxima = maxima_acc.astype(np.float64).reshape(grid_shape)
        return maxima, indices.reshape(grid_shape + settings.block_shape)

    def inverse_transform(self, coefficients, transform, settings):
        ndim = settings.ndim
        block_size = settings.block_size
        coefficients = np.asarray(coefficients)
        grid_shape = coefficients.shape[:-ndim] if coefficients.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        acc = accumulation_dtype(settings)

        flat2d = np.ascontiguousarray(coefficients, dtype=acc).reshape(n_blocks, block_size)
        if block_size <= MAX_FUSED_OPERATOR:
            op_t = _operator_t(transform.name, settings.block_shape, True, acc.name)
            out = np.empty_like(flat2d)
            np.matmul(flat2d, op_t, out=out)
        else:
            matrices = tuple(np.asarray(m.T) for m in transform.matrices)
            blocks = flat2d.reshape((n_blocks,) + settings.block_shape)
            out = _apply_per_axis(blocks, matrices).reshape(n_blocks, block_size)
        return out.astype(np.float64).reshape(grid_shape + settings.block_shape)
