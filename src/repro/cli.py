"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands
-----------

``compress``    Compress a ``.npy`` array file into a PyBlaz stream.
``decompress``  Reconstruct a ``.npy`` array from a PyBlaz stream.
``info``        Print the header, settings and ratio of a PyBlaz stream.
``experiment``  Run one of the paper-reproduction experiments and print its table.

Examples
--------

::

    repro compress input.npy output.pblz --block 4,4,4 --float float32 --index int16
    repro decompress output.pblz roundtrip.npy
    repro info output.pblz
    repro experiment table1
    repro experiment fig6
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments
from .core import CompressionSettings, Compressor
from .core.codec import compressed_size_bits, compression_ratio, load, save

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": experiments.table1_operations,
    "ratio": experiments.compression_ratio,
    "fig2": experiments.fig2_blaz,
    "fig3": experiments.fig3_zfp,
    "fig4": experiments.fig4_shallow_water,
    "fig5": experiments.fig5_lgg,
    "fig6": experiments.fig6_fission,
    "fig7": experiments.fig7_op_times,
    "error-bounds": experiments.error_bounds,
}


def _parse_block(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid block shape {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyBlaz reproduction: compressed arrays with compressed-space operations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compress = sub.add_parser("compress", help="compress a .npy file")
    p_compress.add_argument("input", help="input .npy file")
    p_compress.add_argument("output", help="output compressed stream")
    p_compress.add_argument("--block", type=_parse_block, default=(4, 4, 4),
                            help="block shape, e.g. 4,4,4")
    p_compress.add_argument("--float", dest="float_format", default="float32",
                            choices=["bfloat16", "float16", "float32", "float64"])
    p_compress.add_argument("--index", dest="index_dtype", default="int16",
                            choices=["int8", "int16", "int32", "int64"])
    p_compress.add_argument("--transform", default="dct", choices=["dct", "haar", "identity"])

    p_decompress = sub.add_parser("decompress", help="decompress a stream to .npy")
    p_decompress.add_argument("input", help="compressed stream")
    p_decompress.add_argument("output", help="output .npy file")

    p_info = sub.add_parser("info", help="describe a compressed stream")
    p_info.add_argument("input", help="compressed stream")

    p_exp = sub.add_parser("experiment", help="run a paper-reproduction experiment")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    array = np.load(args.input)
    block = args.block
    if len(block) != array.ndim:
        print(
            f"error: block shape {block} does not match array dimensionality {array.ndim}",
            file=sys.stderr,
        )
        return 2
    settings = CompressionSettings(
        block_shape=block,
        float_format=args.float_format,
        index_dtype=args.index_dtype,
        transform=args.transform,
    )
    compressed = Compressor(settings).compress(array)
    save(compressed, args.output)
    ratio = compression_ratio(settings, array.shape, input_bits_per_element=array.dtype.itemsize * 8)
    print(f"compressed {args.input} {array.shape} -> {args.output}")
    print(f"settings: {settings.describe()}")
    print(f"accounting ratio vs {array.dtype}: {ratio:.3f}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    compressed = load(args.input)
    array = Compressor(compressed.settings).decompress(compressed)
    np.save(args.output, array)
    print(f"decompressed {args.input} -> {args.output} {array.shape}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    compressed = load(args.input)
    settings = compressed.settings
    print(f"shape: {compressed.shape}")
    print(f"settings: {settings.describe()}")
    print(f"blocks: {compressed.n_blocks} (grid {compressed.grid_shape})")
    print(f"stored bits (accounting): {compressed_size_bits(settings, compressed.shape)}")
    print(
        "compression ratio vs float64: "
        f"{compression_ratio(settings, compressed.shape, input_bits_per_element=64):.3f}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = _EXPERIMENTS[args.name]
    result = module.run()
    print(module.format_result(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "info": _cmd_info,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
