"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands
-----------

``compress``          Compress a ``.npy`` array file with any registered codec.
``decompress``        Reconstruct a ``.npy`` array from a codec stream (the
                      codec is detected from the stream's magic).
``stream-compress``   Compress a ``.npy`` file slab-by-slab (memmapped — the file
                      is never fully loaded) into a chunked store.
``stream-decompress`` Reconstruct a ``.npy`` array — or just a region of it —
                      from a chunked store, one chunk at a time.
``shard-init``        Create a sharded store directory (manifest + shard 0)
                      from a ``.npy`` file; appends grow it shard by shard
                      (``docs/sharding.md``).
``shard-append``      Append a ``.npy`` file's rows to a sharded store as a
                      new shard, updating the persisted fold partials so
                      reductions stay O(new chunks).
``stream-ops``        Run compressed-domain operation(s) over chunked or
                      sharded store(s)
                      out-of-core: scalar reductions print their value, the
                      array-valued operations write a new store chunk-by-chunk
                      (see ``docs/ops.md`` for the operation contracts).  The
                      ``evaluate`` operation fuses several ``--op`` reductions
                      into one planned sweep set (``docs/engine.md``); ``--json``
                      emits a machine-readable result with timing and the fused
                      pass count.
``serve``             Run the asyncio query service over a named catalog of
                      chunked stores: clients submit wire-form reduction
                      requests, and all requests arriving within one scheduler
                      tick are compiled into a single fused plan
                      (``docs/serving.md``).
``query``             Send reduction requests (or stats/catalog probes) to a
                      running ``serve`` instance — ``--op mean:a --op dot:a,b``
                      names reductions over the server's catalog names.
``verify-store``      Scan every chunk of a chunked store against its recorded
                      checksums (format v3) and report per-chunk status;
                      ``--repair-from MIRROR`` rebuilds corrupt chunks from a
                      replica (``docs/reliability.md``).  Sharded stores are
                      verified recursively — the report names the corrupt
                      shard *and* chunk, and repair takes a mirror directory.
``codecs``            List every registered codec with its capabilities and its
                      compression ratio on a standard 256×256 float64 probe.
``backends``          List every registered kernel backend (the execution
                      strategy of the transform+binning hot loop) with its
                      availability and exactness contract.
``info``              Print the header, settings and ratio of a codec stream or
                      chunked store.
``experiment``        Run one of the paper-reproduction experiments and print its
                      table.

Exit codes: 0 success, 2 usage errors (mismatched block dimensionality, invalid
region), 3 codec errors (:class:`repro.core.errors.CodecError` — unsupported
dtype/shape/parameters, unknown codec, corrupt stream).

Examples
--------

::

    repro compress input.npy output.pblz --block 4,4,4 --float float32 --index int16
    repro compress input.npy output.pblz --backend gemm
    repro compress input.npy output.zfp --codec zfp --bits 16
    repro decompress output.zfp roundtrip.npy
    repro stream-compress input.npy output.pblzc --codec sz --error-bound 1e-6
    repro stream-decompress output.pblzc roundtrip.npy --region 0:32,:,:
    repro shard-init day0.npy climate.shards --block 4,4 --slab-rows 64
    repro shard-append climate.shards day1.npy
    repro stream-ops mean climate.shards
    repro stream-ops dot a.pblzc b.pblzc
    repro stream-ops mean a.pblzc --workers 4
    repro stream-ops mean a.pblzc --prefetch 0
    repro stream-ops evaluate a.pblzc b.pblzc --op mean --op variance --op dot --json
    repro stream-ops add a.pblzc b.pblzc --out sum.pblzc --workers 4
    repro stream-ops scale a.pblzc --scalar 2.5 --out scaled.pblzc
    repro serve temps=temps.pblzc wind=wind.pblzc --port 7777
    repro serve temps=temps.pblzc --port 7777 --deadline 5 --max-in-flight 64
    repro serve temps=temps.pblzc --port 7777 --prefetch 0
    repro query --port 7777 --op mean:temps --op covariance:temps,wind --json
    repro query --port 7777 --op mean:temps --retries 3 --deadline 10
    repro query --port 7777 --stats
    repro verify-store temps.pblzc
    repro verify-store temps.pblzc --repair-from mirror/temps.pblzc
    repro verify-store climate.shards --repair-from mirror.shards
    repro codecs
    repro backends
    repro info output.pblz
    repro experiment table1
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments
from .codecs import available_codecs, detect_codec, get_codec, get_codec_class
from .codecs.serialization import DECODE_ERRORS
from .core import CompressionSettings
from .core.codec import compressed_size_bits, compression_ratio
from .core.exceptions import CodecError
from .kernels import (
    DEFAULT_BACKEND,
    available_backends,
    backend_is_available,
    get_backend_class,
)
from .streaming import ChunkedCompressor, CompressedStore, stream_compress
from .streaming.sharded import (append_shard, init_sharded_store,
                                is_sharded_store, open_store)
from .streaming.store import STORE_MAGIC

__all__ = ["main", "build_parser"]

#: Exit code for :class:`CodecError` (bad dtype/shape/params, unknown codec, ...).
CODEC_ERROR_EXIT = 3

_EXPERIMENTS = {
    "table1": experiments.table1_operations,
    "ratio": experiments.compression_ratio,
    "fig2": experiments.fig2_blaz,
    "fig3": experiments.fig3_zfp,
    "fig4": experiments.fig4_shallow_water,
    "fig5": experiments.fig5_lgg,
    "fig6": experiments.fig6_fission,
    "fig7": experiments.fig7_op_times,
    "error-bounds": experiments.error_bounds,
}


def _parse_block(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid block shape {text!r}") from exc


def _parse_region(text: str) -> tuple:
    """Parse a numpy-style region like ``0:32,:,4`` into a tuple of slices/ints."""
    region = []
    try:
        for part in text.split(","):
            part = part.strip()
            if ":" in part:
                pieces = [int(p) if p.strip() else None for p in part.split(":")]
                if len(pieces) > 3:
                    raise ValueError(part)
                region.append(slice(*pieces))
            else:
                region.append(int(part))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid region {text!r}") from exc
    return tuple(region)


def _add_codec_options(parser: argparse.ArgumentParser) -> None:
    """The codec selector plus every codec's tuning knobs (each applies only to
    its codec; the pyblaz knobs are the historical defaults)."""
    parser.add_argument("--codec", default="pyblaz", choices=list(available_codecs()),
                        help="registered codec to compress with (default: pyblaz)")
    parser.add_argument("--block", type=_parse_block, default=(4, 4, 4),
                        help="pyblaz block shape, e.g. 4,4,4")
    parser.add_argument("--float", dest="float_format", default="float32",
                        choices=["bfloat16", "float16", "float32", "float64"],
                        help="pyblaz working float format")
    parser.add_argument("--index", dest="index_dtype", default="int16",
                        choices=["int8", "int16", "int32", "int64"],
                        help="pyblaz bin-index type")
    parser.add_argument("--transform", default="dct", choices=["dct", "haar", "identity"],
                        help="pyblaz orthonormal transform")
    parser.add_argument("--backend", default=None, choices=list(available_backends()),
                        help="pyblaz kernel backend for the transform+binning hot loop "
                             "(default: reference, the bit-exact path; see `repro backends`)")
    parser.add_argument("--bits", type=int, default=16,
                        help="zfp fixed rate in bits per value")
    parser.add_argument("--error-bound", type=float, default=1e-6,
                        help="sz absolute error bound")
    parser.add_argument("--levels", type=int, default=8,
                        help="sz interpolation levels")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyBlaz reproduction: compressed arrays with compressed-space operations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compress = sub.add_parser("compress", help="compress a .npy file")
    p_compress.add_argument("input", help="input .npy file")
    p_compress.add_argument("output", help="output compressed stream")
    _add_codec_options(p_compress)

    p_decompress = sub.add_parser("decompress", help="decompress a stream to .npy")
    p_decompress.add_argument("input", help="compressed stream")
    p_decompress.add_argument("output", help="output .npy file")
    p_decompress.add_argument("--codec", default=None, choices=list(available_codecs()),
                              help="override the codec detected from the stream magic")
    p_decompress.add_argument("--backend", default=None, choices=list(available_backends()),
                              help="kernel backend for the inverse transform (pyblaz only)")

    p_stream = sub.add_parser(
        "stream-compress",
        help="compress a .npy file slab-by-slab into a chunked store (out-of-core)",
    )
    p_stream.add_argument("input", help="input .npy file (memmapped, never fully loaded)")
    p_stream.add_argument("output", help="output chunked store")
    _add_codec_options(p_stream)
    p_stream.add_argument("--slab-rows", type=int, default=None,
                          help="rows per slab (rounded up to a block-row multiple)")
    p_stream.add_argument("--workers", type=int, default=1,
                          help="worker processes compressing slabs concurrently "
                               "(pyblaz codec only)")

    p_unstream = sub.add_parser(
        "stream-decompress",
        help="decompress a chunked store (or a region of it) to .npy",
    )
    p_unstream.add_argument("input", help="chunked store")
    p_unstream.add_argument("output", help="output .npy file")
    p_unstream.add_argument("--region", type=_parse_region, default=None,
                            help="numpy-style region, e.g. 0:32,:,4 "
                                 "(only intersecting chunks are read)")
    p_unstream.add_argument("--backend", default=None, choices=list(available_backends()),
                            help="kernel backend for chunk decompression (pyblaz stores only)")

    p_shard_init = sub.add_parser(
        "shard-init",
        help="create a sharded store directory from a .npy file (shard 0)",
    )
    p_shard_init.add_argument("input", help="input .npy file (memmapped)")
    p_shard_init.add_argument("output", help="sharded store directory to create")
    _add_codec_options(p_shard_init)
    p_shard_init.add_argument("--slab-rows", type=int, default=None,
                              help="rows per chunk (rounded up to a block-row "
                                   "multiple)")
    p_shard_init.add_argument("--no-partials", action="store_true",
                              help="skip persisting per-shard fold partials "
                                   "(queries then always full-sweep)")

    p_shard_append = sub.add_parser(
        "shard-append",
        help="append a .npy file's rows to a sharded store as a new shard",
    )
    p_shard_append.add_argument("store", help="sharded store directory")
    p_shard_append.add_argument("input", help="input .npy file (memmapped)")
    p_shard_append.add_argument("--slab-rows", type=int, default=None,
                                help="rows per chunk within the new shard")
    p_shard_append.add_argument("--no-partials", action="store_true",
                                help="skip updating the persisted fold "
                                     "partials (marks them stale; queries "
                                     "fall back to full sweeps)")

    p_ops = sub.add_parser(
        "stream-ops",
        help="run compressed-domain operation(s) over chunked store(s) out-of-core",
    )
    p_ops.add_argument("operation",
                       help="compressed-domain operation (see docs/ops.md), or "
                            "`evaluate` to fuse several scalar reductions given "
                            "via --op into one planned sweep (docs/engine.md)")
    p_ops.add_argument("store_a", help="chunked store file or sharded store "
                                       "directory (pyblaz family)")
    p_ops.add_argument("store_b", nargs="?", default=None,
                       help="second store for the binary operations "
                            "(must be chunked identically to the first)")
    p_ops.add_argument("--op", dest="ops", action="append", default=None,
                       metavar="OPERATION",
                       help="scalar reduction to include in an `evaluate` plan "
                            "(repeatable; all requested reductions share fused "
                            "decode sweeps)")
    p_ops.add_argument("--out", default=None,
                       help="output store path (required by the array-valued "
                            "operations add/subtract/scale/negate)")
    p_ops.add_argument("--scalar", type=float, default=None,
                       help="scale factor (required by `scale`)")
    p_ops.add_argument("--workers", type=int, default=1,
                       help="worker processes computing per-chunk work units "
                            "(fold partials for the scalar reductions, chunk "
                            "transforms for add/subtract/scale/negate)")
    p_ops.add_argument("--true-mean", action="store_true",
                       help="rescale `mean` to the original element count instead "
                            "of the zero-padded block domain")
    p_ops.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON object (values, "
                            "timing, fused pass count, executing backend) "
                            "instead of text lines")
    p_ops.add_argument("--backend", default=None,
                       choices=list(available_backends()),
                       help="kernel backend executing the fused chunk steps of "
                            "`evaluate` (default: reference, bit-exact; gemm/"
                            "numba compile one kernel per fused pass — see "
                            "docs/engine.md 'Compiled plans')")
    p_ops.add_argument("--prefetch", type=int, default=None, metavar="N",
                       help="chunk readahead depth: coalesced record spans "
                            "fetched ahead of the sweep on a small thread pool "
                            "(default: auto; 0 disables the pipeline — see "
                            "docs/performance.md)")

    p_serve = sub.add_parser(
        "serve",
        help="serve fused-plan reductions over a named catalog of chunked stores",
    )
    p_serve.add_argument("stores", nargs="+", metavar="NAME=PATH",
                         help="catalog entries mapping client-visible names to "
                              "chunked store files or sharded store "
                              "directories")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default: 0 = ephemeral; the bound "
                              "port is printed on startup)")
    p_serve.add_argument("--tick", type=float, default=None,
                         help="coalescing window in seconds: requests arriving "
                              "within one tick share a single fused plan "
                              "(default: 0.002)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="execute one plan per request instead of fusing "
                              "each tick's batch (the benchmark baseline)")
    p_serve.add_argument("--cache-bytes", type=int, default=None,
                         help="decoded-chunk LRU cache budget in bytes "
                              "(default: 256 MiB; 0 disables the cache)")
    p_serve.add_argument("--backend", default=None,
                         choices=list(available_backends()),
                         help="kernel backend executing every served plan "
                              "(default: reference; compiled backends reuse "
                              "one kernel per plan signature across requests)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-request wall-clock budget in seconds; a "
                              "request whose batch overruns it gets an explicit "
                              "deadline_exceeded response (default: none)")
    p_serve.add_argument("--max-in-flight", type=int, default=None,
                         help="admission cap: requests beyond this many "
                              "concurrently queued/executing get an explicit "
                              "overloaded response instead of queueing "
                              "(default: unbounded)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="process-pool workers for batch execution; a "
                              "crashed pool degrades the batch to a serial "
                              "re-run (default: 0 = in-process serial)")
    p_serve.add_argument("--prefetch", type=int, default=None, metavar="N",
                         help="warm-path control: each batch's store chunks "
                              "are decoded into the chunk cache ahead of the "
                              "plan sweep (default: on when caching; 0 "
                              "disables — see docs/performance.md)")

    p_query = sub.add_parser(
        "query",
        help="send reduction requests to a running `repro serve` instance",
    )
    p_query.add_argument("--host", default="127.0.0.1",
                         help="server host (default: 127.0.0.1)")
    p_query.add_argument("--port", type=int, required=True, help="server port")
    p_query.add_argument("--op", dest="ops", action="append", default=None,
                         metavar="OPERATION:STORES",
                         help="reduction over catalog names, e.g. mean:temps or "
                              "dot:temps,wind (repeatable; all ops ride one "
                              "request)")
    p_query.add_argument("--true-mean", action="store_true",
                         help="rescale `mean` to the original element count "
                              "instead of the zero-padded block domain")
    p_query.add_argument("--stats", action="store_true",
                         help="print the server's metrics snapshot and exit")
    p_query.add_argument("--catalog", action="store_true",
                         help="print the server's catalog listing and exit")
    p_query.add_argument("--json", action="store_true",
                         help="emit the full machine-readable response (values, "
                              "batch coalescing info, server latency)")
    p_query.add_argument("--timeout", type=float, default=30.0,
                         help="socket timeout in seconds (default: 30)")
    p_query.add_argument("--retries", type=int, default=None, metavar="N",
                         help="retry transport failures (connect refused, "
                              "reset, malformed response) up to N attempts "
                              "with decorrelated-jitter backoff, reconnecting "
                              "between attempts (default: fail on the first)")
    p_query.add_argument("--deadline", type=float, default=None,
                         help="client-side wall-clock budget in seconds for "
                              "the whole call including retries (default: "
                              "none)")

    p_verify = sub.add_parser(
        "verify-store",
        help="check every chunk of a chunked store against its checksums",
    )
    p_verify.add_argument("store", help="chunked store file or sharded store "
                                        "directory to scan")
    p_verify.add_argument("--repair-from", metavar="MIRROR", default=None,
                          help="replica store (or sharded mirror directory) to "
                               "copy verified-good chunk payloads from, "
                               "rewriting the store in place (both must be the "
                               "same codec/shape/chunking)")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the machine-readable per-chunk report")

    p_codecs = sub.add_parser("codecs", help="list registered codecs and their capabilities")
    p_codecs.add_argument("--no-probe", action="store_true",
                          help="skip measuring ratios on the 256x256 float64 probe")

    sub.add_parser("backends", help="list registered kernel backends and their contracts")

    p_info = sub.add_parser("info", help="describe a compressed stream or chunked store")
    p_info.add_argument("input", help="compressed stream or chunked store")

    p_exp = sub.add_parser("experiment", help="run a paper-reproduction experiment")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    return parser


def _build_codec(args: argparse.Namespace, ndim: int):
    """Instantiate the requested codec from its CLI knobs.

    Returns ``None`` (after printing to stderr) for usage errors (exit 2, not
    a codec error): the pyblaz block/array dimensionality mismatch, or
    ``--backend`` combined with a codec that has no kernel backends.
    """
    if args.codec != "pyblaz" and getattr(args, "backend", None) is not None:
        print(f"error: --backend applies to the pyblaz codec, not {args.codec!r}",
              file=sys.stderr)
        return None
    if args.codec == "pyblaz":
        block = args.block
        if len(block) != ndim:
            print(
                f"error: block shape {block} does not match array dimensionality {ndim}",
                file=sys.stderr,
            )
            return None
        settings = CompressionSettings(
            block_shape=block,
            float_format=args.float_format,
            index_dtype=args.index_dtype,
            transform=args.transform,
            backend=args.backend or DEFAULT_BACKEND,
        )
        return get_codec("pyblaz", settings=settings, backend=args.backend)
    if args.codec == "zfp":
        return get_codec("zfp", bits_per_value=args.bits)
    if args.codec == "sz":
        return get_codec("sz", error_bound=args.error_bound, levels=args.levels)
    return get_codec(args.codec)


def _cmd_compress(args: argparse.Namespace) -> int:
    array = np.load(args.input)
    codec = _build_codec(args, array.ndim)
    if codec is None:
        return 2
    blob = codec.to_bytes(codec.compress(array))
    with open(args.output, "wb") as handle:
        handle.write(blob)
    print(f"compressed {args.input} {array.shape} -> {args.output} (codec {codec.name})")
    if args.codec == "pyblaz":
        settings = codec.settings
        ratio = compression_ratio(
            settings, array.shape, input_bits_per_element=array.dtype.itemsize * 8
        )
        print(f"settings: {settings.describe()}")
        print(f"accounting ratio vs {array.dtype}: {ratio:.3f}")
    else:
        measured = array.nbytes / len(blob)
        print(f"measured ratio vs {array.dtype}: {measured:.3f}")
    return 0


def _decode_stream(name: str, data: bytes):
    """``from_bytes`` with the exit-code contract enforced: decoding failures on
    truncated/corrupt payloads surface as :class:`CodecError` (exit 3), not as
    raw numpy/struct tracebacks."""
    try:
        return get_codec_class(name).from_bytes(data)
    except CodecError:
        raise
    except DECODE_ERRORS as exc:
        raise CodecError(f"corrupt or truncated {name} stream: {exc}") from exc


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        data = handle.read()
    name = args.codec or detect_codec(data)
    if args.backend is not None and name != "pyblaz":
        print(f"error: --backend applies to the pyblaz codec, not {name!r}", file=sys.stderr)
        return 2
    params = {"backend": args.backend} if args.backend is not None else {}
    array = get_codec(name, **params).decompress(_decode_stream(name, data))
    np.save(args.output, array)
    print(f"decompressed {args.input} -> {args.output} {array.shape} (codec {name})")
    return 0


def _cmd_stream_compress(args: argparse.Namespace) -> int:
    array = np.load(args.input, mmap_mode="r")
    codec = _build_codec(args, array.ndim)
    if codec is None:
        return 2
    if args.codec == "pyblaz":
        # bit-identical to one-shot under the default reference backend, with
        # optional process fan-out; --backend opts into the faster kernels
        chunked = ChunkedCompressor(
            codec.settings, slab_rows=args.slab_rows, n_workers=args.workers,
            backend=args.backend,
        )
        with chunked.compress_to_store(array, args.output) as store:
            ratio = compression_ratio(
                codec.settings, array.shape, input_bits_per_element=array.dtype.itemsize * 8
            )
            print(f"stream-compressed {args.input} {array.shape} -> {args.output} "
                  f"(codec {codec.name})")
            print(f"settings: {codec.settings.describe()}")
            print(f"chunks: {store.n_chunks} (slab rows {chunked.slab_rows}, "
                  f"workers {chunked.n_workers})")
            print(f"accounting ratio vs {array.dtype}: {ratio:.3f}")
        return 0
    with stream_compress(array, args.output, codec, slab_rows=args.slab_rows) as store:
        print(f"stream-compressed {args.input} {array.shape} -> {args.output} "
              f"(codec {codec.name})")
        print(f"chunks: {store.n_chunks}")
    return 0


def _cmd_stream_decompress(args: argparse.Namespace) -> int:
    with open_store(args.input) as store:
        if args.backend is not None:
            if store.codec_name != "pyblaz":
                print(
                    f"error: --backend applies to pyblaz stores, not {store.codec_name!r}",
                    file=sys.stderr,
                )
                return 2
            store.use_codec(get_codec("pyblaz", backend=args.backend))
        if args.region is not None:
            try:
                array = store.load_region(args.region)
            except CodecError:
                raise  # corrupt store/chunk: exit 3, not a usage error
            except (ValueError, IndexError) as exc:
                print(f"error: invalid region for {store.shape}: {exc}", file=sys.stderr)
                return 2
            np.save(args.output, array)
        else:
            # chunk-at-a-time into a memmapped output: never materialises the array
            out = None
            row = 0
            for chunk in store.iter_chunks():
                decompressed = store.decompress_chunk(chunk)
                if out is None:
                    out = np.lib.format.open_memmap(
                        args.output, mode="w+", dtype=decompressed.dtype, shape=store.shape
                    )
                out[row : row + decompressed.shape[0]] = decompressed
                row += decompressed.shape[0]
            out.flush()
            array = out
        print(f"stream-decompressed {args.input} -> {args.output} {array.shape}")
    return 0


def _cmd_shard_init(args: argparse.Namespace) -> int:
    """Create a sharded store directory with the input array as shard 0."""
    array = np.load(args.input, mmap_mode="r")
    codec = _build_codec(args, array.ndim)
    if codec is None:
        return 2
    with init_sharded_store(args.output, array, codec,
                            slab_rows=args.slab_rows,
                            update_partials=not args.no_partials) as store:
        print(f"shard-init {args.input} {array.shape} -> {args.output} "
              f"(codec {codec.name})")
        print(f"shards: {store.n_shards}, chunks: {store.n_chunks}, "
              f"revision {store.revision}")
        print(f"fold partials: "
              f"{'persisted' if store.partials_fresh() else 'disabled'}")
    return 0


def _cmd_shard_append(args: argparse.Namespace) -> int:
    """Append the input array's rows to a sharded store as a new shard."""
    array = np.load(args.input, mmap_mode="r")
    with append_shard(args.store, array, slab_rows=args.slab_rows,
                      update_partials=not args.no_partials) as store:
        print(f"shard-append {args.input} {array.shape} -> {args.store}")
        print(f"shards: {store.n_shards}, rows: {store.shape[0]}, "
              f"chunks: {store.n_chunks}, revision {store.revision}")
        print(f"fold partials: "
              f"{'fresh (queries stay O(new chunks))' if store.partials_fresh() else 'stale (queries full-sweep)'}")
    return 0


#: stream-ops operations by arity and result kind.
_SCALAR_UNARY = {"mean", "variance", "standard-deviation", "l2-norm"}
_SCALAR_BINARY = {"dot", "covariance", "cosine-similarity", "euclidean-distance"}
_SCALAR_OPS = _SCALAR_UNARY | _SCALAR_BINARY
_UNARY_OPS = _SCALAR_UNARY | {"negate", "scale"}
_BINARY_OPS = _SCALAR_BINARY | {"add", "subtract"}
_ARRAY_OPS = {"negate", "scale", "add", "subtract"}
#: Everything the positional `operation` argument accepts.
_OPERATIONS = sorted(_UNARY_OPS | _BINARY_OPS | {"evaluate"})


def _scalar_expressions(names, store_a, store_b, true_mean: bool) -> dict:
    """Build the engine expressions for the requested scalar reductions.

    All expressions share the two source nodes, so the engine plan fuses
    every fold over the same decode sweeps (``docs/engine.md``).
    """
    from .engine import expr

    x = expr.source(store_a)
    y = expr.source(store_b) if store_b is not None else None
    builders = {
        "mean": lambda: expr.mean(x, padded=not true_mean),
        "variance": lambda: expr.variance(x),
        "standard-deviation": lambda: expr.standard_deviation(x),
        "l2-norm": lambda: expr.l2_norm(x),
        "dot": lambda: expr.dot(x, y),
        "covariance": lambda: expr.covariance(x, y),
        "cosine-similarity": lambda: expr.cosine_similarity(x, y),
        "euclidean-distance": lambda: expr.euclidean_distance(x, y),
    }
    return {name: builders[name]() for name in names}


def _cmd_stream_ops(args: argparse.Namespace) -> int:
    """Evaluate out-of-core compressed-domain operation(s) over store(s).

    Scalar reductions print ``<operation> = <value>`` (full repr precision);
    ``evaluate`` runs every ``--op`` reduction through one fused engine plan;
    array-valued operations write ``--out`` chunk-by-chunk and report its chunk
    count.  ``--json`` swaps the text for one machine-readable object with the
    values, the wall-clock seconds and the fused decode-pass count.  Usage
    errors (unknown operation, wrong arity, missing ``--out``/``--scalar``,
    incompatible chunking) exit 2 and name the valid operation set where
    relevant; codec errors (non-pyblaz store, corrupt chunks) exit 3 via the
    shared :class:`CodecError` mapping.
    """
    import json
    import time

    from . import engine
    from .parallel import ProcessExecutor
    from .streaming import ops as stream_ops

    operation = args.operation
    if operation not in _OPERATIONS:
        print(f"error: unknown operation {operation!r}; valid operations: "
              f"{', '.join(_OPERATIONS)}", file=sys.stderr)
        return 2
    if args.ops and operation != "evaluate":
        print("error: --op applies to the `evaluate` operation; run "
              f"`stream-ops evaluate ... --op {operation}` to fuse reductions",
              file=sys.stderr)
        return 2
    if operation == "evaluate":
        requested = list(dict.fromkeys(args.ops or ()))
        if not requested:
            print("error: evaluate needs at least one --op reduction",
                  file=sys.stderr)
            return 2
        unknown = [name for name in requested if name not in _SCALAR_OPS]
        if unknown:
            print(f"error: unknown operation {unknown[0]!r}; valid --op "
                  f"operations: {', '.join(sorted(_SCALAR_OPS))}",
                  file=sys.stderr)
            return 2
        binary = any(name in _SCALAR_BINARY for name in requested)
    else:
        requested = [operation]
        binary = operation in _BINARY_OPS
    if binary and args.store_b is None:
        needing = operation if operation != "evaluate" else ", ".join(
            name for name in requested if name in _SCALAR_BINARY
        )
        print(f"error: {needing} needs two stores", file=sys.stderr)
        return 2
    if not binary and args.store_b is not None:
        print(f"error: {operation} takes a single store", file=sys.stderr)
        return 2
    if operation in _ARRAY_OPS and args.out is None:
        print(f"error: {operation} writes a store; pass --out", file=sys.stderr)
        return 2
    if operation == "scale" and args.scalar is None:
        print("error: scale needs --scalar", file=sys.stderr)
        return 2
    if args.backend is not None and operation in _ARRAY_OPS:
        print("error: --backend selects the scalar reductions' fused-pass "
              "kernels; add/subtract/scale/negate always run the reference "
              "path", file=sys.stderr)
        return 2
    executor = ProcessExecutor(n_workers=args.workers) if args.workers > 1 else None

    def run_scalars(store_a, store_b) -> int:
        """Plan + execute the requested reductions as one fused sweep set."""
        expressions = _scalar_expressions(requested, store_a, store_b,
                                          args.true_mean)
        fused = engine.plan(expressions)
        start = time.perf_counter()
        values = fused.execute(executor=executor, backend=args.backend,
                               prefetch=args.prefetch)
        seconds = time.perf_counter() - start
        executed = fused.last_execution or {}
        if args.json:
            stores = [args.store_a] + ([args.store_b] if store_b is not None else [])
            print(json.dumps({
                "operations": values,
                "passes": fused.n_passes,
                "seconds": seconds,
                "stores": stores,
                "workers": args.workers,
                "backend": executed.get("backend"),
                "backend_fallback": executed.get("fallback_reason"),
                "compiled_groups": executed.get("compiled_groups"),
                "interpreted_groups": executed.get("interpreted_groups"),
                "incremental_groups": executed.get("incremental_groups"),
                "compile_seconds": executed.get("compile_seconds"),
                "io_seconds": executed.get("io_seconds"),
                "prefetch_depth": executed.get("prefetch_depth"),
                "describe": fused.describe(),
            }))
        else:
            for name in requested:
                print(f"{name} = {values[name]!r}")
            if args.backend and executed.get("fallback_reason"):
                print(f"note: {executed['fallback_reason']}", file=sys.stderr)
        return 0

    def report_store(out) -> None:
        """Describe a freshly written array-valued result store."""
        if args.json:
            print(json.dumps({
                "operation": operation,
                "out": args.out,
                "shape": list(out.shape),
                "chunks": out.n_chunks,
                "workers": args.workers,
            }))
        else:
            print(f"{operation}: wrote {args.out} "
                  f"(shape {out.shape}, chunks {out.n_chunks})")

    try:
        with open_store(args.store_a) as store_a:
            if not binary:
                if operation not in _ARRAY_OPS:
                    return run_scalars(store_a, None)
                if operation == "negate":
                    out = stream_ops.negate(store_a, args.out, executor=executor,
                                            prefetch=args.prefetch)
                else:
                    out = stream_ops.scale(store_a, args.scalar, args.out,
                                           executor=executor,
                                           prefetch=args.prefetch)
                with out:
                    report_store(out)
                return 0
            with open_store(args.store_b) as store_b:
                if operation not in _ARRAY_OPS:
                    return run_scalars(store_a, store_b)
                mapped = stream_ops.add if operation == "add" else stream_ops.subtract
                with mapped(store_a, store_b, args.out, executor=executor,
                            prefetch=args.prefetch) as out:
                    report_store(out)
                return 0
    except CodecError:
        raise  # non-pyblaz or corrupt store: exit 3 via the shared mapping
    except (ValueError, ZeroDivisionError) as exc:
        # mismatched chunking/shapes, pruned DC coefficients, zero norms:
        # usage-level errors, distinct from the CodecError exit-3 contract
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the query service until interrupted (Ctrl-C stops it cleanly)."""
    import asyncio

    from .serving import ChunkCache, QueryService, StoreCatalog

    mapping: dict[str, str] = {}
    for entry in args.stores:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            print(f"error: catalog entries look like NAME=PATH, got {entry!r}",
                  file=sys.stderr)
            return 2
        try:
            if not _is_store(path):
                print(f"error: {path!r} is not a chunked store", file=sys.stderr)
                return 2
        except OSError as exc:
            print(f"error: cannot read store {path!r}: {exc}", file=sys.stderr)
            return 2
        mapping[name] = path
    if args.cache_bytes == 0:
        cache = None
    elif args.cache_bytes is None:
        cache = ChunkCache()
    else:
        cache = ChunkCache(args.cache_bytes)
    tick = args.tick if args.tick is not None else 0.002
    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive", file=sys.stderr)
        return 2
    if args.max_in_flight is not None and args.max_in_flight < 1:
        print("error: --max-in-flight must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("error: --workers cannot be negative", file=sys.stderr)
        return 2
    with StoreCatalog(mapping, cache=cache) as catalog:
        service = QueryService(catalog, tick=tick,
                               coalesce=not args.no_coalesce,
                               backend=args.backend,
                               deadline=args.deadline,
                               max_in_flight=args.max_in_flight,
                               workers=args.workers,
                               prefetch=args.prefetch)

        async def run() -> None:
            host, port = await service.start(args.host, args.port)
            print(f"serving {len(catalog)} store(s) on {host}:{port} "
                  f"(tick {service.tick * 1000:g} ms, coalescing "
                  f"{'on' if service.coalesce else 'off'}, backend "
                  f"{service.backend or 'reference'})", flush=True)
            await service.serve_forever()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("stopped")
    return 0


def _parse_op_spec(text: str):
    """Parse ``operation:storeA[,storeB]`` into ``(op, [names])`` or a message."""
    op, sep, stores = text.partition(":")
    names = [name.strip() for name in stores.split(",") if name.strip()]
    if not sep or not names:
        return None, (f"ops look like OPERATION:STORES, e.g. mean:temps or "
                      f"dot:temps,wind — got {text!r}")
    if op not in _SCALAR_OPS:
        return None, (f"unknown operation {op!r}; valid operations: "
                      f"{', '.join(sorted(_SCALAR_OPS))}")
    arity = 2 if op in _SCALAR_BINARY else 1
    if len(names) != arity:
        return None, f"{op} takes {arity} store name(s), got {len(names)}"
    return (op, names), None


def _cmd_query(args: argparse.Namespace) -> int:
    """One client round trip: evaluate ``--op`` reductions, or probe the server."""
    import json

    from .engine import expr
    from .reliability import DeadlineError, RetryPolicy
    from .serving import QueryClient, ServerError

    if args.stats or args.catalog:
        if args.ops:
            print("error: --stats/--catalog are probes; drop the --op flags",
                  file=sys.stderr)
            return 2
    elif not args.ops:
        print("error: query needs --op reductions (or --stats/--catalog)",
              file=sys.stderr)
        return 2
    builders = {
        "mean": lambda x: expr.mean(x[0], padded=not args.true_mean),
        "variance": lambda x: expr.variance(x[0]),
        "standard-deviation": lambda x: expr.standard_deviation(x[0]),
        "l2-norm": lambda x: expr.l2_norm(x[0]),
        "dot": lambda x: expr.dot(x[0], x[1]),
        "covariance": lambda x: expr.covariance(x[0], x[1]),
        "cosine-similarity": lambda x: expr.cosine_similarity(x[0], x[1]),
        "euclidean-distance": lambda x: expr.euclidean_distance(x[0], x[1]),
    }
    outputs = {}
    for spec in args.ops or ():
        parsed, message = _parse_op_spec(spec)
        if parsed is None:
            print(f"error: {message}", file=sys.stderr)
            return 2
        op, names = parsed
        outputs[spec] = builders[op]([expr.source(name) for name in names])
    if args.retries is not None and args.retries < 1:
        print("error: --retries must be at least 1", file=sys.stderr)
        return 2
    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive", file=sys.stderr)
        return 2
    retry = RetryPolicy(attempts=args.retries) if args.retries else None
    try:
        with QueryClient(args.host, args.port, timeout=args.timeout,
                         retry=retry, deadline=args.deadline) as client:
            if args.stats:
                print(json.dumps(client.stats(), indent=2))
                return 0
            if args.catalog:
                print(json.dumps(client.catalog(), indent=2))
                return 0
            full = client.evaluate_full(outputs)
    except ServerError as exc:
        print(f"error: server rejected the request: {exc}", file=sys.stderr)
        return 2
    except DeadlineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(full))
    else:
        for spec in outputs:
            print(f"{spec} = {full['results'][spec]!r}")
        batch = full["batch"]
        print(f"(batch: {batch['requests']} request(s) -> {batch['plans']} "
              f"plan(s), {batch['passes']} pass(es))")
    return 0


def _cmd_verify_store(args: argparse.Namespace) -> int:
    """Scan a store's chunks against their checksums; optionally repair.

    Exit 0 when every chunk verifies (including after a successful repair),
    ``CODEC_ERROR_EXIT`` when corruption remains — so scripts can gate on
    ``repro verify-store`` before trusting a store.
    """
    import json

    from .reliability import (repair_sharded_store, repair_store,
                              verify_sharded_store, verify_store)

    try:
        if not _is_store(args.store):
            print(f"error: {args.store!r} is not a chunked store", file=sys.stderr)
            return 2
    except OSError as exc:
        print(f"error: cannot read store {args.store!r}: {exc}", file=sys.stderr)
        return 2
    if is_sharded_store(args.store):
        report = verify_sharded_store(args.store)
        if args.repair_from is not None and not report.ok:
            repaired = repair_sharded_store(args.store, args.repair_from)
            spliced = [
                f"shard {shard.index} chunk {chunk.index}"
                for shard in repaired.shards if shard.report is not None
                for chunk in shard.report.chunks if chunk.source == "mirror"
            ]
            print(f"repaired {len(spliced)} chunk(s) from {args.repair_from}: "
                  f"{', '.join(spliced)}", file=sys.stderr)
            report = repaired
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.describe())
        return 0 if report.ok else CODEC_ERROR_EXIT
    report = verify_store(args.store)
    if args.repair_from is not None and not report.ok:
        repaired = repair_store(args.store, args.repair_from)
        spliced = [c.index for c in repaired.chunks if c.source == "mirror"]
        print(f"repaired {len(spliced)} chunk(s) from {args.repair_from}: "
              f"{', '.join(map(str, spliced))}", file=sys.stderr)
        report = verify_store(args.store)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return 0 if report.ok else CODEC_ERROR_EXIT


def _probe_field() -> np.ndarray:
    """The standard 256×256 float64 probe the ``codecs`` listing measures on
    (the same generator the cross-codec ablation sweeps)."""
    return experiments.smooth_field((256, 256), seed=2023)


def _cmd_codecs(args: argparse.Namespace) -> int:
    probe = None if args.no_probe else _probe_field()
    header = f"{'codec':10s} {'ndims':8s} {'lossless':9s} {'probe ratio':>12s}  compressed-space ops"
    print(header)
    print("-" * len(header))
    for name in available_codecs():
        codec = get_codec(name)
        caps = codec.capabilities
        if probe is not None and 2 in caps.ndims:
            ratio = f"{codec.measured_ratio(probe):12.3f}"
        else:
            ratio = f"{'-':>12s}"
        ops = ",".join(caps.compressed_ops) if caps.compressed_ops else "-"
        ndims = ",".join(map(str, caps.ndims))
        print(f"{name:10s} {ndims:8s} {'yes' if caps.lossless else 'no':9s} {ratio}  {ops}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    header = f"{'backend':10s} {'available':10s} {'bit-exact':10s} description"
    print(header)
    print("-" * len(header))
    for name in available_backends():
        cls = get_backend_class(name)
        if backend_is_available(name):
            availability = "yes"
        else:
            availability = f"no ({cls.unavailable_reason()})"
        exact = "yes" if cls.bit_exact else "no"
        print(f"{name:10s} {availability:10s} {exact:10s} {cls.summary}")
    return 0


def _is_store(path) -> bool:
    """True for a chunked store file or a sharded store directory."""
    if is_sharded_store(path):
        return True
    import os
    if os.path.isdir(path):
        return False
    with open(path, "rb") as handle:
        return handle.read(len(STORE_MAGIC)) == STORE_MAGIC


def _cmd_info(args: argparse.Namespace) -> int:
    if _is_store(args.input):
        with open_store(args.input) as store:
            print(f"shape: {store.shape}")
            if is_sharded_store(args.input):
                print(f"codec: {store.codec_name} "
                      f"(sharded store v{store.version}, revision {store.revision})")
                print(f"shards: {store.n_shards} (fold partials "
                      f"{'fresh' if store.partials_fresh() else 'stale/absent'})")
            else:
                print(f"codec: {store.codec_name} (store format v{store.version})")
            print(f"chunks: {store.n_chunks} (rows per chunk: "
                  f"{', '.join(map(str, store.chunk_rows))})")
            settings = store.settings
            if settings is not None:
                print(f"settings: {settings.describe()}")
                print(f"stored bits (accounting): {compressed_size_bits(settings, store.shape)}")
                print(
                    "compression ratio vs float64: "
                    f"{compression_ratio(settings, store.shape, input_bits_per_element=64):.3f}"
                )
        return 0
    with open(args.input, "rb") as handle:
        data = handle.read()
    name = detect_codec(data)
    compressed = _decode_stream(name, data)
    print(f"shape: {tuple(compressed.shape)}")
    print(f"codec: {name}")
    if name == "pyblaz":
        settings = compressed.settings
        print(f"settings: {settings.describe()}")
        print(f"blocks: {compressed.n_blocks} (grid {compressed.grid_shape})")
        print(f"stored bits (accounting): {compressed_size_bits(settings, compressed.shape)}")
        print(
            "compression ratio vs float64: "
            f"{compression_ratio(settings, compressed.shape, input_bits_per_element=64):.3f}"
        )
    else:
        # the huffman stream records the original dtype; the lossy baseline
        # streams don't, so their ratio is labelled against the float64
        # reconstruction rather than presented as the (unknown) source dtype's
        dtype = getattr(compressed, "dtype", None)
        itemsize = np.dtype(dtype).itemsize if dtype is not None else 8
        label = np.dtype(dtype).name if dtype is not None else "float64 reconstruction"
        original = int(np.prod(compressed.shape)) * itemsize
        print(f"serialized bytes: {len(data)}")
        print(f"measured ratio vs {label}: {original / len(data):.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = _EXPERIMENTS[args.name]
    result = module.run()
    print(module.format_result(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "stream-compress": _cmd_stream_compress,
        "stream-decompress": _cmd_stream_decompress,
        "shard-init": _cmd_shard_init,
        "shard-append": _cmd_shard_append,
        "stream-ops": _cmd_stream_ops,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "verify-store": _cmd_verify_store,
        "codecs": _cmd_codecs,
        "backends": _cmd_backends,
        "info": _cmd_info,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except CodecError as exc:
        print(f"codec error: {exc}", file=sys.stderr)
        return CODEC_ERROR_EXIT


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
