"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands
-----------

``compress``          Compress a ``.npy`` array file into a PyBlaz stream.
``decompress``        Reconstruct a ``.npy`` array from a PyBlaz stream.
``stream-compress``   Compress a ``.npy`` file slab-by-slab (memmapped — the file
                      is never fully loaded) into a chunked store.
``stream-decompress`` Reconstruct a ``.npy`` array — or just a region of it —
                      from a chunked store, one chunk at a time.
``info``              Print the header, settings and ratio of a PyBlaz stream or
                      chunked store.
``experiment``        Run one of the paper-reproduction experiments and print its
                      table.

Examples
--------

::

    repro compress input.npy output.pblz --block 4,4,4 --float float32 --index int16
    repro decompress output.pblz roundtrip.npy
    repro stream-compress input.npy output.pblzc --block 4,4,4 --slab-rows 64 --workers 4
    repro stream-decompress output.pblzc roundtrip.npy --region 0:32,:,:
    repro info output.pblz
    repro experiment table1
    repro experiment fig6
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments
from .core import CompressionSettings, Compressor
from .core.codec import compressed_size_bits, compression_ratio, load, save
from .streaming import ChunkedCompressor, CompressedStore
from .streaming.store import STORE_MAGIC

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": experiments.table1_operations,
    "ratio": experiments.compression_ratio,
    "fig2": experiments.fig2_blaz,
    "fig3": experiments.fig3_zfp,
    "fig4": experiments.fig4_shallow_water,
    "fig5": experiments.fig5_lgg,
    "fig6": experiments.fig6_fission,
    "fig7": experiments.fig7_op_times,
    "error-bounds": experiments.error_bounds,
}


def _parse_block(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid block shape {text!r}") from exc


def _parse_region(text: str) -> tuple:
    """Parse a numpy-style region like ``0:32,:,4`` into a tuple of slices/ints."""
    region = []
    try:
        for part in text.split(","):
            part = part.strip()
            if ":" in part:
                pieces = [int(p) if p.strip() else None for p in part.split(":")]
                if len(pieces) > 3:
                    raise ValueError(part)
                region.append(slice(*pieces))
            else:
                region.append(int(part))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid region {text!r}") from exc
    return tuple(region)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyBlaz reproduction: compressed arrays with compressed-space operations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compress = sub.add_parser("compress", help="compress a .npy file")
    p_compress.add_argument("input", help="input .npy file")
    p_compress.add_argument("output", help="output compressed stream")
    p_compress.add_argument("--block", type=_parse_block, default=(4, 4, 4),
                            help="block shape, e.g. 4,4,4")
    p_compress.add_argument("--float", dest="float_format", default="float32",
                            choices=["bfloat16", "float16", "float32", "float64"])
    p_compress.add_argument("--index", dest="index_dtype", default="int16",
                            choices=["int8", "int16", "int32", "int64"])
    p_compress.add_argument("--transform", default="dct", choices=["dct", "haar", "identity"])

    p_decompress = sub.add_parser("decompress", help="decompress a stream to .npy")
    p_decompress.add_argument("input", help="compressed stream")
    p_decompress.add_argument("output", help="output .npy file")

    p_stream = sub.add_parser(
        "stream-compress",
        help="compress a .npy file slab-by-slab into a chunked store (out-of-core)",
    )
    p_stream.add_argument("input", help="input .npy file (memmapped, never fully loaded)")
    p_stream.add_argument("output", help="output chunked store")
    p_stream.add_argument("--block", type=_parse_block, default=(4, 4, 4),
                          help="block shape, e.g. 4,4,4")
    p_stream.add_argument("--float", dest="float_format", default="float32",
                          choices=["bfloat16", "float16", "float32", "float64"])
    p_stream.add_argument("--index", dest="index_dtype", default="int16",
                          choices=["int8", "int16", "int32", "int64"])
    p_stream.add_argument("--transform", default="dct", choices=["dct", "haar", "identity"])
    p_stream.add_argument("--slab-rows", type=int, default=None,
                          help="rows per slab (rounded up to a block-row multiple)")
    p_stream.add_argument("--workers", type=int, default=1,
                          help="worker processes compressing slabs concurrently")

    p_unstream = sub.add_parser(
        "stream-decompress",
        help="decompress a chunked store (or a region of it) to .npy",
    )
    p_unstream.add_argument("input", help="chunked store")
    p_unstream.add_argument("output", help="output .npy file")
    p_unstream.add_argument("--region", type=_parse_region, default=None,
                            help="numpy-style region, e.g. 0:32,:,4 "
                                 "(only intersecting chunks are read)")

    p_info = sub.add_parser("info", help="describe a compressed stream or chunked store")
    p_info.add_argument("input", help="compressed stream or chunked store")

    p_exp = sub.add_parser("experiment", help="run a paper-reproduction experiment")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    array = np.load(args.input)
    block = args.block
    if len(block) != array.ndim:
        print(
            f"error: block shape {block} does not match array dimensionality {array.ndim}",
            file=sys.stderr,
        )
        return 2
    settings = CompressionSettings(
        block_shape=block,
        float_format=args.float_format,
        index_dtype=args.index_dtype,
        transform=args.transform,
    )
    compressed = Compressor(settings).compress(array)
    save(compressed, args.output)
    ratio = compression_ratio(settings, array.shape, input_bits_per_element=array.dtype.itemsize * 8)
    print(f"compressed {args.input} {array.shape} -> {args.output}")
    print(f"settings: {settings.describe()}")
    print(f"accounting ratio vs {array.dtype}: {ratio:.3f}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    compressed = load(args.input)
    array = Compressor(compressed.settings).decompress(compressed)
    np.save(args.output, array)
    print(f"decompressed {args.input} -> {args.output} {array.shape}")
    return 0


def _cmd_stream_compress(args: argparse.Namespace) -> int:
    array = np.load(args.input, mmap_mode="r")
    block = args.block
    if len(block) != array.ndim:
        print(
            f"error: block shape {block} does not match array dimensionality {array.ndim}",
            file=sys.stderr,
        )
        return 2
    settings = CompressionSettings(
        block_shape=block,
        float_format=args.float_format,
        index_dtype=args.index_dtype,
        transform=args.transform,
    )
    chunked = ChunkedCompressor(settings, slab_rows=args.slab_rows, n_workers=args.workers)
    with chunked.compress_to_store(array, args.output) as store:
        ratio = compression_ratio(
            settings, array.shape, input_bits_per_element=array.dtype.itemsize * 8
        )
        print(f"stream-compressed {args.input} {array.shape} -> {args.output}")
        print(f"settings: {settings.describe()}")
        print(f"chunks: {store.n_chunks} (slab rows {chunked.slab_rows}, "
              f"workers {chunked.n_workers})")
        print(f"accounting ratio vs {array.dtype}: {ratio:.3f}")
    return 0


def _cmd_stream_decompress(args: argparse.Namespace) -> int:
    with CompressedStore(args.input) as store:
        if args.region is not None:
            try:
                array = store.load_region(args.region)
            except (ValueError, IndexError) as exc:
                print(f"error: invalid region for {store.shape}: {exc}", file=sys.stderr)
                return 2
            np.save(args.output, array)
        else:
            # chunk-at-a-time into a memmapped output: never materialises the array
            out = np.lib.format.open_memmap(
                args.output, mode="w+", dtype=np.float64, shape=store.shape
            )
            row = 0
            for chunk in store.iter_chunks():
                decompressed = Compressor(store.settings).decompress(chunk)
                out[row : row + chunk.shape[0]] = decompressed
                row += chunk.shape[0]
            out.flush()
            array = out
        print(f"stream-decompressed {args.input} -> {args.output} {array.shape}")
    return 0


def _is_store(path) -> bool:
    with open(path, "rb") as handle:
        return handle.read(len(STORE_MAGIC)) == STORE_MAGIC


def _cmd_info(args: argparse.Namespace) -> int:
    if _is_store(args.input):
        with CompressedStore(args.input) as store:
            print(f"shape: {store.shape}")
            print(f"settings: {store.settings.describe()}")
            print(f"chunks: {store.n_chunks} (rows per chunk: "
                  f"{', '.join(map(str, store.chunk_rows))})")
            print(f"stored bits (accounting): {compressed_size_bits(store.settings, store.shape)}")
            print(
                "compression ratio vs float64: "
                f"{compression_ratio(store.settings, store.shape, input_bits_per_element=64):.3f}"
            )
        return 0
    compressed = load(args.input)
    settings = compressed.settings
    print(f"shape: {compressed.shape}")
    print(f"settings: {settings.describe()}")
    print(f"blocks: {compressed.n_blocks} (grid {compressed.grid_shape})")
    print(f"stored bits (accounting): {compressed_size_bits(settings, compressed.shape)}")
    print(
        "compression ratio vs float64: "
        f"{compression_ratio(settings, compressed.shape, input_bits_per_element=64):.3f}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = _EXPERIMENTS[args.name]
    result = module.run()
    print(module.format_result(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "stream-compress": _cmd_stream_compress,
        "stream-decompress": _cmd_stream_decompress,
        "info": _cmd_info,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
