"""Execution backends for the transform/binning stages of the compressor.

The compressor's hot loop is "for every block: transform, then bin".  The three
executors here realise that loop in different ways while producing bit-identical
results, which lets the benchmarks isolate the cost of execution strategy from the
cost of the algorithm — the same distinction the paper draws between GPU PyBlaz and
single-threaded Blaz.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterator, Sequence

import numpy as np

from ..core.binning import bin_coefficients, block_maxima, scale_to_indices
from ..core.settings import CompressionSettings
from ..core.transforms import Transform, get_transform

__all__ = [
    "BlockExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "LoopExecutor",
    "chunk_slices",
]


def chunk_slices(n_items: int, n_chunks: int) -> Iterator[slice]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous, near-equal slices.

    Deterministic: chunk boundaries depend only on the two arguments, so chunked and
    unchunked execution orders produce identical floating-point results (each block's
    computation is independent).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, max(n_items, 1))
    base, extra = divmod(n_items, n_chunks)
    start = 0
    for index in range(n_chunks):
        length = base + (1 if index < extra else 0)
        if length == 0:
            continue
        yield slice(start, start + length)
        start += length


class BlockExecutor(abc.ABC):
    """Interface the compressor uses to run the per-block pipeline stages."""

    @abc.abstractmethod
    def transform_and_bin(
        self,
        blocked: np.ndarray,
        transform: Transform,
        settings: CompressionSettings,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(maxima, blocked_indices)`` for a blocked data array."""

    @abc.abstractmethod
    def inverse_transform(
        self,
        coefficients: np.ndarray,
        transform: Transform,
        settings: CompressionSettings,
    ) -> np.ndarray:
        """Return the blocked data reconstructed from blocked coefficients."""


class SerialExecutor(BlockExecutor):
    """Vectorized single-call execution over the whole block grid (the default path)."""

    def transform_and_bin(self, blocked, transform, settings):
        coefficients = transform.forward(blocked)
        return bin_coefficients(coefficients, settings.ndim, settings.index_dtype)

    def inverse_transform(self, coefficients, transform, settings):
        return transform.inverse(coefficients)


class _ChunkingExecutor(BlockExecutor):
    """Shared machinery for executors that flatten the grid and process chunks."""

    def __init__(self, n_chunks: int):
        if n_chunks < 1:
            raise ValueError("n_chunks must be positive")
        self.n_chunks = int(n_chunks)

    # -- mapping helpers -----------------------------------------------------
    def _map_chunks(self, func, flat: np.ndarray, out: np.ndarray) -> None:
        """Apply ``func`` to each chunk of the leading axis, writing into ``out``."""
        raise NotImplementedError

    def _map_transform(
        self, flat: np.ndarray, out: np.ndarray, transform: Transform, inverse: bool
    ) -> None:
        """Apply ``transform`` chunk-by-chunk over the leading axis into ``out``.

        The default routes through :meth:`_map_chunks` with a closure; executors
        that cross process boundaries override this with a picklable work unit.
        """
        apply = transform.inverse if inverse else transform.forward

        def work(chunk: np.ndarray) -> np.ndarray:
            return apply(chunk)

        self._map_chunks(work, flat, out)

    def transform_and_bin(self, blocked, transform, settings):
        ndim = settings.ndim
        grid_shape = blocked.shape[:-ndim] if blocked.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        flat = np.ascontiguousarray(blocked).reshape((n_blocks,) + settings.block_shape)
        coefficients = np.empty_like(flat, dtype=np.float64)
        self._map_transform(flat, coefficients, transform, inverse=False)
        flat_maxima = block_maxima(coefficients, ndim)
        indices = scale_to_indices(coefficients, flat_maxima, ndim, settings.index_dtype)
        maxima = flat_maxima.reshape(grid_shape)
        return maxima, indices.reshape(grid_shape + settings.block_shape)

    def inverse_transform(self, coefficients, transform, settings):
        ndim = settings.ndim
        grid_shape = coefficients.shape[:-ndim] if coefficients.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        flat = np.ascontiguousarray(coefficients).reshape((n_blocks,) + settings.block_shape)
        out = np.empty_like(flat, dtype=np.float64)
        self._map_transform(flat, out, transform, inverse=True)
        return out.reshape(grid_shape + settings.block_shape)


class ThreadedExecutor(_ChunkingExecutor):
    """Thread-pool execution over chunks of the block grid.

    Parameters
    ----------
    n_workers:
        Number of worker threads (and chunks).  Results are identical to the serial
        path; only wall-clock time differs.
    """

    def __init__(self, n_workers: int = 4):
        super().__init__(n_chunks=n_workers)
        self.n_workers = int(n_workers)

    def _map_chunks(self, func, flat, out):
        slices = list(chunk_slices(flat.shape[0], self.n_chunks))
        if len(slices) <= 1:
            for sl in slices:
                out[sl] = func(flat[sl])
            return
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {pool.submit(func, flat[sl]): sl for sl in slices}
            for future, sl in futures.items():
                out[sl] = future.result()


def _transform_chunk(
    transform_name: str,
    block_shape: tuple[int, ...],
    inverse: bool,
    chunk: np.ndarray,
) -> np.ndarray:
    """Picklable work unit for :class:`ProcessExecutor` worker processes.

    Transforms are rebuilt from their (name, block shape) description inside the
    worker — the per-extent matrices are cached per process by
    :func:`repro.core.transforms.get_transform`, so the rebuild is a dictionary hit
    after the first chunk.
    """
    transform = get_transform(transform_name, block_shape)
    return transform.inverse(chunk) if inverse else transform.forward(chunk)


class ProcessExecutor(_ChunkingExecutor):
    """Process-pool execution over chunks of the block grid.

    Unlike :class:`ThreadedExecutor` this sidesteps the GIL entirely, at the price
    of pickling each chunk across the process boundary — worthwhile for large
    blocks where the transform dominates the copy.  Results are bit-identical to
    the serial path: each chunk's computation is independent and the binning step
    runs once over the assembled coefficients in the parent process.

    Parameters
    ----------
    n_workers:
        Number of worker processes (and chunks).
    """

    def __init__(self, n_workers: int = 4):
        super().__init__(n_chunks=n_workers)
        self.n_workers = int(n_workers)

    def _map_transform(self, flat, out, transform, inverse):
        slices = list(chunk_slices(flat.shape[0], self.n_chunks))
        if len(slices) <= 1:
            for sl in slices:
                out[sl] = _transform_chunk(
                    transform.name, transform.block_shape, inverse, flat[sl]
                )
            return
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {
                pool.submit(
                    _transform_chunk,
                    transform.name,
                    transform.block_shape,
                    inverse,
                    np.ascontiguousarray(flat[sl]),
                ): sl
                for sl in slices
            }
            for future, sl in futures.items():
                out[sl] = future.result()

    def _map_chunks(self, func, flat, out):  # pragma: no cover - defensive
        raise NotImplementedError(
            "ProcessExecutor dispatches picklable work units via _map_transform"
        )


class LoopExecutor(_ChunkingExecutor):
    """Pure-Python per-block loop — the deliberately slow single-threaded reference.

    Used by the backend ablation benchmark to quantify what bulk vectorized execution
    buys, mirroring the paper's PyBlaz-vs-Blaz comparison on equal algorithmic terms.
    """

    def __init__(self):
        super().__init__(n_chunks=1)

    def _map_chunks(self, func, flat, out):
        for index in range(flat.shape[0]):
            out[index] = func(flat[index])
