"""Execution backends for the transform/binning stages of the compressor.

The compressor's hot loop is "for every block: transform, then bin".  The
executors here realise that loop in different *scheduling* strategies (one
vectorized call, a thread pool, a process pool, a per-block Python loop), while
the *numeric* strategy — how each chunk's transform+binning is actually
computed — is delegated to a :class:`repro.kernels.KernelBackend` (see the
module docstring of :mod:`repro.kernels` for the backend catalogue and the
exactness-vs-speed contract).  Scheduling and numerics compose freely: any
executor can drive any kernel backend.  Under the bit-exact ``reference``
backend every executor produces bit-identical results, which lets the
benchmarks isolate the cost of execution strategy from the cost of the
algorithm — the same distinction the paper draws between GPU PyBlaz and
single-threaded Blaz.
"""

from __future__ import annotations

import abc
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..core.settings import CompressionSettings
from ..core.transforms import Transform, get_transform
from ..kernels import DEFAULT_BACKEND, get_backend
from ..reliability import faults
from ..reliability.errors import WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels import KernelBackend

__all__ = [
    "BlockExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "LoopExecutor",
    "chunk_slices",
    "MIN_CHUNK_ELEMENTS",
]

#: Minimum number of array elements per chunk before fanning out is worthwhile:
#: below this the pool dispatch overhead dwarfs the numpy work, so executors
#: reduce their chunk count (down to one, i.e. serial in the calling thread).
MIN_CHUNK_ELEMENTS = 1 << 16


def chunk_slices(n_items: int, n_chunks: int) -> Iterator[slice]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous, near-equal slices.

    Deterministic: chunk boundaries depend only on the two arguments, so chunked and
    unchunked execution orders produce identical floating-point results (each block's
    computation is independent).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, max(n_items, 1))
    base, extra = divmod(n_items, n_chunks)
    start = 0
    for index in range(n_chunks):
        length = base + (1 if index < extra else 0)
        if length == 0:
            continue
        yield slice(start, start + length)
        start += length


class BlockExecutor(abc.ABC):
    """Interface the compressor uses to run the per-block pipeline stages.

    Every executor accepts an optional ``backend`` name at construction and an
    optional ``kernel`` instance per call (the compressor passes its own).  The
    constructor backend wins when both are given, so an explicitly configured
    executor keeps its numeric strategy regardless of which compressor drives it.
    """

    def __init__(self, backend: str | None = None):
        self.backend = str(backend).lower() if backend is not None else None
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on unknown/unavailable names

    def _resolve_kernel(self, kernel: "KernelBackend | None") -> "KernelBackend":
        if self.backend is not None:
            return get_backend(self.backend)
        if kernel is not None:
            return kernel
        return get_backend(DEFAULT_BACKEND)

    def map_jobs(self, fn, jobs):
        """Run ``fn(*args)`` for every args tuple in ``jobs``; results in job order.

        The generic fan-out hook behind :mod:`repro.streaming.ops` and
        :mod:`repro.engine`: the out-of-core engines hand one job per store
        chunk to whatever executor the caller configured, so per-chunk work
        schedules exactly like the per-block transform work — serial here,
        pooled in the thread/process executors (which additionally require the
        jobs to be picklable in the process case).

        Jobs may be **batched multi-partial** work units: the plan engine's
        job decodes its chunk once and returns the partial states of *every*
        fused fold that wants the chunk (a list of
        :class:`repro.core.ops.folds.FoldState`), so one worker decode feeds
        all fused partials.  ``map_jobs`` is agnostic to the result type; it
        only promises job-order results.
        """
        return [fn(*args) for args in jobs]

    def imap_jobs(self, fn, jobs, window: int | None = None):
        """Lazily run ``fn(*args)`` per job, yielding results in job order.

        The streaming sibling of :meth:`map_jobs` for jobs whose results are
        too large to hold all at once (e.g. transformed store chunks awaiting
        an ordered append): at most ``window`` jobs are in flight, so memory
        stays bounded while the pool stays busy.  The base implementation is
        serial; pooled executors override it with a bounded-window pipeline.
        """
        for args in jobs:
            yield fn(*args)

    @abc.abstractmethod
    def transform_and_bin(
        self,
        blocked: np.ndarray,
        transform: Transform,
        settings: CompressionSettings,
        kernel: "KernelBackend | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(maxima, blocked_indices)`` for a blocked data array."""

    @abc.abstractmethod
    def inverse_transform(
        self,
        coefficients: np.ndarray,
        transform: Transform,
        settings: CompressionSettings,
        kernel: "KernelBackend | None" = None,
    ) -> np.ndarray:
        """Return the blocked data reconstructed from blocked coefficients."""


class SerialExecutor(BlockExecutor):
    """Vectorized single-call execution over the whole block grid (the default path)."""

    def transform_and_bin(self, blocked, transform, settings, kernel=None):
        return self._resolve_kernel(kernel).transform_and_bin(blocked, transform, settings)

    def inverse_transform(self, coefficients, transform, settings, kernel=None):
        return self._resolve_kernel(kernel).inverse_transform(coefficients, transform, settings)


def _kernel_chunk(
    kernel: "KernelBackend",
    transform_name: str,
    block_shape: tuple[int, ...],
    settings: CompressionSettings,
    inverse: bool,
    chunk: np.ndarray,
):
    """Picklable work unit shared by the pool executors.

    The kernel instance itself crosses the process boundary (backends are
    stateless, and pickling resolves the class by module path, so third-party
    backends registered only in the parent process still work); the transform
    is rebuilt from its name — cached per process, a dictionary hit after the
    first chunk.
    """
    transform = get_transform(transform_name, block_shape)
    if inverse:
        return kernel.inverse_transform(chunk, transform, settings)
    return kernel.transform_and_bin(chunk, transform, settings)


def _pool_failure(exc: BaseException, index: int | None, n_jobs: int) -> WorkerCrashError:
    """Build the documented :class:`WorkerCrashError` for a broken pool.

    When a worker dies, *every* outstanding future fails at once, so ``index``
    is the first job observed to fail — the crash may have happened in any
    concurrently running job.
    """
    detail = (
        "its payload failed to pickle" if isinstance(exc, PicklingError)
        else "a worker process died"
    )
    where = (
        f"at job {index} of {n_jobs}" if index is not None
        else f"dispatching {n_jobs} jobs"
    )
    return WorkerCrashError(
        f"process pool failed {where}: {detail} ({exc}); the batch is lost — "
        "retry it, or rerun with a serial or threaded executor",
        job_index=index,
        n_jobs=n_jobs,
    )


def _crashable_job(crash: bool, fn, *args):
    """Picklable wrapper the fault harness uses to kill a worker mid-batch."""
    if crash:
        os._exit(13)  # a hard worker death, not an exception the pool can catch
    return fn(*args)


def _armed_jobs(fn, jobs: list):
    """Apply any active worker-crash fault rules to a pooled job batch.

    Returns ``(fn, jobs)`` unchanged in the normal case (no plan installed).
    Only called on the genuinely pooled path — the ≤1-job batches that degrade
    to the calling thread must never arm a crash, which would kill the caller.
    """
    plan = faults.active_plan()
    if plan is None:
        return fn, jobs
    flags = [plan.take_worker_crash(index) for index in range(len(jobs))]
    if not any(flags):
        return fn, jobs
    return _crashable_job, [
        (flag, fn) + tuple(args) for flag, args in zip(flags, jobs)
    ]


def _imap_ordered(pool_cls, n_workers: int, fn, jobs, window: int | None):
    """Shared bounded-window ordered pipeline for the pooled ``imap_jobs``.

    Keeps at most ``window`` futures outstanding (default ``2 × n_workers``:
    enough to hide scheduling latency, small enough to bound result memory)
    and yields strictly in job order.  A single job degrades to the calling
    thread, like the pooled ``map_jobs``.  A broken process pool surfaces as
    the typed :class:`WorkerCrashError` naming the first failed job.
    """
    jobs = list(jobs)
    if len(jobs) <= 1:
        for args in jobs:
            yield fn(*args)
        return
    if pool_cls is ProcessPoolExecutor:
        fn, jobs = _armed_jobs(fn, jobs)
    window = max(2, window if window is not None else 2 * n_workers)
    index: int | None = None
    try:
        with pool_cls(max_workers=n_workers) as pool:
            pending: deque = deque()
            iterator = iter(enumerate(jobs))
            for index, args in iterator:
                pending.append((index, pool.submit(fn, *args)))
                if len(pending) >= window:
                    break
            while pending:
                index, future = pending.popleft()
                result = future.result()
                for next_index, args in iterator:  # refill one slot before yielding
                    pending.append((next_index, pool.submit(fn, *args)))
                    break
                yield result
    except (BrokenProcessPool, PicklingError) as exc:
        raise _pool_failure(exc, index, len(jobs)) from exc


class _ChunkingExecutor(BlockExecutor):
    """Shared machinery for executors that flatten the grid and process chunks.

    Per-chunk execution is safe for *every* kernel backend: each block's
    computation is independent, and the per-block maxima/indices of a chunk are
    exactly the corresponding rows of the whole-grid result (bit-identical for
    ``reference``; within the same documented tolerance for the fast backends).
    """

    def __init__(self, n_chunks: int, backend: str | None = None):
        super().__init__(backend)
        if n_chunks < 1:
            raise ValueError("n_chunks must be positive")
        self.n_chunks = int(n_chunks)

    def _effective_chunks(self, flat: np.ndarray) -> int:
        """Chunk count scaled down so each chunk keeps ≥ MIN_CHUNK_ELEMENTS work.

        Small arrays degrade to a single chunk — executed serially in the
        calling thread with no pool at all — so wrapping a small compression in
        a pooled executor never costs more than the serial path.
        """
        by_size = max(1, flat.size // MIN_CHUNK_ELEMENTS)
        return max(1, min(self.n_chunks, by_size))

    def _map_chunks(self, jobs: "list[tuple[slice, tuple]]", write) -> None:
        """Run ``_kernel_chunk(*args)`` for each ``(slice, args)`` job and hand
        ``(slice, result)`` to ``write``.  Subclasses choose the scheduling."""
        raise NotImplementedError

    def transform_and_bin(self, blocked, transform, settings, kernel=None):
        kernel_obj = self._resolve_kernel(kernel)
        ndim = settings.ndim
        grid_shape = blocked.shape[:-ndim] if blocked.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        flat = np.ascontiguousarray(blocked).reshape((n_blocks,) + settings.block_shape)
        maxima = np.empty(n_blocks, dtype=np.float64)
        indices = np.empty(flat.shape, dtype=settings.index_dtype)

        jobs = [
            (sl, (kernel_obj, transform.name, transform.block_shape, settings, False, flat[sl]))
            for sl in chunk_slices(n_blocks, self._effective_chunks(flat))
        ]

        def write(sl: slice, result) -> None:
            chunk_maxima, chunk_indices = result
            maxima[sl] = chunk_maxima
            indices[sl] = chunk_indices

        self._map_chunks(jobs, write)
        return maxima.reshape(grid_shape), indices.reshape(grid_shape + settings.block_shape)

    def inverse_transform(self, coefficients, transform, settings, kernel=None):
        kernel_obj = self._resolve_kernel(kernel)
        ndim = settings.ndim
        grid_shape = coefficients.shape[:-ndim] if coefficients.ndim > ndim else ()
        n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
        flat = np.ascontiguousarray(coefficients).reshape((n_blocks,) + settings.block_shape)
        out = np.empty(flat.shape, dtype=np.float64)

        jobs = [
            (sl, (kernel_obj, transform.name, transform.block_shape, settings, True, flat[sl]))
            for sl in chunk_slices(n_blocks, self._effective_chunks(flat))
        ]

        def write(sl: slice, result) -> None:
            out[sl] = result

        self._map_chunks(jobs, write)
        return out.reshape(grid_shape + settings.block_shape)


class ThreadedExecutor(_ChunkingExecutor):
    """Thread-pool execution over chunks of the block grid.

    Parameters
    ----------
    n_workers:
        Number of worker threads (and maximum chunks).  The actual chunk count
        is derived from the array size (see :data:`MIN_CHUNK_ELEMENTS`), so
        small arrays run serially in the calling thread instead of paying pool
        dispatch for sub-millisecond chunks.
    backend:
        Optional kernel-backend name fixed for this executor.
    """

    def __init__(self, n_workers: int = 4, backend: str | None = None):
        super().__init__(n_chunks=n_workers, backend=backend)
        self.n_workers = int(n_workers)

    def _map_chunks(self, jobs, write):
        if len(jobs) <= 1:
            for sl, args in jobs:
                write(sl, _kernel_chunk(*args))
            return
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {pool.submit(_kernel_chunk, *args): sl for sl, args in jobs}
            for future, sl in futures.items():
                write(sl, future.result())

    def map_jobs(self, fn, jobs):
        """Fan ``fn(*args)`` jobs out over the thread pool; results in job order."""
        if len(jobs) <= 1:
            return [fn(*args) for args in jobs]
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(fn, *args) for args in jobs]
            return [future.result() for future in futures]

    def imap_jobs(self, fn, jobs, window: int | None = None):
        """Bounded-window ordered fan-out over the thread pool (see base docstring)."""
        return _imap_ordered(ThreadPoolExecutor, self.n_workers, fn, jobs, window)


class ProcessExecutor(_ChunkingExecutor):
    """Process-pool execution over chunks of the block grid.

    Unlike :class:`ThreadedExecutor` this sidesteps the GIL entirely, at the price
    of pickling each chunk across the process boundary — worthwhile for large
    blocks where the transform dominates the copy.  Under the ``reference``
    backend results are bit-identical to the serial path.

    Parameters
    ----------
    n_workers:
        Number of worker processes (and maximum chunks).
    backend:
        Optional kernel-backend name fixed for this executor.
    """

    def __init__(self, n_workers: int = 4, backend: str | None = None):
        super().__init__(n_chunks=n_workers, backend=backend)
        self.n_workers = int(n_workers)

    def _map_chunks(self, jobs, write):
        if len(jobs) <= 1:
            for sl, args in jobs:
                write(sl, _kernel_chunk(*args))
            return
        try:
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                futures = {
                    pool.submit(
                        _kernel_chunk, *args[:-1], np.ascontiguousarray(args[-1])
                    ): sl
                    for sl, args in jobs
                }
                for future, sl in futures.items():
                    write(sl, future.result())
        except (BrokenProcessPool, PicklingError) as exc:
            raise _pool_failure(exc, None, len(jobs)) from exc

    def map_jobs(self, fn, jobs):
        """Fan ``fn(*args)`` jobs out over worker processes; results in job order.

        ``fn`` and every job argument must be picklable; results come back in
        job order regardless of completion order.  A worker crash or a payload
        that fails to pickle surfaces as :class:`WorkerCrashError` naming the
        first failed job index, instead of the raw pool internals.
        """
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [fn(*args) for args in jobs]
        fn, jobs = _armed_jobs(fn, jobs)
        index: int | None = None
        try:
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [pool.submit(fn, *args) for args in jobs]
                results = []
                for index, future in enumerate(futures):
                    results.append(future.result())
                return results
        except (BrokenProcessPool, PicklingError) as exc:
            raise _pool_failure(exc, index, len(jobs)) from exc

    def imap_jobs(self, fn, jobs, window: int | None = None):
        """Bounded-window ordered fan-out over worker processes (picklable jobs)."""
        return _imap_ordered(ProcessPoolExecutor, self.n_workers, fn, jobs, window)


class LoopExecutor(_ChunkingExecutor):
    """Pure-Python per-block loop — the deliberately slow single-threaded reference.

    Used by the backend ablation benchmark to quantify what bulk vectorized execution
    buys, mirroring the paper's PyBlaz-vs-Blaz comparison on equal algorithmic terms.
    """

    def __init__(self, backend: str | None = None):
        super().__init__(n_chunks=1, backend=backend)

    def _effective_chunks(self, flat: np.ndarray) -> int:
        # one chunk per block: the whole point is to measure the per-block loop
        return flat.shape[0]

    def _map_chunks(self, jobs, write):
        for sl, args in jobs:
            write(sl, _kernel_chunk(*args))
