"""Block-chunked execution backends (scheduling), composed with kernel backends.

The paper's implementation relies on GPU-powered PyTorch to process all blocks of an
array simultaneously; its performance argument (Fig 2, Fig 7) is the contrast between
bulk block-parallel execution and a per-block serial loop (the original Blaz).  This
subpackage provides the analogous execution substrate for the numpy backend:

* :class:`SerialExecutor` — processes the block grid in one vectorized call (the
  default behaviour of :class:`repro.core.Compressor` even without an executor);
  useful as an explicit baseline.
* :class:`ThreadedExecutor` — splits the block grid into chunks dispatched to a
  thread pool.  numpy releases the GIL inside its inner loops, so large arrays gain
  real concurrency.  The chunk count is derived from the array size (at least
  :data:`~repro.parallel.executors.MIN_CHUNK_ELEMENTS` elements per chunk), so
  small arrays degrade to serial execution instead of paying pool overhead.
* :class:`ProcessExecutor` — dispatches chunks to worker processes, sidestepping
  the GIL at the cost of pickling chunks across the process boundary; also used by
  :class:`repro.streaming.ChunkedCompressor` to fan slab compression out across
  workers.
* :class:`LoopExecutor` — a deliberately slow pure-Python per-block loop, used by the
  ablation benchmarks as the "single-threaded Blaz-style" reference point.

Executors decide *where and in what order* chunks run; the numeric strategy for
each chunk — bit-exact einsum, fused BLAS GEMM, or JIT — is a
:class:`repro.kernels.KernelBackend`, selected per executor (the ``backend``
constructor argument) or inherited from the driving compressor.  See
:mod:`repro.kernels` for the backend catalogue and the exactness-vs-speed
contract.  Under the default ``reference`` backend every executor produces
bit-identical results.

All executors implement the two hooks the compressor calls:
``transform_and_bin(blocked, transform, settings, kernel=None)`` and
``inverse_transform(coefficients, transform, settings, kernel=None)``.
"""

from .executors import (
    MIN_CHUNK_ELEMENTS,
    BlockExecutor,
    LoopExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    chunk_slices,
)

__all__ = [
    "BlockExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "LoopExecutor",
    "chunk_slices",
    "MIN_CHUNK_ELEMENTS",
]
