"""Lazy expression nodes over compressed sources (the engine's user surface).

An expression is a small immutable DAG: **array nodes** stand for compressed
arrays that are never materialised (a :class:`Source` wrapping a
:class:`repro.streaming.CompressedStore` or any re-iterable sequence of chunk
:class:`repro.core.CompressedArray` objects, or a structural combination —
:func:`add`, :func:`subtract`, :func:`scale`, :func:`negate` — of other array
nodes), and **reduction nodes** stand for the Table I scalars over an array
node (:func:`mean`, :func:`variance`, :func:`standard_deviation`,
:func:`covariance`, :func:`dot`, :func:`l2_norm`, :func:`euclidean_distance`,
:func:`cosine_similarity`).

Nothing is computed at construction time.  Handing one or more reduction nodes
to :func:`repro.engine.plan` (or :func:`repro.engine.evaluate`) compiles them
into fused sweeps in which every chunk of every source is decoded **once per
pass** no matter how many reductions consume it — see :mod:`repro.engine.plan`
for the planning rules and ``docs/engine.md`` for the fusion matrix.

Node identity is *structural*: two separately built ``dot(x, y)`` nodes over
the same sources compare equal for planning purposes (``Expr.key``), so
repeated subexpressions deduplicate even when the caller does not share node
objects.  Sources are identified by the wrapped object (``id``), which is what
"the same source" means for an open store or a chunk list.

Reduction constructors accept raw sources anywhere an array node is expected —
``expr.mean(store)`` is shorthand for ``expr.mean(expr.source(store))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Expr",
    "ArrayExpr",
    "Reduction",
    "Source",
    "source",
    "add",
    "subtract",
    "scale",
    "negate",
    "mean",
    "variance",
    "standard_deviation",
    "covariance",
    "dot",
    "l2_norm",
    "euclidean_distance",
    "cosine_similarity",
    "REDUCTION_OPS",
    "TWO_PASS_OPS",
]

#: Scalar reduction node kinds, by arity.
REDUCTION_OPS: dict[str, int] = {
    "mean": 1,
    "variance": 1,
    "standard_deviation": 1,
    "l2_norm": 1,
    "dot": 2,
    "covariance": 2,
    "euclidean_distance": 2,
    "cosine_similarity": 2,
}

#: Reductions that need a DC-mean pass before their centered fold (two sweeps).
TWO_PASS_OPS = frozenset({"variance", "standard_deviation", "covariance"})


class Expr:
    """Base of all expression nodes.  ``key`` is the structural identity."""

    @property
    def key(self) -> tuple:
        """Hashable structural key; equal keys plan as one node."""
        raise NotImplementedError


class ArrayExpr(Expr):
    """An array-valued node: a source or a structural combination of them."""


@dataclass(frozen=True, eq=False)
class Source(ArrayExpr):
    """Leaf wrapping a concrete chunk source (store or re-iterable of chunks).

    A source may also wrap a bare **catalog name** string — the client-side
    shape of the serving wire form (:mod:`repro.engine.wire`), resolved to a
    store by the server's catalog.
    """

    wrapped: Any

    @property
    def key(self) -> tuple:
        """Identity of the wrapped object — same store/sequence, same node.

        Name strings are identified by their *value*, not their object id:
        two sources naming the same catalog entry are the same source, which
        keeps wire round trips structurally stable.
        """
        if isinstance(self.wrapped, str):
            return ("source", "name", self.wrapped)
        return ("source", id(self.wrapped))

    def __repr__(self) -> str:
        return f"source({self.wrapped!r})"


@dataclass(frozen=True, eq=False)
class Structural(ArrayExpr):
    """A chunk-wise structural combination (never materialised by the engine).

    ``kind`` is one of ``add``/``subtract``/``scale``/``negate``; ``operands``
    are the input array nodes and ``factor`` the scalar of ``scale`` (``None``
    otherwise).  The planner evaluates these per chunk with the in-memory
    :mod:`repro.core.ops` structural operations, feeding the fold partials
    directly — no intermediate store is written.
    """

    kind: str
    operands: tuple[ArrayExpr, ...]
    factor: float | None = None

    @property
    def key(self) -> tuple:
        """Structural key: kind, operand keys, and the scale factor if any."""
        return (self.kind, tuple(op.key for op in self.operands), self.factor)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.operands))
        if self.factor is not None:
            inner += f", {self.factor!r}"
        return f"{self.kind}({inner})"


@dataclass(frozen=True, eq=False)
class Reduction(Expr):
    """A scalar reduction over one or two array nodes.

    ``options`` holds finalize keywords (only the mean's ``padded`` today) and
    participates in the structural key, so ``mean(x)`` and
    ``mean(x, padded=False)`` are distinct outputs that still share the same
    underlying ``dc`` fold term.
    """

    op: str
    operands: tuple[ArrayExpr, ...]
    options: tuple[tuple[str, Any], ...] = ()

    @property
    def key(self) -> tuple:
        """Structural key: op name, operand keys, finalize options."""
        return (self.op, tuple(op.key for op in self.operands), self.options)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.operands))
        if self.options:
            inner += ", " + ", ".join(f"{k}={v!r}" for k, v in self.options)
        return f"{self.op}({inner})"


def _as_array(operand) -> ArrayExpr:
    """Coerce a raw source into a :class:`Source` node; pass array nodes through."""
    if isinstance(operand, ArrayExpr):
        return operand
    if isinstance(operand, Reduction):
        raise TypeError(
            f"{operand!r} is scalar-valued; structural and reduction nodes "
            "take array-valued operands (sources or add/subtract/scale/negate)"
        )
    return Source(operand)


# ---------------------------------------------------------------- structural nodes
def source(wrapped) -> Source:
    """Wrap a :class:`CompressedStore` or re-iterable chunk sequence as a leaf."""
    return _as_array(wrapped) if isinstance(wrapped, ArrayExpr) else Source(wrapped)


def add(a, b) -> Structural:
    """Lazy element-wise sum of two array nodes (rebinning error, per block)."""
    return Structural("add", (_as_array(a), _as_array(b)))


def subtract(a, b) -> Structural:
    """Lazy element-wise difference ``a − b`` (rebinning error, per block)."""
    return Structural("subtract", (_as_array(a), _as_array(b)))


def scale(a, factor: float) -> Structural:
    """Lazy scalar multiple ``factor · a`` (exact; maxima-only)."""
    return Structural("scale", (_as_array(a),), factor=float(factor))


def negate(a) -> Structural:
    """Lazy negation ``−a`` (exact; indices-only)."""
    return Structural("negate", (_as_array(a),))


# ---------------------------------------------------------------- reduction nodes
def mean(x, *, padded: bool = True) -> Reduction:
    """Lazy store-level mean (Algorithm 7); ``padded`` as in :func:`repro.core.ops.mean`."""
    return Reduction("mean", (_as_array(x),), options=(("padded", bool(padded)),))


def variance(x) -> Reduction:
    """Lazy store-level variance (Algorithm 9) — a two-pass reduction."""
    return Reduction("variance", (_as_array(x),))


def standard_deviation(x) -> Reduction:
    """Lazy store-level standard deviation (square root of the variance fold)."""
    return Reduction("standard_deviation", (_as_array(x),))


def covariance(x, y) -> Reduction:
    """Lazy store-level covariance (Algorithm 8) — a two-pass reduction."""
    return Reduction("covariance", (_as_array(x), _as_array(y)))


def dot(x, y) -> Reduction:
    """Lazy store-level dot product (Algorithm 6)."""
    return Reduction("dot", (_as_array(x), _as_array(y)))


def l2_norm(x) -> Reduction:
    """Lazy store-level L2 norm (Algorithm 10)."""
    return Reduction("l2_norm", (_as_array(x),))


def euclidean_distance(x, y) -> Reduction:
    """Lazy store-level Euclidean distance ``‖x − y‖₂`` in coefficient space."""
    return Reduction("euclidean_distance", (_as_array(x), _as_array(y)))


def cosine_similarity(x, y) -> Reduction:
    """Lazy store-level cosine similarity (Algorithm 11)."""
    return Reduction("cosine_similarity", (_as_array(x), _as_array(y)))
