"""Lowering fused plan passes into single compiled kernels.

A :class:`~repro.engine.plan.PassGroup` sweep normally interprets each chunk
step: decode, then run every fused fold partial as its own numpy call, each
materialising the dense specified-coefficient array
(:func:`repro.core.ops.coefficients.specified_coefficients`).  For a group
whose terms all read *leaf sources* — no structural ``add``/``scale``/…
nodes, which rebin and genuinely need the interpreter — the whole step can be
*lowered* into one kernel that

1. builds each source's scaled kept-coefficient matrix
   ``S = F.astype(float64) * (N / r)`` **once** (bitwise identical per element
   to ``specified_coefficients``, which computes the very same expression —
   but ``(n_blocks, kept_per_block)`` instead of the dense padded block
   layout, and once per source instead of once per fold);
2. for centered (pass-2) terms, subtracts each source's global DC mean from
   the DC column in place — the same shift the centered partials apply;
3. emits every term's per-block partial-sum vector from those shared
   matrices in a single traversal.

The kernel itself comes from the selected :class:`repro.kernels.KernelBackend`
via :meth:`~repro.kernels.KernelBackend.compile_fused_pass` and is cached here
per ``(backend, PassSignature)`` — the signature captures everything the
generated code specialises on (term set, index dtype, block geometry), so a
plan re-executed over new chunks, new stores or new requests with the same
shape reuses the compiled kernel with zero recompilation.  That is what makes
the serving layer's coalesced plans compile once and stay warm across
requests.

Numerics contract
-----------------

``dc`` partial vectors are **bit-identical** to the interpreted fold (same
scalar expression per block, no summation involved), so compiled means equal
reference means exactly.  Summing folds (``square``/``product``/
``diff_square``/``centered_*``) reassociate the within-block summation (a
row dot over kept coefficients instead of the interpreter's dense
block-axis reduction), so their per-block sums agree with reference within
:meth:`repro.kernels.KernelBackend.fused_fold_tolerance` — see
``docs/engine.md`` ("Compiled plans") for the derivation.  Everything after
the per-block vectors (``fsum`` combine, finalizers) is shared with the
interpreted path, so chunking invariance is preserved per backend.

Fallbacks are always clean: groups that cannot be lowered (structural nodes,
pruned DC with mean-based terms, a backend without a fused-pass compiler) run
the interpreted path; a requested-but-unavailable backend resolves to
``reference`` with the reason recorded in ``Plan.last_execution``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from ..core.ops import folds
from ..core.ops.coefficients import require_compatible
from ..kernels import DEFAULT_BACKEND, get_backend, get_backend_class
from ..streaming.store import CompressedStore

__all__ = [
    "PassSignature",
    "lower_terms",
    "signature_for",
    "get_pass_kernel",
    "run_compiled_step",
    "resolve_backend",
    "kernel_cache_info",
    "clear_kernel_cache",
    "LOWERABLE_FOLDS",
]

#: Folds a compiled pass may contain.  ``similarity`` is excluded (the planner
#: decomposes cosine similarity into ``product`` + ``square`` terms instead).
LOWERABLE_FOLDS = frozenset(
    {"dc", "square", "product", "diff_square", "centered_square",
     "centered_product"}
)

#: Operation labels for the compiled path's operand-compatibility errors,
#: mirroring the interpreted partials' wording.
_BINARY_OP_LABEL = {
    "product": "dot product",
    "diff_square": "euclidean distance",
    "centered_product": "covariance",
}


# ------------------------------------------------------------------ lowering
@dataclass(frozen=True)
class _Lowering:
    """Settings-independent lowering of one group's terms.

    Attributes
    ----------
    terms:
        ``(fold name, operand positions)`` per term, where positions index the
        group's decoded chunk tuple (its ``source_slots`` order).
    n_sources:
        Number of sources the group decodes per aligned step.
    centered:
        True when the terms are the centered pass-2 folds (DC shifts apply).
    """

    terms: tuple
    n_sources: int
    centered: bool


@dataclass(frozen=True)
class PassSignature:
    """Everything a fused-pass kernel specialises on — the cache key.

    Two chunk streams with equal signatures are served by the same compiled
    kernel: the term set fixes the generated arithmetic, the index dtype and
    block geometry fix the input layout, and ``index_radius`` fixes the
    descale constant.  Chunk *counts*, shapes and maxima are runtime inputs,
    not signature — that is what lets one kernel serve every chunk of every
    request with the same plan shape.
    """

    terms: tuple
    n_sources: int
    centered: bool
    index_dtype: str
    block_shape: tuple
    kept_per_block: int
    index_radius: int


@lru_cache(maxsize=512)
def lower_terms(program: tuple, terms: tuple, source_slots: tuple):
    """Lower one group's terms to source positions, or ``None`` to interpret.

    A group lowers only when every term is a :data:`LOWERABLE_FOLDS` member
    whose operands are all *leaf source* program slots — structural nodes
    (``add``/``subtract``/``scale``/``negate``) rebin coefficients and keep
    the interpreted path.  Centered and uncentered folds never share a pass
    (the scheduler puts centered terms in pass 2 alone), but a mixed set is
    refused defensively: the kernel's DC shift is per *source*, applied
    exactly once, and must not leak into uncentered terms.
    """
    position = {slot: index for index, slot in enumerate(source_slots)}
    lowered = []
    centered_flags = []
    for name, slots in terms:
        if name not in LOWERABLE_FOLDS:
            return None
        if any(program[slot][0] != "source" for slot in slots):
            return None
        lowered.append((name, tuple(position[slot] for slot in slots)))
        centered_flags.append(folds.FOLD_SPECS[name].centered)
    centered = any(centered_flags)
    if centered and not all(centered_flags):
        return None
    return _Lowering(tuple(lowered), len(source_slots), centered)


def signature_for(lowering: _Lowering, settings) -> PassSignature | None:
    """Bind a lowering to concrete chunk settings, or ``None`` to interpret.

    Mean-based terms (``dc`` and the centered folds) assume the DC coefficient
    is kept column 0 of the flattened index layout; when pruning dropped it,
    the interpreted partials own the (error-raising) behavior.
    """
    needs_dc = lowering.centered or any(name == "dc" for name, _ in lowering.terms)
    if needs_dc and not settings.first_coefficient_kept:
        return None
    return PassSignature(
        terms=lowering.terms,
        n_sources=lowering.n_sources,
        centered=lowering.centered,
        index_dtype=settings.index_dtype.name,
        block_shape=tuple(settings.block_shape),
        kept_per_block=int(settings.kept_per_block),
        index_radius=int(settings.index_radius),
    )


# ------------------------------------------------------------------ kernel cache
#: ``(backend name, signature) -> compiled kernel`` (or ``None`` when the
#: backend declined).  Per process: executor workers build their own entries,
#: warmed once per distinct plan shape and reused for every later chunk/job.
_KERNEL_CACHE: dict[tuple, Callable | None] = {}


def get_pass_kernel(backend_name: str,
                    signature: PassSignature) -> tuple[Callable | None, float]:
    """Fetch (or compile and cache) the fused-pass kernel for a signature.

    Returns ``(kernel, compile_seconds)`` — ``compile_seconds`` is non-zero
    only on a cache miss that actually compiled, which is how callers report
    JIT warm-up separately from steady-state execution.  ``kernel`` is
    ``None`` when the backend has no fused-pass compiler (the caller then
    interprets).
    """
    key = (backend_name, signature)
    if key in _KERNEL_CACHE:
        return _KERNEL_CACHE[key], 0.0
    backend = get_backend(backend_name)
    started = time.perf_counter()
    kernel = backend.compile_fused_pass(signature)
    elapsed = time.perf_counter() - started if kernel is not None else 0.0
    _KERNEL_CACHE[key] = kernel
    return kernel, elapsed


def kernel_cache_info() -> dict:
    """Cache introspection for tests and diagnostics."""
    return {
        "size": len(_KERNEL_CACHE),
        "keys": sorted((backend, signature.terms)
                       for backend, signature in _KERNEL_CACHE),
    }


def clear_kernel_cache() -> None:
    """Drop every cached kernel (tests; never needed in production)."""
    _KERNEL_CACHE.clear()


# ------------------------------------------------------------------ execution
def run_compiled_step(kernel: Callable, lowering: _Lowering, chunks: Sequence,
                      extras: tuple) -> list:
    """One compiled chunk step: every term's partial state from one kernel call.

    ``chunks`` is the group's aligned decoded chunk tuple in ``source_slots``
    order; ``extras`` matches the interpreted path (the centered terms' global
    DC means).  Operand compatibility is checked exactly as the interpreted
    partials would, then the kernel returns one per-block float64 vector per
    term, wrapped into :class:`repro.core.ops.folds.FoldState` with the same
    sum keys and counts the interpreted partials produce — so everything
    downstream (combine, finalize) is shared.
    """
    for name, positions in lowering.terms:
        if len(positions) == 2:
            require_compatible(chunks[positions[0]], chunks[positions[1]],
                               _BINARY_OP_LABEL[name])
    shifts = np.zeros(lowering.n_sources, dtype=np.float64)
    if lowering.centered:
        for (_, positions), extra in zip(lowering.terms, extras):
            for position, mean in zip(positions, extra):
                shifts[position] = mean
    vectors = kernel(chunks, shifts)
    states = []
    for (name, positions), vector in zip(lowering.terms, vectors):
        anchor = chunks[positions[0]]
        states.append(folds.FoldState(
            sums={name: [vector]},
            n_blocks=anchor.n_blocks,
            n_elements=anchor.n_elements,
            n_padded_elements=anchor.n_padded_elements,
            dc_scale=anchor.settings.dc_scale if name == "dc" else None,
        ))
    return states


# ------------------------------------------------------------------ backend resolution
def _settings_backend(source) -> str | None:
    """The kernel-backend preference carried by a source's settings, if any."""
    if isinstance(source, CompressedStore):
        settings = source.settings
    elif isinstance(source, (list, tuple)) and source:
        settings = getattr(source[0], "settings", None)
    else:
        settings = None
    return getattr(settings, "backend", None)


def resolve_backend(requested: str | None, sources: Sequence) -> tuple[str, str | None]:
    """Resolve the executing backend name; returns ``(name, fallback_reason)``.

    Precedence: an explicit request wins; otherwise, when every
    backend-carrying source's :class:`~repro.core.settings.CompressionSettings`
    agrees on a single non-default backend, that consensus is used (the
    ``CompressionSettings.backend`` plumbing — note the field is never
    serialized, so stores opened from disk default to ``reference``); else
    :data:`repro.kernels.DEFAULT_BACKEND`.

    Unknown names raise :class:`repro.codecs.CodecError` (a caller error);
    a *known but unavailable* backend (numba not installed) falls back to
    ``reference`` with the reason returned for recording — execution always
    proceeds.
    """
    name = requested
    if name is None:
        preferences = {backend for backend in map(_settings_backend, sources)
                       if backend and backend != DEFAULT_BACKEND}
        name = preferences.pop() if len(preferences) == 1 else DEFAULT_BACKEND
    name = str(name).lower()
    cls = get_backend_class(name)  # raises CodecError for unknown names
    if name != DEFAULT_BACKEND and not cls.is_available():
        reason = cls.unavailable_reason() or "backend unavailable"
        return DEFAULT_BACKEND, f"{name} unavailable ({reason}); ran reference"
    return name, None
