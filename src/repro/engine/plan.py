"""The fusing planner: many compressed-domain reductions, one sweep per pass.

:func:`plan` compiles a set of reduction expressions (:mod:`repro.engine.expr`)
into a :class:`Plan` whose execution decodes every chunk of every source
**once per pass**, however many reductions consume it.  Planning happens in
three steps:

1. **Collect** — each requested reduction is decomposed into the fold *terms*
   it needs, straight from the declarative :data:`repro.core.ops.folds.FOLD_SPECS`:
   ``mean(x)`` needs ``dc(x)``; ``dot(x, y)`` needs ``product(x, y)``;
   ``cosine_similarity(x, y)`` needs ``product(x, y)``, ``square(x)`` and
   ``square(y)``; ``variance(x)`` needs ``dc(x)`` in pass 1 and
   ``centered_square(x)`` in pass 2; ``covariance(x, y)`` needs ``dc`` of both
   operands in pass 1 and ``centered_product(x, y)`` in pass 2.
2. **Deduplicate** — terms are keyed by ``(fold name, operand nodes)``, so the
   dot and the cosine similarity of the same pair share one product sum, the
   l2 norm and the cosine share one square sum, and the mean, variance and
   covariance of the same source share one DC sum (variance's pass-1 mean *is*
   covariance's).  Structural nodes (``add``/``scale``/…) deduplicate the same
   way through their structural keys.
3. **Schedule** — pass 1 holds every uncentered term, pass 2 (present exactly
   when a two-pass reduction was requested) holds the centered terms, whose
   extra arguments (global DC means) are finalized from pass 1's ``dc`` states.
   Within a pass, terms are grouped by source so each aligned chunk tuple is
   decoded once and feeds every partial that wants it; decoded chunks shared by
   two or more coefficient-touching folds get a primed ``coefficients_cache``
   (one dense materialisation, bitwise-identical copies per fold).

**Pass-count guarantee**: ``plan.n_passes`` is 1 when no requested reduction is
two-pass, else 2; a source is decoded only in the passes whose terms reference
it (``plan.decode_passes``), at exactly one decode per chunk per pass.

**Bit-identity guarantee**: every fused scalar equals the corresponding
sequential :mod:`repro.streaming.ops` call bit for bit — the per-block partial
sums are computed by the same partials on the same chunk bits, and
:func:`repro.core.ops.folds.total` finalizes with ``math.fsum`` over the same
per-chunk vectors in the same chunk order.

**Compiled execution**: ``Plan.execute(backend=...)`` routes lowered pass
groups through one compiled fused-pass kernel per plan signature
(:mod:`repro.engine.compile`) — ``gemm`` vectorizes the whole step over the
flattened kept-coefficient matrices, ``numba`` JIT-compiles a generated
per-block loop.  The ``reference`` default keeps the interpreted, bit-exact
path above; compiled means stay bit-identical and summing folds agree within
the backend's ``fused_fold_tolerance`` (see ``docs/engine.md``).

Executor fan-out: with an ``executor`` (any :class:`repro.parallel.BlockExecutor`)
and store-only sources, each pass dispatches one *batched multi-partial job*
per chunk through :meth:`BlockExecutor.map_jobs` — the worker decodes the
chunk tuple once and returns every fused partial's state — and states combine
in chunk order, keeping results identical to the serial sweep.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from typing import Mapping

from ..core import ops as core_ops
from ..core.ops import folds
from ..kernels import DEFAULT_BACKEND
from ..reliability import faults
from ..streaming.sharded import ShardedStore, open_store
from ..streaming.sources import (STORE_TYPES, aligned_chunks, check_stores,
                                 require_pyblaz)
from ..streaming.store import CompressedStore
from . import compile as plan_compile
from .expr import ArrayExpr, Expr, Reduction, Source, TWO_PASS_OPS

__all__ = ["Plan", "PlanPass", "PassGroup", "plan", "evaluate"]


# ------------------------------------------------------------------ chunk programs
def _node_inputs(entry: tuple) -> tuple:
    """The node slots one program entry reads (its structural operands)."""
    kind = entry[0]
    if kind == "source":
        return ()
    if kind in ("add", "subtract"):
        return entry[1:3]
    return (entry[1],)  # scale, negate


def _needed_slots(program: tuple, terms: tuple) -> set[int]:
    """Transitive closure of node slots the given terms read."""
    needed: set[int] = set()
    stack = [slot for _, slots in terms for slot in slots]
    while stack:
        slot = stack.pop()
        if slot in needed:
            continue
        needed.add(slot)
        stack.extend(_node_inputs(program[slot]))
    return needed


def _evaluate_chunk_terms(program: tuple, values: dict, terms: tuple,
                          extras: tuple) -> list[folds.FoldState]:
    """One fused chunk step: structural nodes, shared caches, every term's partial.

    ``values`` arrives holding the decoded source chunks for this step (slot →
    :class:`CompressedArray`); structural slots are filled by the in-memory
    :mod:`repro.core.ops` operations in slot (topological) order.  Chunks that
    feed two or more coefficient-touching folds get a primed
    ``coefficients_cache`` so the dense coefficient array is materialised once
    and copied per fold (bitwise identical — see
    :func:`repro.core.ops.coefficients.specified_coefficients`).
    """
    needed = _needed_slots(program, terms)
    for slot in sorted(needed):
        if slot in values:
            continue
        entry = program[slot]
        kind = entry[0]
        if kind == "add":
            values[slot] = core_ops.add(values[entry[1]], values[entry[2]])
        elif kind == "subtract":
            values[slot] = core_ops.subtract(values[entry[1]], values[entry[2]])
        elif kind == "scale":
            values[slot] = core_ops.multiply_scalar(values[entry[1]], entry[2])
        elif kind == "negate":
            values[slot] = core_ops.negate(values[entry[1]])
        else:  # pragma: no cover - compilation always seeds source slots
            raise ValueError(f"source chunk for slot {slot} was not decoded")

    uses: Counter = Counter()
    for (name, slots), _ in zip(terms, extras):
        if folds.FOLD_SPECS[name].touches_coefficients:
            uses.update(slots)
    primed = []
    for slot, count in uses.items():
        if count >= 2:
            chunk = values[slot]
            chunk.coefficients_cache = chunk.specified_coefficients()
            primed.append(chunk)

    try:
        states = []
        for (name, slots), extra in zip(terms, extras):
            partial = folds.FOLD_SPECS[name].partial
            states.append(partial(*(values[slot] for slot in slots), *extra))
    finally:
        # the cache is strictly step-scoped: chunk objects may be caller-owned
        # (sequence sources) and must neither retain dense coefficients nor
        # serve stale bits to later operations if mutated
        for chunk in primed:
            del chunk.coefficients_cache
    return states


def _plan_pass_job(program: tuple, paths: tuple, terms: tuple, extras: tuple,
                   index: int,
                   backend: str = DEFAULT_BACKEND) -> list[folds.FoldState]:
    """Picklable batched multi-partial job: one chunk decode feeds every fused fold.

    Workers (possibly in other processes) reopen each needed store by path,
    decode only chunk ``index`` of each — one decode per source per job — and
    return the full list of fold partial states for this chunk, orders of
    magnitude smaller than the chunk itself.  Under a non-default ``backend``
    the step runs through the compiled fused-pass kernel when the group
    lowers (cached per worker process — one compile serves every job with
    this plan signature), interpreting otherwise.
    """
    values = {}
    for slot, path in paths:
        with open_store(path) as store:
            values[slot] = store.read_chunk(index)
    if backend != DEFAULT_BACKEND:
        slots = tuple(slot for slot, _ in paths)
        lowering = plan_compile.lower_terms(program, terms, slots)
        if lowering is not None:
            chunks = tuple(values[slot] for slot in slots)
            signature = plan_compile.signature_for(lowering, chunks[0].settings)
            if signature is not None:
                kernel, _ = plan_compile.get_pass_kernel(backend, signature)
                if kernel is not None:
                    try:
                        return plan_compile.run_compiled_step(kernel, lowering,
                                                              chunks, extras)
                    except Exception:
                        # a kernel runtime failure degrades this job to the
                        # interpreted path — the decoded chunks are untouched
                        pass
    return _evaluate_chunk_terms(program, values, terms, extras)


# ------------------------------------------------------------------ the plan
class PassGroup:
    """One aligned sweep within a pass: terms over one connected source set.

    Terms that share no source decode independently — fusing ``mean(a)`` with
    ``mean(b)`` must not force ``a`` and ``b`` into one lockstep iteration
    (they may be shaped or chunked differently).  The planner therefore
    partitions each pass's terms into connected components over their source
    sets; geometry checks (`check_stores`) and chunk alignment apply *within*
    a group only.
    """

    def __init__(self, terms: tuple, source_slots: tuple, source_indices: tuple):
        self.terms = terms
        self.source_slots = source_slots
        self.source_indices = source_indices

    def __repr__(self) -> str:
        names = ", ".join(f"{name}{slots}" for name, slots in self.terms)
        return f"PassGroup(sources={self.source_indices}, terms=[{names}])"


class PlanPass:
    """One scheduling pass: every term folded during it, grouped by source set.

    Attributes
    ----------
    index:
        1-based pass number (pass 2 exists only for two-pass reductions).
    terms:
        ``(fold name, operand slots)`` keys folded during this pass, in a
        deterministic collection order.
    groups:
        The :class:`PassGroup` sweeps — one aligned chunk iteration per
        connected source set; each group's sources are decoded exactly once
        per chunk during its sweep.
    source_slots:
        Node slots of every leaf source this pass decodes (union over groups,
        aligned with ``source_indices``).
    source_indices:
        Indices into :attr:`Plan.sources` of the sources this pass decodes.
    """

    def __init__(self, index: int, terms: tuple, groups: tuple):
        self.index = index
        self.terms = terms
        self.groups = groups
        self.source_slots = tuple(slot for group in groups
                                  for slot in group.source_slots)
        self.source_indices = tuple(source for group in groups
                                    for source in group.source_indices)

    def __repr__(self) -> str:
        names = ", ".join(f"{name}{slots}" for name, slots in self.terms)
        return f"PlanPass({self.index}, sources={self.source_indices}, terms=[{names}])"


class Plan:
    """A compiled, introspectable fusion of reduction expressions.

    Build with :func:`plan`; run with :meth:`execute`.  The plan is reusable —
    executing twice re-sweeps the sources (stores re-read from disk; plain
    chunk sequences re-iterated).

    Attributes
    ----------
    sources:
        The deduplicated leaf sources, in first-appearance order.
    passes:
        The scheduled :class:`PlanPass` sweeps (length = :attr:`n_passes`).
    default_backend:
        Kernel backend :meth:`execute` uses when called without ``backend=``
        (``None`` → resolve from source settings, else ``reference``).
    last_execution:
        After :meth:`execute`: a dict recording the resolved ``backend``, any
        ``fallback_reason`` (backend unavailable at resolve time, or a
        compiled kernel failing at runtime mid-sweep), per-mode group counts
        (``compiled_groups``/``interpreted_groups``/``incremental_groups`` —
        the last counts sweep groups answered entirely from a sharded store's
        persisted fold partials, decoding nothing), the number of
        ``runtime_fallbacks`` (compiled groups that degraded to the
        interpreter mid-run — the interpreted path resumed the same decoded
        chunks, so the scalars are still correct) and the JIT
        ``compile_seconds`` spent this run (0.0 on warm kernel-cache hits).
        ``None`` before the first execution.
    """

    def __init__(self, outputs: dict, program: tuple, sources: list,
                 passes: list[PlanPass], shape: str,
                 default_backend: str | None = None):
        self._outputs = outputs
        self._program = program
        self.sources = tuple(sources)
        self.passes = tuple(passes)
        self._shape = shape
        self.default_backend = default_backend
        self.last_execution: dict | None = None

    # -------------------------------------------------------------- introspection
    @property
    def n_passes(self) -> int:
        """Number of fused sweeps: 1, or 2 when any two-pass reduction is present."""
        return len(self.passes)

    @property
    def output_keys(self) -> tuple:
        """Keys of the requested outputs, in request order."""
        return tuple(self._outputs)

    @property
    def decode_passes(self) -> tuple[int, ...]:
        """Per source (aligned with :attr:`sources`): how many passes decode it."""
        counts = [0] * len(self.sources)
        for pass_ in self.passes:
            for source_index in pass_.source_indices:
                counts[source_index] += 1
        return tuple(counts)

    def describe(self) -> str:
        """Human-readable plan: backend, sources, per-pass fused terms, outputs.

        The backend line reflects the *executing* backend: what the last
        :meth:`execute` actually ran (including any availability fallback), or
        what the next default execution would resolve to before the first run.
        """
        executed = self.last_execution
        if executed is not None:
            backend = executed["backend"]
        else:
            backend, _ = plan_compile.resolve_backend(self.default_backend,
                                                      self.sources)
        lines = [f"plan: {self.n_passes} pass(es) over {len(self.sources)} source(s), "
                 f"{len(self._outputs)} output(s), backend={backend}"]
        for index, source in enumerate(self.sources):
            label = type(source).__name__
            if isinstance(source, STORE_TYPES):
                label = f"{type(source).__name__}({source.path})"
            lines.append(f"  source s{index}: {label}")
        for pass_ in self.passes:
            lines.append(f"  pass {pass_.index}: {len(pass_.terms)} term(s) in "
                         f"{len(pass_.groups)} group(s)")
            for group in pass_.groups:
                terms = ", ".join(f"{name}{slots}" for name, slots in group.terms)
                decoded = ", ".join(f"s{i}" for i in group.source_indices)
                lines.append(f"    decode [{decoded}] once per chunk; "
                             f"fold {terms}")
        for key, (op, slots, _) in self._outputs.items():
            lines.append(f"  output {key!r}: {op}{slots}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Plan(outputs={list(self._outputs)}, passes={self.n_passes}, "
                f"sources={len(self.sources)})")

    # -------------------------------------------------------------- validation
    def _validate_sources(self) -> None:
        """Upfront checks: pyblaz stores, per-group geometry, DC availability,
        re-iterability.

        Geometry (shape and chunking) must match only *within* a sweep group —
        unrelated reductions fuse across differently shaped or chunked sources.
        DC-requiring folds (``FoldSpec.requires_dc``) fail fast when a store
        source's pruning mask dropped the first coefficient, instead of deep in
        the first sweep.
        """
        for source in self.sources:
            if isinstance(source, STORE_TYPES):
                require_pyblaz(source)
        for pass_ in self.passes:
            for group in pass_.groups:
                check_stores([self.sources[index]
                              for index in group.source_indices])
            for name, slots in pass_.terms:
                if not folds.FOLD_SPECS[name].requires_dc:
                    continue
                for slot in sorted(_needed_slots(self._program, ((name, slots),))):
                    if self._program[slot][0] != "source":
                        continue
                    source = self.sources[self._program[slot][1]]
                    settings = (source.settings
                                if isinstance(source, STORE_TYPES) else None)
                    if settings is not None and not settings.first_coefficient_kept:
                        raise ValueError(
                            f"{name} requires the first coefficient of each "
                            "block to be unpruned"
                        )
        multi_pass = [index for index, count in enumerate(self.decode_passes)
                      if count >= 2]
        if not multi_pass:
            return
        two_pass_ops = sorted({op for op, _, _ in self._outputs.values()
                               if op in TWO_PASS_OPS})
        name = ", ".join(two_pass_ops) or "the plan"
        for index in multi_pass:
            source = self.sources[index]
            if not isinstance(source, STORE_TYPES) and iter(source) is source:
                raise ValueError(
                    f"{name} folds over its source twice (mean pass + centered "
                    "pass); pass a CompressedStore or a re-iterable sequence of "
                    "chunks, not a single-shot generator"
                )

    # -------------------------------------------------------------- execution
    def _extras(self, terms: tuple, means: Mapping[int, float]) -> tuple:
        """Resolve each term's extra arguments (DC means for centered folds)."""
        resolved = []
        for name, slots in terms:
            if folds.FOLD_SPECS[name].centered:
                resolved.append(tuple(means[slot] for slot in slots))
            else:
                resolved.append(())
        return tuple(resolved)

    def _serve_group_from_partials(self, group: PassGroup, extras: tuple
                                   ) -> "dict | None":
        """Answer one sweep group from persisted shard partials, or ``None``.

        A group is servable — no chunk is decoded at all — when **every** term
        is an uncentered leaf-source fold a :class:`ShardedStore` persists:
        ``dc(s)``, ``square(s)``, or ``product(s, s)`` with both operands the
        same slot (per-block arithmetic identical to ``square``, served from
        the same vectors relabeled).  The slot must map straight to a sharded
        source with fresh partials (:meth:`ShardedStore.fold_state` applies
        the staleness checks); any structural node (``scale``/``add``/...),
        non-sharded source, centered fold, or stale shard makes the whole
        group fall back to the ordinary sweep.  Served states are
        bit-identical to swept ones: the persisted vectors are the sweep's own
        per-chunk partials, concatenated in chunk order, so ``fsum`` sees the
        same float64 values in the same order.
        """
        states: dict = {}
        for term, extra in zip(group.terms, extras):
            if extra:
                return None
            name, slots = term
            if name == "dc" and len(slots) == 1:
                fold, rename = "dc", None
            elif name == "square" and len(slots) == 1:
                fold, rename = "square", None
            elif name == "product" and len(slots) == 2 and slots[0] == slots[1]:
                fold, rename = "square", "product"
            else:
                return None
            node = self._program[slots[0]]
            if node[0] != "source":
                return None
            source = self.sources[node[1]]
            if not isinstance(source, ShardedStore):
                return None
            state = source.fold_state(fold, rename=rename)
            if state is None:
                return None
            states[term] = state
        return states

    def _run_pass(self, pass_: PlanPass, extras: tuple, executor,
                  backend: str, run_stats: dict,
                  prefetch: int | None = None) -> list:
        """Execute one pass; return the combined state per term (pass order).

        Each :class:`PassGroup` runs its own aligned sweep over its connected
        source set.  Serial (``executor=None`` or non-store sources): chunk
        tuples stream through one at a time, so peak memory is one chunk per
        decoded source plus any structural intermediates.  With an executor
        and store-only group sources, one batched multi-partial job per chunk
        fans out via ``map_jobs`` and states combine in chunk order —
        deterministic and bit-identical to the serial sweep because the
        combine is exact.

        Under a non-default ``backend``, each group that *lowers*
        (:func:`repro.engine.compile.lower_terms` — all-leaf-source terms
        only) runs its chunk steps through one compiled fused-pass kernel,
        fetched once per group from the signature-keyed cache; groups that do
        not lower, and backends that decline, interpret exactly as the
        default path.  ``run_stats`` accumulates the per-group mode counts
        and JIT compile seconds reported via :attr:`last_execution`.

        ``prefetch`` passes through to the serial path's aligned iterator
        (:func:`repro.streaming.sources.aligned_chunks`): store sources read
        ahead through the pipelined prefetcher, and the time this sweep still
        spends *blocked* waiting on chunks accumulates into
        ``run_stats["io_seconds"]`` — with readahead working, that approaches
        zero even though the same records were read.
        """
        extra_by_term = dict(zip(pass_.terms, extras))
        state_by_term: dict = {}
        for group in pass_.groups:
            group_extras = tuple(extra_by_term[term] for term in group.terms)
            served = self._serve_group_from_partials(group, group_extras)
            if served is not None:
                state_by_term.update(served)
                run_stats["incremental_groups"] += 1
                continue
            source_items = [(slot, self.sources[src_index])
                            for slot, src_index in zip(group.source_slots,
                                                       group.source_indices)]
            lowering = None
            if backend != DEFAULT_BACKEND:
                lowering = plan_compile.lower_terms(
                    self._program, group.terms, group.source_slots
                )
            pooled = executor is not None and all(
                isinstance(source, STORE_TYPES) for _, source in source_items
            )
            if pooled:
                # resolve the kernel parent-side from the stores' settings so
                # the group's mode is known (and, for thread pools, the kernel
                # is already warm); process workers compile their own copy via
                # the same per-process cache, once per plan signature
                job_backend = DEFAULT_BACKEND
                if lowering is not None:
                    signature = plan_compile.signature_for(
                        lowering, source_items[0][1].settings
                    )
                    if signature is not None:
                        kernel, seconds = plan_compile.get_pass_kernel(
                            backend, signature
                        )
                        run_stats["compile_seconds"] += seconds
                        if kernel is not None:
                            job_backend = backend
                run_stats["compiled_groups" if job_backend != DEFAULT_BACKEND
                          else "interpreted_groups"] += 1
                paths = tuple((slot, str(source.path))
                              for slot, source in source_items)
                n_chunks = source_items[0][1].n_chunks
                jobs = [(self._program, paths, group.terms, group_extras,
                         index, job_backend)
                        for index in range(n_chunks)]
                per_chunk = executor.map_jobs(_plan_pass_job, jobs)
                collected = [list(states) for states in zip(*per_chunk)]
                if not collected:
                    collected = [[] for _ in group.terms]
            else:
                collected = [[] for _ in group.terms]
                sources = tuple(source for _, source in source_items)
                slots = tuple(slot for slot, _ in source_items)
                kernel = None
                kernel_resolved = False
                iterator = aligned_chunks(sources, prefetch=prefetch)
                sentinel = object()
                try:
                    while True:
                        fetch_start = time.perf_counter()
                        chunks = next(iterator, sentinel)
                        run_stats["io_seconds"] += time.perf_counter() - fetch_start
                        if chunks is sentinel:
                            break
                        if lowering is not None and not kernel_resolved:
                            kernel_resolved = True
                            signature = plan_compile.signature_for(
                                lowering, chunks[0].settings
                            )
                            if signature is not None:
                                kernel, seconds = plan_compile.get_pass_kernel(
                                    backend, signature
                                )
                                run_stats["compile_seconds"] += seconds
                        states = None
                        if kernel is not None:
                            try:
                                fault = faults.active_plan()
                                if fault is not None:
                                    fault.check_compiled_kernel()
                                states = plan_compile.run_compiled_step(
                                    kernel, lowering, chunks, group_extras
                                )
                            except Exception as exc:
                                # degrade, don't fail: the decoded chunks are
                                # untouched, so the interpreted path below
                                # resumes this chunk and finishes the group
                                # bit-exactly
                                kernel = None
                                run_stats["runtime_fallbacks"] += 1
                                run_stats["fallback_reason"] = (
                                    f"compiled {backend} kernel failed at "
                                    f"runtime ({exc}); interpreting the rest "
                                    "of this group"
                                )
                        if states is None:
                            values = dict(zip(slots, chunks))
                            chunks = None  # the step owns the chunks now
                            states = _evaluate_chunk_terms(self._program, values,
                                                           group.terms,
                                                           group_extras)
                            values = None  # drop coefficients before the next decode
                        else:
                            chunks = None
                        for bucket, state in zip(collected, states):
                            bucket.append(state)
                finally:
                    # closing the aligned iterator shuts any prefetch pools
                    # down promptly, even when a fold error aborts the sweep
                    iterator.close()
                run_stats["compiled_groups" if kernel is not None
                          else "interpreted_groups"] += 1
            for term, bucket in zip(group.terms, collected):
                combined = folds.combine_all(bucket)
                if combined is None:
                    raise ValueError("cannot reduce an empty chunk stream")
                state_by_term[term] = combined
        return [state_by_term[term] for term in pass_.terms]

    def execute(self, *, executor=None, backend=None, prefetch=None):
        """Run every pass and finalize the requested scalars.

        Returns a dict keyed like the request, a list for a sequence request,
        or the bare scalar for a single-expression request.

        ``prefetch`` controls the pipelined chunk readahead on serial sweeps
        (``docs/performance.md``): ``None`` auto-enables it, ``0`` keeps the
        strictly serial read→decode loop, a positive integer sets the
        in-flight span window.  Results are bit-identical either way.
        :attr:`last_execution` reports the resolved ``prefetch_depth`` and
        ``io_seconds`` — the wall time sweeps spent blocked waiting on chunk
        fetches.

        ``backend`` selects the kernel backend executing the fused chunk
        steps (registry names — see ``repro backends``): the default
        ``reference`` path is bit-exact and identical to previous releases;
        fast backends (``gemm``, ``numba``) run lowered groups through one
        compiled kernel per pass signature within the backend's
        ``fused_fold_tolerance``, falling back per group to the interpreter
        when lowering is impossible and falling back entirely to
        ``reference`` when the backend is unavailable.  When omitted, the
        plan's :attr:`default_backend` (then the sources' settings consensus,
        then ``reference``) applies; unknown names raise
        :class:`repro.codecs.CodecError`.  :attr:`last_execution` records
        what actually ran.
        """
        self._validate_sources()
        from ..streaming.prefetch import resolve_depth

        requested = backend if backend is not None else self.default_backend
        resolved, fallback = plan_compile.resolve_backend(requested, self.sources)
        run_stats = {
            "backend": resolved,
            "requested_backend": requested,
            "fallback_reason": fallback,
            "compiled_groups": 0,
            "interpreted_groups": 0,
            "incremental_groups": 0,
            "runtime_fallbacks": 0,
            "compile_seconds": 0.0,
            "io_seconds": 0.0,
            "prefetch_depth": resolve_depth(prefetch),
        }
        states: dict = {}
        means: dict[int, float] = {}
        for pass_ in self.passes:
            extras = self._extras(pass_.terms, means)
            for term, state in zip(pass_.terms,
                                   self._run_pass(pass_, extras, executor,
                                                  resolved, run_stats,
                                                  prefetch)):
                states[term] = state
            if pass_.index == 1 and self.n_passes == 2:
                for name, slots in self.passes[1].terms:
                    if folds.FOLD_SPECS[name].centered:
                        for slot in slots:
                            if slot not in means:
                                means[slot] = folds.dc_grand_mean(
                                    states[("dc", (slot,))]
                                )
        self.last_execution = run_stats
        results = {key: self._finalize_output(spec, states)
                   for key, spec in self._outputs.items()}
        if self._shape == "single":
            return next(iter(results.values()))
        if self._shape == "sequence":
            return list(results.values())
        return results

    def _finalize_output(self, spec: tuple, states: Mapping) -> float:
        """Turn accumulated term states into one requested scalar."""
        op, slots, options = spec
        if op == "mean":
            return folds.finalize_mean(states[("dc", slots)], **options)
        if op == "l2_norm":
            return folds.finalize_l2_norm(states[("square", slots)])
        if op == "dot":
            return folds.finalize_dot(states[("product", slots)])
        if op == "euclidean_distance":
            return folds.finalize_euclidean_distance(states[("diff_square", slots)])
        if op == "variance":
            return folds.finalize_variance(states[("centered_square", slots)])
        if op == "standard_deviation":
            return float(math.sqrt(
                folds.finalize_variance(states[("centered_square", slots)])
            ))
        if op == "covariance":
            return folds.finalize_covariance(states[("centered_product", slots)])
        if op == "cosine_similarity":
            product = states[("product", slots)]
            merged = folds.FoldState(
                sums={
                    "product": product.sums["product"],
                    "square_a": states[("square", (slots[0],))].sums["square"],
                    "square_b": states[("square", (slots[1],))].sums["square"],
                },
                n_blocks=product.n_blocks,
                n_elements=product.n_elements,
                n_padded_elements=product.n_padded_elements,
            )
            return folds.finalize_cosine_similarity(merged)
        raise ValueError(f"unknown reduction {op!r}")  # pragma: no cover


# ------------------------------------------------------------------ compilation
#: Decomposition of each reduction into (pass number, fold name, operand picker);
#: the picker maps the reduction's operand slots to the term's operand slots.
_TERM_RECIPES: dict[str, tuple] = {
    "mean": ((1, "dc", lambda s: s),),
    "l2_norm": ((1, "square", lambda s: s),),
    "dot": ((1, "product", lambda s: s),),
    "euclidean_distance": ((1, "diff_square", lambda s: s),),
    "cosine_similarity": (
        (1, "product", lambda s: s),
        (1, "square", lambda s: (s[0],)),
        (1, "square", lambda s: (s[1],)),
    ),
    "variance": (
        (1, "dc", lambda s: s),
        (2, "centered_square", lambda s: s),
    ),
    "standard_deviation": (
        (1, "dc", lambda s: s),
        (2, "centered_square", lambda s: s),
    ),
    "covariance": (
        (1, "dc", lambda s: (s[0],)),
        (1, "dc", lambda s: (s[1],)),
        (2, "centered_product", lambda s: s),
    ),
}


def _normalize_request(request) -> tuple[dict, str]:
    """Coerce the request into an ordered ``key -> Reduction`` mapping + shape."""
    if isinstance(request, Expr):
        return {"result": request}, "single"
    if isinstance(request, Mapping):
        return dict(request), "mapping"
    if isinstance(request, (list, tuple)):
        return {index: expression for index, expression in enumerate(request)}, \
            "sequence"
    raise TypeError(
        f"plan() takes an expression, a mapping or a sequence of expressions, "
        f"got {type(request).__name__}"
    )


def plan(request, *, backend: str | None = None) -> Plan:
    """Compile reduction expressions into a fused, introspectable :class:`Plan`.

    ``request`` may be a single :class:`~repro.engine.expr.Reduction`, a
    mapping of names to reductions, or a sequence of reductions;
    :meth:`Plan.execute` returns results in the matching shape.  ``backend``
    sets the plan's default kernel backend (see :meth:`Plan.execute`; unknown
    names raise :class:`repro.codecs.CodecError` here, at planning time).
    Raises ``TypeError`` for array-valued expressions (materialise those with
    :mod:`repro.streaming.ops`) and ``ValueError`` for an empty request.
    """
    if backend is not None:
        from ..kernels import get_backend_class
        get_backend_class(str(backend).lower())
    requested, shape = _normalize_request(request)
    if not requested:
        raise ValueError("cannot plan an empty set of expressions")

    program: list[tuple] = []
    sources: list = []
    slot_by_key: dict = {}
    source_slot_by_id: dict[int, int] = {}

    def intern(node: ArrayExpr) -> int:
        """Intern one array node (and its operands) into the chunk program."""
        key = node.key
        if key in slot_by_key:
            return slot_by_key[key]
        if isinstance(node, Source):
            source_index = source_slot_by_id.get(id(node.wrapped))
            if source_index is None:
                source_index = len(sources)
                sources.append(node.wrapped)
                source_slot_by_id[id(node.wrapped)] = source_index
            entry: tuple = ("source", source_index)
        else:
            operand_slots = tuple(intern(operand) for operand in node.operands)
            if node.kind == "scale":
                entry = ("scale", operand_slots[0], node.factor)
            elif node.kind == "negate":
                entry = ("negate", operand_slots[0])
            else:
                entry = (node.kind,) + operand_slots
        program.append(entry)
        slot = len(program) - 1
        slot_by_key[key] = slot
        return slot

    pass_terms: dict[int, dict] = {1: {}, 2: {}}
    outputs: dict = {}
    for key, expression in requested.items():
        if not isinstance(expression, Reduction):
            hint = (" (array-valued expressions are materialised by "
                    "repro.streaming.ops, not planned)") \
                if isinstance(expression, ArrayExpr) else ""
            raise TypeError(
                f"plan() fuses scalar reductions; output {key!r} is "
                f"{type(expression).__name__}{hint}"
            )
        recipe = _TERM_RECIPES.get(expression.op)
        if recipe is None:
            raise ValueError(
                f"unknown reduction {expression.op!r}; valid reductions: "
                f"{sorted(_TERM_RECIPES)}"
            )
        operand_slots = tuple(intern(operand) for operand in expression.operands)
        for pass_index, fold_name, pick in recipe:
            term = (fold_name, pick(operand_slots))
            pass_terms[pass_index].setdefault(term, None)
        outputs[key] = (expression.op, operand_slots, dict(expression.options))

    frozen_program = tuple(program)
    passes: list[PlanPass] = []
    for pass_index in (1, 2):
        terms = tuple(pass_terms[pass_index])
        if not terms:
            continue
        passes.append(PlanPass(len(passes) + 1, terms,
                               _group_terms(frozen_program, terms)))

    return Plan(outputs, frozen_program, sources, passes, shape,
                default_backend=backend)


def _group_terms(program: tuple, terms: tuple) -> tuple:
    """Partition a pass's terms into connected components over their sources.

    Terms sharing any source must fold from one aligned sweep (the shared
    chunk is decoded once for all of them); terms over disjoint sources sweep
    independently, so unrelated reductions fuse even when their sources have
    different shapes or chunkings.  Groups and their terms keep first-seen
    order, so execution stays deterministic.
    """
    term_sources = {
        term: tuple(sorted(
            slot for slot in _needed_slots(program, (term,))
            if program[slot][0] == "source"
        ))
        for term in terms
    }
    parent: dict[int, int] = {}

    def find(slot: int) -> int:
        """Union-find root with path compression."""
        root = parent.setdefault(slot, slot)
        while root != parent[root]:
            root = parent[root]
        while parent[slot] != root:
            parent[slot], slot = root, parent[slot]
        return root

    for slots in term_sources.values():
        first = find(slots[0])
        for slot in slots[1:]:
            parent[find(slot)] = first

    grouped: dict[int, list] = {}
    for term in terms:
        grouped.setdefault(find(term_sources[term][0]), []).append(term)
    groups = []
    for members in grouped.values():
        source_slots = tuple(sorted(
            {slot for term in members for slot in term_sources[term]}
        ))
        source_indices = tuple(program[slot][1] for slot in source_slots)
        groups.append(PassGroup(tuple(members), source_slots, source_indices))
    return tuple(groups)


def evaluate(request, *, executor=None, backend=None, prefetch=None):
    """Compile and run in one call: ``plan(request).execute(...)``.

    ``backend`` and ``prefetch`` pass straight through to
    :meth:`Plan.execute` — ``None`` keeps the bit-exact ``reference`` default
    (or the sources' settings consensus) and the auto readahead depth.
    """
    return plan(request).execute(executor=executor, backend=backend,
                                 prefetch=prefetch)
