"""Stable JSON wire form for the expression graph (the serving protocol's core).

An expression built from :mod:`repro.engine.expr` nodes serializes to a plain
JSON-compatible dict — every node becomes ``{"kind": ..., ...}`` — so a client
can describe an arbitrary reduction DAG to a remote evaluator without shipping
code.  Sources serialize as **catalog names** (strings): a client writes
``expr.mean(expr.source("temps"))`` and the server resolves ``"temps"`` to an
open :class:`repro.streaming.CompressedStore` at deserialization time.

Wire layout (version 1, append-only — new node kinds may be added, existing
shapes never change)::

    {"kind": "source", "name": "<catalog name>"}
    {"kind": "add" | "subtract" | "negate", "operands": [<array node>, ...]}
    {"kind": "scale", "operands": [<array node>], "factor": <float>}
    {"kind": "<reduction>", "operands": [<array node>, ...]}         # 8 ops
    {"kind": "mean", "operands": [...], "options": {"padded": false}}

Deserialization interns sources **by name**, so two occurrences of the same
catalog name inside one request become one :class:`~repro.engine.expr.Source`
node — and with a shared ``resolve`` callable (the server's catalog lookup),
one node across *many* requests, which is exactly what lets the planner
deduplicate fold partials between concurrent users (``docs/serving.md``).

Malformed wire objects raise :class:`WireError` (a ``ValueError``) with the
offending fragment named, never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .expr import (
    ArrayExpr,
    Expr,
    Reduction,
    Source,
    Structural,
    REDUCTION_OPS,
)

__all__ = ["WIRE_VERSION", "WireError", "to_wire", "from_wire",
           "request_to_wire", "request_from_wire"]

#: Version tag for the wire layout; embedded in serving handshakes, not in
#: every node (the layout is append-only within a version).
WIRE_VERSION = 1

#: Structural node kinds and their operand arity.
_STRUCTURAL_ARITY = {"add": 2, "subtract": 2, "scale": 1, "negate": 1}


class WireError(ValueError):
    """A wire object does not encode a valid expression."""


# ------------------------------------------------------------------ serialization
def to_wire(expression: Expr, *, name_of: Callable[[Any], str] | None = None) -> dict:
    """Serialize an expression node (and its whole DAG) to the JSON wire form.

    Sources must wrap catalog-name strings — the natural client-side shape,
    ``expr.source("temps")`` — unless ``name_of`` is given to map arbitrary
    wrapped objects (e.g. open stores) back to their catalog names.
    """
    if isinstance(expression, Source):
        wrapped = expression.wrapped
        if name_of is not None:
            name = name_of(wrapped)
        elif isinstance(wrapped, str):
            name = wrapped
        else:
            raise WireError(
                f"source wraps {type(wrapped).__name__}, not a catalog name; "
                "build wire expressions over expr.source('<name>') strings or "
                "pass name_of= to map objects to names"
            )
        if not isinstance(name, str) or not name:
            raise WireError(f"catalog name must be a non-empty string, got {name!r}")
        return {"kind": "source", "name": name}
    if isinstance(expression, Structural):
        node: dict = {
            "kind": expression.kind,
            "operands": [to_wire(operand, name_of=name_of)
                         for operand in expression.operands],
        }
        if expression.kind == "scale":
            node["factor"] = float(expression.factor)
        return node
    if isinstance(expression, Reduction):
        node = {
            "kind": expression.op,
            "operands": [to_wire(operand, name_of=name_of)
                         for operand in expression.operands],
        }
        if expression.options:
            node["options"] = dict(expression.options)
        return node
    raise WireError(
        f"cannot serialize {type(expression).__name__}; expected a source, "
        "structural or reduction expression node"
    )


def request_to_wire(outputs: Mapping[str, Expr], *,
                    name_of: Callable[[Any], str] | None = None) -> dict:
    """Serialize a named mapping of reduction expressions (one request body)."""
    if not outputs:
        raise WireError("a request needs at least one named output expression")
    wired = {}
    for key, expression in outputs.items():
        if not isinstance(key, str) or not key:
            raise WireError(f"output names must be non-empty strings, got {key!r}")
        wired[key] = to_wire(expression, name_of=name_of)
    return wired


# ------------------------------------------------------------------ deserialization
def _expect_node(obj: Any) -> dict:
    """A wire node must be a dict with a string ``kind``."""
    if not isinstance(obj, Mapping):
        raise WireError(f"wire node must be an object, got {type(obj).__name__}: {obj!r}")
    kind = obj.get("kind")
    if not isinstance(kind, str):
        raise WireError(f"wire node is missing a string 'kind': {dict(obj)!r}")
    return dict(obj)


def _operands(node: dict, arity: int) -> list:
    """Validate a node's operand list length against its kind's arity."""
    operands = node.get("operands")
    if not isinstance(operands, (list, tuple)) or len(operands) != arity:
        raise WireError(
            f"{node['kind']!r} takes {arity} operand(s), got {operands!r}"
        )
    return list(operands)


def from_wire(obj: Any, *, resolve: Callable[[str], Any] | None = None,
              _sources: dict | None = None) -> Expr:
    """Deserialize a wire object back into an expression node.

    ``resolve`` maps catalog names to concrete sources (the server passes its
    catalog's ``get``); without it, sources keep wrapping the bare name string,
    which round-trips through :func:`to_wire` unchanged.  Source nodes are
    interned by name, so one name is one node throughout the deserialized DAG.
    """
    node = _expect_node(obj)
    kind = node["kind"]
    sources = _sources if _sources is not None else {}

    if kind == "source":
        name = node.get("name")
        if not isinstance(name, str) or not name:
            raise WireError(f"source node needs a non-empty string 'name': {node!r}")
        if name not in sources:
            sources[name] = Source(resolve(name) if resolve is not None else name)
        return sources[name]

    def array_operand(operand: Any) -> ArrayExpr:
        child = from_wire(operand, resolve=resolve, _sources=sources)
        if not isinstance(child, ArrayExpr):
            raise WireError(
                f"{kind!r} operands must be array-valued nodes, got a "
                f"{type(child).__name__} ({operand!r})"
            )
        return child

    if kind in _STRUCTURAL_ARITY:
        operands = tuple(array_operand(operand)
                         for operand in _operands(node, _STRUCTURAL_ARITY[kind]))
        if kind == "scale":
            factor = node.get("factor")
            if not isinstance(factor, (int, float)) or isinstance(factor, bool):
                raise WireError(f"scale node needs a numeric 'factor': {node!r}")
            return Structural("scale", operands, factor=float(factor))
        return Structural(kind, operands)

    if kind in REDUCTION_OPS:
        operands = tuple(array_operand(operand)
                         for operand in _operands(node, REDUCTION_OPS[kind]))
        raw_options = node.get("options", {})
        if not isinstance(raw_options, Mapping):
            raise WireError(f"reduction 'options' must be an object: {node!r}")
        options = tuple(sorted((str(key), value)
                               for key, value in raw_options.items()))
        if kind == "mean" and not options:
            # expr.mean always records its padded default; mirror it so a
            # wire round trip of expr.mean(...) compares structurally equal
            options = (("padded", True),)
        return Reduction(kind, operands, options=options)

    valid = sorted(_STRUCTURAL_ARITY) + sorted(REDUCTION_OPS) + ["source"]
    raise WireError(f"unknown wire node kind {kind!r}; valid kinds: {valid}")


def request_from_wire(obj: Any, *,
                      resolve: Callable[[str], Any] | None = None) -> dict:
    """Deserialize one request body (name → wire expression) into expressions.

    All outputs share one source-interning table, so every occurrence of a
    catalog name across the whole request maps to a single source node — the
    precondition for the planner's partial dedup across outputs.
    """
    if not isinstance(obj, Mapping) or not obj:
        raise WireError(
            f"a request body must be a non-empty object of named expressions, "
            f"got {obj!r}"
        )
    sources: dict = {}
    outputs = {}
    for key, wire_node in obj.items():
        if not isinstance(key, str) or not key:
            raise WireError(f"output names must be non-empty strings, got {key!r}")
        outputs[key] = from_wire(wire_node, resolve=resolve, _sources=sources)
    return outputs
