"""Lazy expression/plan engine: fuse many compressed-domain ops into one sweep.

The paper's headline capability is operating directly on compressed arrays;
:mod:`repro.streaming.ops` extended every Table I reduction out-of-core, but
each call sweeps the whole :class:`repro.streaming.CompressedStore` on its own
— an analysis asking for mean, variance, norm and cosine pays four-plus
decode passes where one would do.  This package turns those calls into a lazy
expression graph plus a fusing planner:

* :mod:`repro.engine.expr` — build expressions: ``expr.mean(x)``,
  ``expr.covariance(x, y)``, structural ``expr.add``/``expr.scale``/… that
  feed reductions without materialising intermediate stores.
* :mod:`repro.engine.plan` — compile any set of reductions into a
  :class:`Plan` that deduplicates shared fold partials (dot and cosine share
  the product sum; mean, variance and covariance share the DC sum), groups
  them by source so each chunk is decoded **once per pass**, and schedules
  two-pass statistics as exactly two fused sweeps.
* :mod:`repro.engine.wire` — a stable JSON wire form for the expression graph
  (sources become catalog names), which is how the serving layer
  (:mod:`repro.serving`) ships reduction requests over the network.

Results are bit-identical to the sequential per-op calls (same partials, same
``fsum`` order); an ``executor`` fans batched multi-partial chunk jobs across
threads or processes.  See ``docs/engine.md`` for the API, the planning rules,
the pass-count guarantees and the fusion matrix.

Quickstart::

    from repro.engine import evaluate, expr, plan

    p = plan({"mean": expr.mean(store_a), "dot": expr.dot(store_a, store_b)})
    assert p.n_passes == 1            # both folds share one sweep
    results = p.execute()             # {'mean': ..., 'dot': ...}
    single = evaluate(expr.l2_norm(store_a))   # bare scalar
"""

from . import expr, wire
from .plan import Plan, PlanPass, PassGroup, evaluate, plan

__all__ = ["expr", "wire", "plan", "evaluate", "Plan", "PlanPass", "PassGroup"]
