"""Constant-gradient test arrays (§IV-E).

For the ZFP timing comparison the paper compresses "hypercubic arrays with elements
ranging from 0 to 1 arranged in a constant gradient from the lowest indices to the
highest indices", i.e. the array ``X`` shaped ``s`` with

    ``X_x = Σ(x) / Σ(s - 1)``

(each element is the sum of its zero-based index coordinates divided by the largest
possible such sum).  :func:`gradient_array` builds exactly that array for any shape.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["gradient_array"]


def gradient_array(shape: Sequence[int], dtype=np.float64) -> np.ndarray:
    """The constant-gradient array of §IV-E: index-coordinate sum normalised to [0, 1].

    Parameters
    ----------
    shape:
        Array extents.  A shape of all-ones yields an all-zero array (the
        denominator would be zero; the paper's arrays are always larger).
    dtype:
        Output floating dtype.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 1 for s in shape):
        raise ValueError(f"shape extents must be positive, got {shape}")
    denominator = float(sum(s - 1 for s in shape))
    grids = np.meshgrid(*[np.arange(extent, dtype=np.float64) for extent in shape], indexing="ij")
    total = np.zeros(shape, dtype=np.float64)
    for grid in grids:
        total += grid
    if denominator == 0.0:
        return total.astype(dtype)
    return (total / denominator).astype(dtype)
