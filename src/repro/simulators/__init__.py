"""Data-generating substrates standing in for the paper's external datasets.

The paper evaluates on three external data sources plus a synthetic timing workload;
none of them can be redistributed or re-run here, so each is replaced by a generator
that produces data with the properties the corresponding experiment actually relies
on (see DESIGN.md §1 for the substitution rationale):

* :mod:`repro.simulators.shallow_water` — a 2-D shallow-water-equation solver with
  double-gyre wind forcing, seamount topography and emulated working precision
  (stands in for ShallowWaters.jl, §V-A / Fig 4).
* :mod:`repro.simulators.mri` — synthetic multi-channel brain-MRI-like volumes with
  the LGG dataset's shape distribution and intensity statistics (§V-B / Fig 5).
* :mod:`repro.simulators.fission` — a synthetic plutonium-fission density time
  series on a 40×40×66 grid with a scission event between time steps 690 and 692
  and non-topological noise events (§V-C / Fig 6).
* :mod:`repro.simulators.gradients` — the constant-gradient arrays used for the
  ZFP timing comparison (§IV-E / Fig 3).
"""

from .fission import FissionSeries, generate_fission_series
from .gradients import gradient_array
from .mri import MRIVolume, generate_mri_dataset, generate_mri_volume
from .shallow_water import ShallowWaterConfig, ShallowWaterResult, ShallowWaterSimulator

__all__ = [
    "ShallowWaterConfig",
    "ShallowWaterSimulator",
    "ShallowWaterResult",
    "MRIVolume",
    "generate_mri_volume",
    "generate_mri_dataset",
    "FissionSeries",
    "generate_fission_series",
    "gradient_array",
]
