"""A 2-D shallow-water-equation solver with emulated working precision (§V-A).

The paper's precision study runs ShallowWaters.jl — a double-gyre, wind-forced,
seamount-topography shallow-water simulation — once at FP16 and once at FP32, and
asks whether the compressed-space difference operation can localise where the two
runs diverge.  This module provides the equivalent substrate: a self-contained
finite-difference solver for the rotating shallow-water equations

    ∂u/∂t =  f·v − g ∂η/∂x − r·u + Fx(y) / (ρ·H)
    ∂v/∂t = −f·u − g ∂η/∂y − r·v
    ∂η/∂t = −∂(u·h)/∂x − ∂(v·h)/∂y            with  h = H(x, y) + η

on a closed (non-periodic) rectangular domain, with

* **double-gyre wind forcing**  Fx(y) = −F₀·cos(2π·y/Ly)  (two counter-rotating
  gyres, the classic Stommel/Munk configuration ShallowWaters.jl defaults to),
* **seamount topography**  H(x, y) = H₀ − h_m·exp(−((x−x₀)² + (y−y₀)²)/(2σ²)),
* linear bottom friction ``r`` and a constant Coriolis parameter ``f``.

Every state update is passed through a :class:`repro.numerics.PrecisionEmulator`, so
``run(precision="float16")`` and ``run(precision="float32")`` produce two genuinely
diverging trajectories of the same physical system — exactly the input the Fig 4
experiment needs.  The solver uses forward-Euler in time with an automatically chosen
CFL-limited step and reflective (no-normal-flow) walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..numerics import FloatFormat, PrecisionEmulator, resolve_format

__all__ = ["ShallowWaterConfig", "ShallowWaterResult", "ShallowWaterSimulator"]


@dataclass(frozen=True)
class ShallowWaterConfig:
    """Physical and numerical configuration of the shallow-water run.

    The defaults are scaled-down relative to the paper's 200×400, 500-day run so the
    experiment harness finishes quickly; the grid shape and run length are free
    parameters, and the Fig 4 harness uses a larger grid.
    """

    nx: int = 64  #: grid points in the x (zonal) direction
    ny: int = 128  #: grid points in the y (meridional) direction
    lx: float = 1.0e6  #: domain length in x (metres)
    ly: float = 2.0e6  #: domain length in y (metres)
    gravity: float = 9.81  #: gravitational acceleration (m/s²)
    coriolis: float = 1.0e-4  #: Coriolis parameter f (1/s)
    mean_depth: float = 500.0  #: undisturbed water depth H₀ (metres)
    seamount_height: float = 300.0  #: height of the seamount h_m (metres)
    seamount_sigma_fraction: float = 0.15  #: seamount width as a fraction of min(lx, ly)
    wind_stress: float = 0.1  #: double-gyre wind-stress amplitude F₀ (N/m²)
    density: float = 1000.0  #: water density ρ (kg/m³)
    bottom_friction: float = 1.0e-6  #: linear friction coefficient r (1/s)
    cfl: float = 0.4  #: CFL safety factor for the time step
    initial_perturbation: float = 0.1  #: amplitude of the initial surface bump (metres)
    seed: int = 0  #: seed for the (deterministic) initial perturbation field

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("grid must be at least 4x4")
        if self.mean_depth <= self.seamount_height:
            raise ValueError("seamount must not pierce the surface (mean_depth > seamount_height)")
        if not 0 < self.cfl <= 1:
            raise ValueError("cfl must be in (0, 1]")

    @property
    def dx(self) -> float:
        return self.lx / self.nx

    @property
    def dy(self) -> float:
        return self.ly / self.ny

    def time_step(self) -> float:
        """CFL-limited forward-Euler step based on the gravity-wave speed."""
        wave_speed = np.sqrt(self.gravity * self.mean_depth)
        return self.cfl * min(self.dx, self.dy) / wave_speed


@dataclass
class ShallowWaterResult:
    """Output of a shallow-water run.

    Attributes
    ----------
    config:
        The configuration used.
    precision:
        The emulated working precision of the run.
    times:
        Simulation time (seconds) of each stored snapshot.
    heights:
        Surface elevation snapshots, shape ``(n_snapshots, nx, ny)``.
    u, v:
        Final velocity fields (for diagnostics).
    """

    config: ShallowWaterConfig
    precision: FloatFormat
    times: np.ndarray
    heights: np.ndarray
    u: np.ndarray
    v: np.ndarray

    @property
    def final_height(self) -> np.ndarray:
        """The last stored surface-height snapshot."""
        return self.heights[-1]


class ShallowWaterSimulator:
    """Runs the shallow-water model at a chosen emulated precision."""

    def __init__(self, config: ShallowWaterConfig | None = None):
        self.config = config or ShallowWaterConfig()
        self._depth = self._build_topography()
        self._forcing = self._build_wind_forcing()

    # ------------------------------------------------------------------ setup
    def _build_topography(self) -> np.ndarray:
        """Undisturbed depth field H(x, y) with a Gaussian seamount in the middle."""
        cfg = self.config
        x = (np.arange(cfg.nx) + 0.5) * cfg.dx
        y = (np.arange(cfg.ny) + 0.5) * cfg.dy
        xx, yy = np.meshgrid(x, y, indexing="ij")
        sigma = cfg.seamount_sigma_fraction * min(cfg.lx, cfg.ly)
        mound = cfg.seamount_height * np.exp(
            -(((xx - cfg.lx / 2) ** 2) + ((yy - cfg.ly / 2) ** 2)) / (2 * sigma**2)
        )
        return cfg.mean_depth - mound

    def _build_wind_forcing(self) -> np.ndarray:
        """Double-gyre zonal wind stress Fx(y) = −F₀ cos(2π y / Ly)."""
        cfg = self.config
        y = (np.arange(cfg.ny) + 0.5) * cfg.dy
        profile = -cfg.wind_stress * np.cos(2.0 * np.pi * y / cfg.ly)
        return np.broadcast_to(profile, (cfg.nx, cfg.ny)).copy()

    def _initial_state(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Initial surface elevation (smooth random bumps) and zero velocities."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        eta = rng.standard_normal((cfg.nx, cfg.ny))
        # smooth the white noise into large-scale bumps with a separable box blur
        for _ in range(4):
            eta = (
                eta
                + np.roll(eta, 1, axis=0)
                + np.roll(eta, -1, axis=0)
                + np.roll(eta, 1, axis=1)
                + np.roll(eta, -1, axis=1)
            ) / 5.0
        eta *= cfg.initial_perturbation / max(np.abs(eta).max(), 1e-30)
        u = np.zeros((cfg.nx, cfg.ny))
        v = np.zeros((cfg.nx, cfg.ny))
        return eta, u, v

    # ------------------------------------------------------------------ dynamics
    @staticmethod
    def _ddx(field: np.ndarray, dx: float) -> np.ndarray:
        """Centred x-derivative with one-sided differences at the walls."""
        out = np.empty_like(field)
        out[1:-1, :] = (field[2:, :] - field[:-2, :]) / (2.0 * dx)
        out[0, :] = (field[1, :] - field[0, :]) / dx
        out[-1, :] = (field[-1, :] - field[-2, :]) / dx
        return out

    @staticmethod
    def _ddy(field: np.ndarray, dy: float) -> np.ndarray:
        """Centred y-derivative with one-sided differences at the walls."""
        out = np.empty_like(field)
        out[:, 1:-1] = (field[:, 2:] - field[:, :-2]) / (2.0 * dy)
        out[:, 0] = (field[:, 1] - field[:, 0]) / dy
        out[:, -1] = (field[:, -1] - field[:, -2]) / dy
        return out

    def run(
        self,
        n_steps: int,
        precision: FloatFormat | str = "float64",
        snapshot_every: int | None = None,
    ) -> ShallowWaterResult:
        """Integrate the model for ``n_steps`` at the given emulated precision.

        Parameters
        ----------
        n_steps:
            Number of forward-Euler steps.
        precision:
            Working precision; every updated state array is rounded to this format,
            emulating a run carried out entirely in that precision.
        snapshot_every:
            Store a surface-height snapshot every this many steps (defaults to
            storing only the initial and final states).
        """
        if n_steps < 1:
            raise ValueError("n_steps must be positive")
        cfg = self.config
        fmt = resolve_format(precision)
        emulate = PrecisionEmulator(fmt)
        dt = cfg.time_step()
        eta, u, v = self._initial_state()
        eta, u, v = emulate(eta), emulate(u), emulate(v)

        snapshots = [eta.copy()]
        times = [0.0]
        depth = self._depth
        forcing_accel = self._forcing / (cfg.density * depth)

        for step in range(1, n_steps + 1):
            # forward-backward (Sielecki) scheme: momentum first from the old surface,
            # then continuity from the *updated* velocities — stable for CFL < 1,
            # unlike plain forward-Euler on the full wave system.
            du = (
                cfg.coriolis * v
                - cfg.gravity * self._ddx(eta, cfg.dx)
                - cfg.bottom_friction * u
                + forcing_accel
            )
            dv = (
                -cfg.coriolis * u
                - cfg.gravity * self._ddy(eta, cfg.dy)
                - cfg.bottom_friction * v
            )
            u = emulate(u + dt * du)
            v = emulate(v + dt * dv)

            # reflective walls: no normal flow through the boundary
            u[0, :] = 0.0
            u[-1, :] = 0.0
            v[:, 0] = 0.0
            v[:, -1] = 0.0

            h = depth + eta
            deta = -(self._ddx(u * h, cfg.dx) + self._ddy(v * h, cfg.dy))
            eta = emulate(eta + dt * deta)

            if not np.all(np.isfinite(eta)):
                raise FloatingPointError(
                    f"shallow-water run became non-finite at step {step} "
                    f"(precision {fmt.name}); reduce the time step or wind stress"
                )
            if snapshot_every and step % snapshot_every == 0:
                snapshots.append(eta.copy())
                times.append(step * dt)

        if not snapshot_every or (n_steps % snapshot_every) != 0:
            snapshots.append(eta.copy())
            times.append(n_steps * dt)

        return ShallowWaterResult(
            config=cfg,
            precision=fmt,
            times=np.asarray(times),
            heights=np.stack(snapshots),
            u=u,
            v=v,
        )
