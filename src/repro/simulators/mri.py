"""Synthetic brain-MRI-like volumes matching the LGG segmentation dataset's statistics.

The Fig 5 experiment (§V-B) characterises the error of compressed-space scalar
functions as a function of compression settings on the FLAIR channel of the LGG
segmentation dataset: 110 volumes whose first dimension (the axial/up direction)
varies between 20 and 88 slices (mean 35.72) while the other two dimensions are
256×256, normalised to [0, 1] with a dataset mean of 0.0870 and standard deviation
of 0.1238.

The actual clinical images cannot be shipped, and nothing in the experiment depends
on their diagnostic content — what matters is spatially correlated, multi-scale,
non-negative 3-D data with asymmetric resolution and roughly those first two moments,
so that (a) block shapes interact with the short first dimension the way the paper
discusses, and (b) relative errors are reported against a comparable scale.  The
generator here builds such volumes: an ellipsoidal "head" region containing smooth
multi-scale structure (sums of random 3-D Gaussian blobs mimicking tissue contrast
and lesions), a small amount of acquisition-like noise, and a dark background.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MRIVolume", "generate_mri_volume", "generate_mri_dataset", "LGG_FLAIR_MEAN", "LGG_FLAIR_STD"]

#: Dataset-wide FLAIR statistics the paper reports (used as relative-error scales).
LGG_FLAIR_MEAN = 0.0870
LGG_FLAIR_STD = 0.1238

#: Channel names of the LGG dataset; only FLAIR is used by the paper's experiment.
CHANNELS = ("pre-contrast", "flair", "post-contrast")


@dataclass
class MRIVolume:
    """One synthetic MRI volume.

    Attributes
    ----------
    data:
        3-D float64 array in [0, 1], shape ``(depth, height, width)``.
    channel:
        Which channel this volume mimics (always ``"flair"`` for the experiments).
    index:
        Position of the volume within its generated dataset.
    """

    data: np.ndarray
    channel: str = "flair"
    index: int = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


def _ellipsoid_mask(shape: tuple[int, int, int]) -> np.ndarray:
    """Soft ellipsoidal head mask occupying most of the volume."""
    dz, dy, dx = shape
    z = np.linspace(-1.0, 1.0, dz).reshape(-1, 1, 1)
    y = np.linspace(-1.0, 1.0, dy).reshape(1, -1, 1)
    x = np.linspace(-1.0, 1.0, dx).reshape(1, 1, -1)
    radius = (z / 0.95) ** 2 + (y / 0.8) ** 2 + (x / 0.7) ** 2
    # smooth falloff near the boundary rather than a hard cut
    return np.clip(1.2 - radius, 0.0, 1.0) ** 0.5


def _gaussian_blob(
    shape: tuple[int, int, int],
    center: np.ndarray,
    widths: np.ndarray,
) -> np.ndarray:
    """Anisotropic Gaussian blob with ``center`` and ``widths`` in voxel units."""
    dz, dy, dx = shape
    z = np.arange(dz).reshape(-1, 1, 1)
    y = np.arange(dy).reshape(1, -1, 1)
    x = np.arange(dx).reshape(1, 1, -1)
    return np.exp(
        -(
            ((z - center[0]) / widths[0]) ** 2
            + ((y - center[1]) / widths[1]) ** 2
            + ((x - center[2]) / widths[2]) ** 2
        )
    )


def generate_mri_volume(
    rng: np.random.Generator,
    depth: int,
    plane_size: int = 256,
    n_structures: int = 24,
    noise_level: float = 0.01,
    index: int = 0,
) -> MRIVolume:
    """Generate one FLAIR-like volume.

    Parameters
    ----------
    rng:
        Source of randomness (pass a seeded generator for reproducibility).
    depth:
        Extent of the first (axial) dimension; the LGG dataset varies this between
        20 and 88.
    plane_size:
        Extent of the in-plane dimensions (256 in the dataset; smaller values are
        useful for fast tests).
    n_structures:
        Number of Gaussian "tissue" blobs superimposed inside the head mask.
    noise_level:
        Standard deviation of the additive acquisition-like noise before clipping.
    index:
        Identifier recorded on the returned volume.
    """
    if depth < 4 or plane_size < 8:
        raise ValueError("volume must be at least 4 x 8 x 8")
    shape = (int(depth), int(plane_size), int(plane_size))
    mask = _ellipsoid_mask(shape)

    tissue = np.zeros(shape)
    for _ in range(int(n_structures)):
        center = np.array(
            [
                rng.uniform(0.15, 0.85) * shape[0],
                rng.uniform(0.2, 0.8) * shape[1],
                rng.uniform(0.2, 0.8) * shape[2],
            ]
        )
        widths = np.array(
            [
                rng.uniform(0.08, 0.35) * shape[0],
                rng.uniform(0.05, 0.25) * shape[1],
                rng.uniform(0.05, 0.25) * shape[2],
            ]
        )
        amplitude = rng.uniform(0.1, 1.0)
        tissue += amplitude * _gaussian_blob(shape, center, widths)

    tissue /= max(tissue.max(), 1e-12)
    # a couple of small bright lesion-like blobs (what FLAIR highlights)
    lesions = np.zeros(shape)
    for _ in range(rng.integers(1, 4)):
        center = np.array(
            [
                rng.uniform(0.3, 0.7) * shape[0],
                rng.uniform(0.3, 0.7) * shape[1],
                rng.uniform(0.3, 0.7) * shape[2],
            ]
        )
        widths = np.array(
            [
                rng.uniform(0.03, 0.08) * shape[0],
                rng.uniform(0.02, 0.06) * shape[1],
                rng.uniform(0.02, 0.06) * shape[2],
            ]
        )
        lesions += rng.uniform(0.5, 1.0) * _gaussian_blob(shape, center, widths)

    volume = mask * (0.35 * tissue + 0.65 * lesions)
    volume += noise_level * rng.standard_normal(shape) * (mask > 0)
    volume = np.clip(volume, 0.0, None)

    # normalise to [0, 1] and pull the mean toward the LGG FLAIR statistics via a
    # gamma adjustment (monotone, keeps the range, brightens the interior)
    volume /= max(volume.max(), 1e-12)
    current_mean = float(volume.mean())
    if 0.0 < current_mean < 1.0 and current_mean < LGG_FLAIR_MEAN:
        gamma = np.log(LGG_FLAIR_MEAN) / np.log(current_mean)
        gamma = float(np.clip(gamma, 0.25, 1.0))
        volume = volume**gamma
    volume = np.clip(volume, 0.0, 1.0)
    return MRIVolume(data=volume, channel="flair", index=index)


def generate_mri_dataset(
    n_volumes: int = 8,
    plane_size: int = 256,
    seed: int = 2023,
    depth_range: tuple[int, int] = (20, 88),
) -> list[MRIVolume]:
    """Generate a list of FLAIR-like volumes with LGG-like varying depths.

    The depth of each volume is drawn between ``depth_range`` bounds with a bias
    toward the low end (the dataset's mean depth is 35.72 out of a 20–88 range).
    """
    if n_volumes < 1:
        raise ValueError("n_volumes must be positive")
    rng = np.random.default_rng(seed)
    volumes: list[MRIVolume] = []
    low, high = depth_range
    for index in range(n_volumes):
        # Beta(2, 5) biases the draw toward shallow stacks, matching the mean ≈ 36.
        fraction = rng.beta(2.0, 5.0)
        depth = int(round(low + fraction * (high - low)))
        volumes.append(
            generate_mri_volume(rng, depth=depth, plane_size=plane_size, index=index)
        )
    return volumes
