"""Synthetic plutonium-fission density time series with a scission event (§V-C).

The paper's third study detects the nuclear scission point — the time interval in
which the nucleus splits — from compressed representations of nuclear-DFT neutron
densities: 15 snapshots on a 40×40×66 grid at time steps
[665, 670, 675, 680, 685, 686, 687, 688, 689, 690, 692, 693, 694, 695, 699], with the
scission known (from the literature) to happen between steps 690 and 692.  The paper
observes that the compressed-space L2 difference between adjacent steps shows the
scission peak *plus misleading noise peaks* (between 685→686 and 695→699), while the
order-p Wasserstein distance suppresses the noise peaks as p grows.

The DFT data cannot be redistributed, so this module generates a density series with
exactly the properties that experiment relies on:

* an elongating compound nucleus modelled as two Gaussian fragments joined by a neck
  whose density decreases as elongation grows;
* a **topological** change between steps 690 and 692: the neck ruptures and the
  fragments separate (mass redistributes between the fragments), producing a large
  jump in both L2 and high-order Wasserstein distance;
* **non-topological noise events** at the steps the paper identifies as noise peaks:
  amplitude/width wobbles that change many voxel values (visible to the L2 norm) but
  barely move mass between regions (suppressed by high-order Wasserstein);
* the same negative-log transform the paper applies before compressing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FissionSeries", "generate_fission_series", "FISSION_TIME_STEPS"]

#: The 15 time-step labels of the paper's dataset.
FISSION_TIME_STEPS: tuple[int, ...] = (
    665, 670, 675, 680, 685, 686, 687, 688, 689, 690, 692, 693, 694, 695, 699
)

#: The scission happens between these two adjacent labels (paper §V-C, refs [34]-[36]).
SCISSION_INTERVAL: tuple[int, int] = (690, 692)


@dataclass
class FissionSeries:
    """A generated fission time series.

    Attributes
    ----------
    time_steps:
        The time-step labels, matching the paper's 15 snapshots by default.
    densities:
        Raw (non-negative) neutron densities, shape ``(n_steps, *grid_shape)``.
    log_densities:
        Negative-log-transformed densities (what the paper compresses).
    scission_index:
        Index ``i`` such that the scission occurs between ``time_steps[i]`` and
        ``time_steps[i+1]``.
    noise_indices:
        Indices of adjacent pairs that contain a non-topological "noise" event.
    """

    time_steps: tuple[int, ...]
    densities: np.ndarray
    log_densities: np.ndarray
    scission_index: int
    noise_indices: tuple[int, ...]

    @property
    def n_steps(self) -> int:
        return len(self.time_steps)

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.densities.shape[1:]

    def adjacent_pairs(self) -> list[tuple[int, int]]:
        """Adjacent time-step label pairs, in order."""
        return [
            (self.time_steps[i], self.time_steps[i + 1]) for i in range(self.n_steps - 1)
        ]


def _fragment_density(
    grid: tuple[np.ndarray, np.ndarray, np.ndarray],
    center_z: float,
    amplitude: float,
    widths: tuple[float, float, float],
) -> np.ndarray:
    """One Gaussian fragment centred on the long (z) axis."""
    x, y, z = grid
    return amplitude * np.exp(
        -(
            (x / widths[0]) ** 2
            + (y / widths[1]) ** 2
            + ((z - center_z) / widths[2]) ** 2
        )
    )


def generate_fission_series(
    grid_shape: tuple[int, int, int] = (40, 40, 66),
    time_steps: tuple[int, ...] = FISSION_TIME_STEPS,
    seed: int = 235,
    log_offset: float = 2e-3,
) -> FissionSeries:
    """Generate the synthetic fission density series.

    Parameters
    ----------
    grid_shape:
        Spatial grid; the paper's data lives on 40×40×66.
    time_steps:
        Snapshot labels.  The default reproduces the paper's 15 steps; any strictly
        increasing sequence containing 690 and 692 (or not) is accepted — the
        scission is placed between the last label ≤ 690 and the first label > 690.
    seed:
        Seed for the small stochastic components (sub-percent density ripples).
    log_offset:
        Constant added before the negative-log transform (keeps the log finite).
    """
    if len(grid_shape) != 3:
        raise ValueError("grid_shape must be 3-dimensional")
    steps = tuple(int(t) for t in time_steps)
    if len(steps) < 3 or any(b <= a for a, b in zip(steps, steps[1:])):
        raise ValueError("time_steps must be strictly increasing with at least 3 entries")
    rng = np.random.default_rng(seed)

    nx, ny, nz = grid_shape
    x = np.linspace(-1.0, 1.0, nx).reshape(-1, 1, 1)
    y = np.linspace(-1.0, 1.0, ny).reshape(1, -1, 1)
    z = np.linspace(-1.0, 1.0, nz).reshape(1, 1, -1)
    grid = (x, y, z)

    # scission between the last label <= 690 and the next one
    below = [i for i, t in enumerate(steps) if t <= SCISSION_INTERVAL[0]]
    scission_index = below[-1] if below and below[-1] < len(steps) - 1 else len(steps) - 2

    # noise events: the pairs the paper identifies as misleading peaks — an early one
    # around 685→686 and a late one at the final pair.
    noise_indices = []
    for i, (t0, t1) in enumerate(zip(steps, steps[1:])):
        if t0 == 685 or (t0, t1) == (steps[-2], steps[-1]):
            noise_indices.append(i)

    first, last = steps[0], steps[-1]
    span = max(last - first, 1)
    densities = np.empty((len(steps),) + grid_shape)

    # Noise events switch a small-scale density wobble ON at the *second* step of each
    # noise pair and leave it on afterwards, so exactly one adjacent pair sees the
    # change (the paper's "misleading peak"), without a second artificial peak when
    # the wobble would switch back off.
    noise_onset_steps = {steps[i + 1] for i in noise_indices}

    for index, t in enumerate(steps):
        progress = (t - first) / span  # 0 → 1 over the simulated window
        post_scission = index > scission_index

        # The two nascent fragments drift apart slowly as the nucleus elongates, then
        # jump apart at scission when the neck ruptures.
        separation = 0.30 + 0.06 * progress + (0.14 if post_scission else 0.0)
        amp_left = 1.0
        amp_right = 0.82  # asymmetric fission: unequal fragments
        # after scission the fragments relax toward compact (more spherical) shapes,
        # so density retreats from the outer tail regions — a topological change that
        # empties whole blocks rather than perturbing them
        z_width = 0.34 if not post_scission else 0.26
        widths = (0.45, 0.45, z_width)

        left = _fragment_density(grid, -separation, amp_left, widths)
        right = _fragment_density(grid, +separation, amp_right, widths)

        # Neck joining the fragments; it thins slowly with elongation and ruptures at
        # scission (topological change concentrated in the neck region).
        neck_amplitude = max(0.55 * (1.0 - 0.35 * progress), 0.0)
        if post_scission:
            neck_amplitude = 0.0
        neck = _fragment_density(grid, 0.0, neck_amplitude, (0.3, 0.3, separation))

        density = left + right + neck

        # Non-topological noise events: a persistent global density rescaling with a
        # mild spatial modulation.  Rescaling shifts the log-density of *every* voxel
        # by (nearly) the same amount — a large L2 change, comparable to the scission
        # peak — but a uniform log shift leaves the softmax block-mean distribution
        # almost unchanged; only the small modulation moves probability, spread thinly
        # over many blocks.  The scission, by contrast, empties a few blocks entirely,
        # concentrating a large probability change in the distribution's tail: exactly
        # the contrast that makes high-order Wasserstein distances suppress the noise
        # peaks while low orders still show them (Fig 6b).
        n_active_wobbles = sum(1 for onset in noise_onset_steps if t >= onset)
        if n_active_wobbles:
            wobble_field = np.cos(2.0 * np.pi * z) * np.cos(np.pi * x) * np.cos(np.pi * y)
            rescale = (0.78 + 0.035 * wobble_field) ** n_active_wobbles
            density *= rescale

        # small smooth stochastic ripple (sub-percent) so no two steps are identical
        ripple = 0.004 * np.sin(
            2.0 * np.pi * (rng.uniform(0.5, 1.5) * z + rng.uniform(0, 1))
        )
        density *= 1.0 + ripple
        densities[index] = np.clip(density, 0.0, None)

    log_densities = -np.log(densities + log_offset)
    return FissionSeries(
        time_steps=steps,
        densities=densities,
        log_densities=log_densities,
        scission_index=scission_index,
        noise_indices=tuple(noise_indices),
    )
