"""Uncompressed-space reference implementations of the paper's operations.

These are the "plain PyTorch on uncompressed images" functions of §V-B, re-expressed
in numpy.  They use the same conventions as the compressed-space versions so that
differences measured between the two reflect compression error only:

* statistics are population statistics (``ddof=0``);
* SSIM is the global single-window formulation of Algorithm 12;
* the Wasserstein distance is the order-``p`` distance between sorted empirical
  distributions, with the same softmax normalisation rule;
* an optional ``pad_to`` argument evaluates the reference on the zero-padded domain
  that compressed-space reductions see (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "reference_mean",
    "reference_variance",
    "reference_covariance",
    "reference_dot",
    "reference_l2_norm",
    "reference_cosine_similarity",
    "reference_ssim",
    "reference_wasserstein",
    "pad_like_blocks",
    "blockwise_means",
]


def pad_like_blocks(array: np.ndarray, block_shape: Sequence[int] | None) -> np.ndarray:
    """Zero-pad ``array`` to a multiple of ``block_shape`` (no-op when ``None``)."""
    if block_shape is None:
        return np.asarray(array, dtype=np.float64)
    from ..core.blocking import pad_to_blocks

    return np.asarray(pad_to_blocks(np.asarray(array, dtype=np.float64), block_shape))


def reference_mean(array: np.ndarray, pad_to: Sequence[int] | None = None) -> float:
    """Mean of the array (over the padded domain when ``pad_to`` is given)."""
    return float(pad_like_blocks(array, pad_to).mean())


def reference_variance(array: np.ndarray, pad_to: Sequence[int] | None = None) -> float:
    """Population variance (``ddof=0``)."""
    return float(pad_like_blocks(array, pad_to).var())


def reference_covariance(
    a: np.ndarray, b: np.ndarray, pad_to: Sequence[int] | None = None
) -> float:
    """Population covariance of two equal-shaped arrays."""
    pa = pad_like_blocks(a, pad_to).ravel()
    pb = pad_like_blocks(b, pad_to).ravel()
    if pa.shape != pb.shape:
        raise ValueError("covariance requires equal shapes")
    return float(np.mean((pa - pa.mean()) * (pb - pb.mean())))


def reference_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product of two equal-shaped arrays (padding is irrelevant: zeros)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError("dot requires equal shapes")
    return float(np.dot(a, b))


def reference_l2_norm(array: np.ndarray) -> float:
    """Euclidean norm of the flattened array."""
    return float(np.linalg.norm(np.asarray(array, dtype=np.float64).ravel()))


def reference_cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two equal-shaped arrays."""
    na = reference_l2_norm(a)
    nb = reference_l2_norm(b)
    if na == 0.0 or nb == 0.0:
        raise ZeroDivisionError("cosine similarity is undefined for zero-norm arrays")
    return reference_dot(a, b) / (na * nb)


def reference_ssim(
    a: np.ndarray,
    b: np.ndarray,
    *,
    data_range: float = 1.0,
    luminance_stabilizer: float | None = None,
    contrast_stabilizer: float | None = None,
    luminance_weight: float = 1.0,
    contrast_weight: float = 1.0,
    structure_weight: float = 1.0,
    pad_to: Sequence[int] | None = None,
) -> float:
    """Global (single-window) SSIM of Algorithm 12 computed on raw arrays."""
    pa = pad_like_blocks(a, pad_to)
    pb = pad_like_blocks(b, pad_to)
    if pa.shape != pb.shape:
        raise ValueError("SSIM requires equal shapes")
    s_l = (0.01 * data_range) ** 2 if luminance_stabilizer is None else float(luminance_stabilizer)
    s_c = (0.03 * data_range) ** 2 if contrast_stabilizer is None else float(contrast_stabilizer)
    mu_a, mu_b = pa.mean(), pb.mean()
    var_a, var_b = pa.var(), pb.var()
    sigma_a, sigma_b = np.sqrt(var_a), np.sqrt(var_b)
    sigma_ab = np.mean((pa - mu_a) * (pb - mu_b))
    luminance = (2 * mu_a * mu_b + s_l) / (mu_a**2 + mu_b**2 + s_l)
    contrast = (2 * sigma_a * sigma_b + s_c) / (var_a + var_b + s_c)
    structure = (sigma_ab + s_c / 2) / (sigma_a * sigma_b + s_c / 2)
    return float(
        np.sign(luminance) * np.abs(luminance) ** luminance_weight
        * np.sign(contrast) * np.abs(contrast) ** contrast_weight
        * np.sign(structure) * np.abs(structure) ** structure_weight
    )


def blockwise_means(array: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Block-wise means of the zero-padded array — the proxy Algorithm 13 builds on."""
    from ..core.blocking import block_array

    blocked = block_array(np.asarray(array, dtype=np.float64), block_shape)
    ndim = len(block_shape)
    block_axes = tuple(range(blocked.ndim - ndim, blocked.ndim))
    return blocked.mean(axis=block_axes)


def reference_wasserstein(
    a: np.ndarray,
    b: np.ndarray,
    order: float = 1.0,
    *,
    block_shape: Sequence[int] | None = None,
    stable: bool = True,
) -> float:
    """Order-``p`` Wasserstein distance between two arrays, Algorithm-13 conventions.

    With ``block_shape`` given, the distance is computed between the block-wise-mean
    proxies (the same granularity the compressed-space version uses); otherwise it is
    computed element-wise, i.e. the ``block_shape=(1,)*ndim`` exact limit the paper
    mentions.
    """
    order = float(order)
    if order < 1.0:
        raise ValueError("Wasserstein order must be >= 1")
    if block_shape is None:
        pa = np.asarray(a, dtype=np.float64).ravel()
        pb = np.asarray(b, dtype=np.float64).ravel()
    else:
        pa = blockwise_means(a, block_shape).ravel()
        pb = blockwise_means(b, block_shape).ravel()
    if pa.shape != pb.shape:
        raise ValueError("Wasserstein distance requires equal shapes")

    def normalise(values: np.ndarray) -> np.ndarray:
        total = values.sum()
        if np.isclose(total, 1.0, atol=1e-9) and np.all(values >= 0):
            return values
        shifted = values - values.max()
        exp = np.exp(shifted)
        return exp / exp.sum()

    da = np.sort(normalise(pa))
    db = np.sort(normalise(pb))
    diffs = np.abs(da - db)
    n = float(diffs.size)
    if not stable:
        return float((np.sum(diffs**order) / n) ** (1.0 / order))
    max_diff = diffs.max()
    if max_diff == 0.0:
        return 0.0
    inner = np.sum((diffs / max_diff) ** order) / n
    return float(max_diff * inner ** (1.0 / order))
