"""Error metrics used to compare compressed-space results against references.

Fig 5 of the paper reports mean absolute error (MAE) and mean relative error of
compressed-space scalar functions relative to their uncompressed counterparts, and
mean compression ratios; Fig 6a reports the maximum L2 deviation between compressed
and uncompressed curves.  The helpers here compute those quantities and package
scalar comparisons into :class:`ComparisonRecord` rows that the experiment harness
prints as tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "absolute_error",
    "relative_error",
    "mean_absolute_error",
    "mean_relative_error",
    "max_absolute_error",
    "root_mean_square_error",
    "peak_signal_noise_ratio",
    "compare_scalars",
    "ComparisonRecord",
]


def absolute_error(measured: float | np.ndarray, reference: float | np.ndarray) -> np.ndarray:
    """Element-wise absolute error ``|measured - reference|``."""
    return np.abs(np.asarray(measured, dtype=np.float64) - np.asarray(reference, dtype=np.float64))


def relative_error(
    measured: float | np.ndarray,
    reference: float | np.ndarray,
    *,
    reference_scale: float | None = None,
) -> np.ndarray:
    """Element-wise relative error ``|measured - reference| / scale``.

    ``reference_scale`` overrides the denominator — Fig 5 reports errors relative to
    the dataset-wide mean FLAIR intensity rather than per-example values.  Without an
    override the per-element ``|reference|`` is used; zero denominators yield ``inf``
    (or 0 where the error is also zero), mirroring the NaN/Inf bookkeeping the paper's
    figure notes ("squares are missing where NaNs occurred").
    """
    err = absolute_error(measured, reference)
    if reference_scale is not None:
        scale = float(reference_scale)
        if scale == 0.0:
            raise ValueError("reference_scale must be non-zero")
        return err / abs(scale)
    denom = np.abs(np.asarray(reference, dtype=np.float64))
    with np.errstate(divide="ignore", invalid="ignore"):
        out = err / denom
    out = np.where((err == 0) & (denom == 0), 0.0, out)
    return out


def mean_absolute_error(measured: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute error over all elements."""
    return float(np.mean(absolute_error(measured, reference)))


def mean_relative_error(
    measured: np.ndarray,
    reference: np.ndarray,
    *,
    reference_scale: float | None = None,
) -> float:
    """Mean relative error over all finite element-wise relative errors."""
    rel = relative_error(measured, reference, reference_scale=reference_scale)
    rel = np.asarray(rel, dtype=np.float64)
    finite = rel[np.isfinite(rel)]
    if finite.size == 0:
        return math.nan
    return float(finite.mean())


def max_absolute_error(measured: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute error (the L∞ distance between the two)."""
    return float(np.max(absolute_error(measured, reference)))


def root_mean_square_error(measured: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error."""
    err = absolute_error(measured, reference)
    return float(np.sqrt(np.mean(err * err)))


def peak_signal_noise_ratio(
    measured: np.ndarray, reference: np.ndarray, data_range: float | None = None
) -> float:
    """PSNR in dB; ``data_range`` defaults to the reference's max-min span."""
    reference = np.asarray(reference, dtype=np.float64)
    if data_range is None:
        data_range = float(reference.max() - reference.min())
    if data_range == 0:
        return math.inf
    rmse = root_mean_square_error(measured, reference)
    if rmse == 0:
        return math.inf
    return float(20.0 * np.log10(data_range / rmse))


@dataclass(frozen=True)
class ComparisonRecord:
    """One scalar comparison row: an operation evaluated both ways.

    Attributes
    ----------
    operation:
        Name of the operation compared (``"mean"``, ``"variance"`` ...).
    compressed_value:
        Value computed in the compressed space.
    reference_value:
        Value computed on the uncompressed array.
    absolute_error / relative_error:
        Derived error figures (relative to ``reference_value`` unless a scale was
        supplied at construction).
    """

    operation: str
    compressed_value: float
    reference_value: float
    absolute_error: float
    relative_error: float

    def as_row(self) -> tuple[str, float, float, float, float]:
        return (
            self.operation,
            self.compressed_value,
            self.reference_value,
            self.absolute_error,
            self.relative_error,
        )


def compare_scalars(
    operation: str,
    compressed_value: float,
    reference_value: float,
    *,
    reference_scale: float | None = None,
) -> ComparisonRecord:
    """Build a :class:`ComparisonRecord` from one compressed/uncompressed scalar pair."""
    abs_err = float(abs(compressed_value - reference_value))
    scale = abs(reference_scale) if reference_scale is not None else abs(reference_value)
    rel_err = math.inf if scale == 0 else abs_err / scale
    if abs_err == 0.0:
        rel_err = 0.0
    return ComparisonRecord(
        operation=operation,
        compressed_value=float(compressed_value),
        reference_value=float(reference_value),
        absolute_error=abs_err,
        relative_error=rel_err,
    )
