"""Uncompressed reference operations and error metrics.

Every compressed-space operation in :mod:`repro.core.ops` has an uncompressed-space
counterpart here, implemented directly on raw numpy arrays with matching conventions
(population statistics, global single-window SSIM, sorted-sample 1-D Wasserstein).
The experiment harnesses compare the two to produce the error figures of the paper
(Fig 5, Fig 6), and the test suite uses them as ground truth.

:mod:`repro.analysis.metrics` provides the error metrics used to report comparisons:
absolute error, relative error, mean absolute error, maximum error, PSNR.
"""

from .metrics import (
    ComparisonRecord,
    absolute_error,
    compare_scalars,
    max_absolute_error,
    mean_absolute_error,
    mean_relative_error,
    peak_signal_noise_ratio,
    relative_error,
    root_mean_square_error,
)
from .reference import (
    reference_cosine_similarity,
    reference_covariance,
    reference_dot,
    reference_l2_norm,
    reference_mean,
    reference_ssim,
    reference_variance,
    reference_wasserstein,
)

__all__ = [
    "reference_mean",
    "reference_variance",
    "reference_covariance",
    "reference_dot",
    "reference_l2_norm",
    "reference_cosine_similarity",
    "reference_ssim",
    "reference_wasserstein",
    "absolute_error",
    "relative_error",
    "mean_absolute_error",
    "mean_relative_error",
    "max_absolute_error",
    "root_mean_square_error",
    "peak_signal_noise_ratio",
    "compare_scalars",
    "ComparisonRecord",
]
