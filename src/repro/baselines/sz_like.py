"""An SZ-style error-bounded prediction compressor (§II-A(b)).

SZ predicts each element from its neighbours, quantizes the prediction residual
against a user-supplied absolute error bound, and entropy-codes the quantization
codes; elements whose residual falls outside the quantizer's range are stored
exactly ("unpredictable" values).  The variant implemented here uses the
interpolation predictor of SZ3 (dynamic spline interpolation, Zhao et al. 2021,
reference [12] of the paper), which is hierarchical and therefore vectorizes well:

1. The array is flattened and anchors are taken every ``2**L`` elements (stored
   exactly), where ``L`` is the number of refinement levels.
2. Level by level, unknown midpoints are predicted by linear interpolation of the
   already-reconstructed points at the coarser level, the residual is quantized to
   an integer code ``q = round(residual / (2·eb))``, and the point is reconstructed
   as ``prediction + q·2·eb`` — which pins its absolute error to at most ``eb``.
3. The codes from all levels are Huffman-coded; out-of-range residuals are stored
   exactly and marked with a reserved code.

The guarantee that every reconstructed element differs from the original by at most
the error bound is the property SZ is defined by, and the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import CodecError
from .huffman import HuffmanCode, huffman_decode, huffman_encode

__all__ = ["SZCompressor", "SZCompressed"]

_MAX_CODE = 32767  # residual codes beyond this are stored exactly
_OUTLIER_CODE = _MAX_CODE + 1


@dataclass
class SZCompressed:
    """Compressed form produced by :class:`SZCompressor`.

    Attributes
    ----------
    shape:
        Original array shape.
    error_bound:
        Absolute error bound the stream was compressed with.
    anchors:
        Exactly stored anchor values (every ``2**levels``-th element plus the last).
    codes:
        Huffman-coded quantization codes for all predicted elements, in prediction
        order.
    outliers:
        Exactly stored values for elements whose residual exceeded the quantizer
        range, in prediction order.
    levels:
        Number of interpolation levels used.
    """

    shape: tuple[int, ...]
    error_bound: float
    anchors: np.ndarray
    codes: HuffmanCode
    outliers: np.ndarray
    levels: int

    def size_bytes(self) -> int:
        """Stored size: anchors and outliers at 8 bytes, plus the Huffman stream."""
        return 8 * self.anchors.size + 8 * self.outliers.size + self.codes.size_bytes() + 32

    def compression_ratio(self, input_bits: int = 64) -> float:
        """Achieved compression ratio against ``input_bits``-per-element input."""
        original_bytes = int(np.prod(self.shape)) * input_bits / 8
        return float(original_bytes) / float(self.size_bytes())


class SZCompressor:
    """Error-bounded interpolation-predicting compressor.

    Parameters
    ----------
    error_bound:
        Absolute (L∞) error bound; every reconstructed element is within this bound
        of the original.
    levels:
        Number of interpolation refinement levels (anchor spacing is ``2**levels``).
    """

    def __init__(self, error_bound: float, levels: int = 8):
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise CodecError("error_bound must be a positive finite number")
        if levels < 1:
            raise CodecError("levels must be at least 1")
        self.error_bound = float(error_bound)
        self.levels = int(levels)

    # ------------------------------------------------------------------ pipeline
    def compress(self, array: np.ndarray) -> SZCompressed:
        """Compress ``array`` under the configured error bound."""
        array = np.asarray(array, dtype=np.float64)
        if array.size == 0:
            raise CodecError("cannot compress an empty array")
        if not np.all(np.isfinite(array)):
            raise CodecError("input contains non-finite values")
        flat = array.ravel()
        n = flat.size
        stride = 2**self.levels
        eb2 = 2.0 * self.error_bound

        anchor_positions = np.arange(0, n, stride)
        if anchor_positions[-1] != n - 1:
            anchor_positions = np.append(anchor_positions, n - 1)
        anchors = flat[anchor_positions].copy()

        reconstructed = np.full(n, np.nan)
        reconstructed[anchor_positions] = anchors
        known = np.zeros(n, dtype=bool)
        known[anchor_positions] = True

        all_codes: list[np.ndarray] = []
        all_outliers: list[np.ndarray] = []

        current = stride
        while current > 1:
            half = current // 2
            targets = np.arange(half, n, current)
            targets = targets[~known[targets]]
            if targets.size:
                left = targets - half
                right = np.minimum(targets + half, n - 1)
                # right neighbours may be unknown at the array tail; fall back to the
                # left neighbour alone (constant prediction) there.
                right_known = known[right]
                prediction = np.where(
                    right_known,
                    0.5 * (reconstructed[left] + np.where(right_known, reconstructed[right], 0.0)),
                    reconstructed[left],
                )
                residual = flat[targets] - prediction
                codes = np.rint(residual / eb2).astype(np.int64)
                outlier_mask = np.abs(codes) > _MAX_CODE
                values = prediction + codes * eb2
                # outliers are stored exactly and marked with the reserved code
                codes = np.where(outlier_mask, _OUTLIER_CODE, codes)
                values = np.where(outlier_mask, flat[targets], values)
                reconstructed[targets] = values
                known[targets] = True
                all_codes.append(codes)
                all_outliers.append(flat[targets][outlier_mask])
            current = half

        if not np.all(known):  # pragma: no cover - defensive; strides cover everything
            missing = np.where(~known)[0]
            raise AssertionError(f"interpolation pass left {missing.size} elements unknown")

        codes_array = (
            np.concatenate(all_codes) if all_codes else np.empty(0, dtype=np.int64)
        )
        outliers_array = (
            np.concatenate(all_outliers) if all_outliers else np.empty(0, dtype=np.float64)
        )
        return SZCompressed(
            shape=array.shape,
            error_bound=self.error_bound,
            anchors=anchors,
            codes=huffman_encode(codes_array),
            outliers=outliers_array,
            levels=self.levels,
        )

    def decompress(self, compressed: SZCompressed) -> np.ndarray:
        """Reconstruct an array from its SZ-like compressed form."""
        shape = compressed.shape
        n = int(np.prod(shape))
        stride = 2**compressed.levels
        eb2 = 2.0 * compressed.error_bound

        anchor_positions = np.arange(0, n, stride)
        if anchor_positions[-1] != n - 1:
            anchor_positions = np.append(anchor_positions, n - 1)
        reconstructed = np.full(n, np.nan)
        reconstructed[anchor_positions] = compressed.anchors
        known = np.zeros(n, dtype=bool)
        known[anchor_positions] = True

        codes_array = huffman_decode(compressed.codes)
        code_cursor = 0
        outlier_cursor = 0

        current = stride
        while current > 1:
            half = current // 2
            targets = np.arange(half, n, current)
            targets = targets[~known[targets]]
            if targets.size:
                left = targets - half
                right = np.minimum(targets + half, n - 1)
                right_known = known[right]
                prediction = np.where(
                    right_known,
                    0.5 * (reconstructed[left] + np.where(right_known, reconstructed[right], 0.0)),
                    reconstructed[left],
                )
                codes = codes_array[code_cursor : code_cursor + targets.size]
                code_cursor += targets.size
                outlier_mask = codes == _OUTLIER_CODE
                values = prediction + codes * eb2
                n_outliers = int(outlier_mask.sum())
                if n_outliers:
                    values = values.copy()
                    values[outlier_mask] = compressed.outliers[
                        outlier_cursor : outlier_cursor + n_outliers
                    ]
                    outlier_cursor += n_outliers
                reconstructed[targets] = values
                known[targets] = True
            current = half

        return reconstructed.reshape(shape)
