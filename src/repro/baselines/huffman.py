"""Canonical Huffman coding substrate.

SZ (§II-A(b)) quantizes prediction residuals and entropy-codes the quantization
codes with Huffman coding; the SZ-like baseline in :mod:`repro.baselines.sz_like`
does the same, using this module.  The coder works on arbitrary integer symbol
arrays, builds a canonical code (so only the code lengths need to be stored), and
packs the encoded symbols into a byte string whose length is what the compression
ratio accounting measures.

The implementation is deliberately self-contained (heapq-based tree construction,
numpy-vectorised encoding/decoding via table lookups) — no external compression
libraries are used anywhere in this repository.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.exceptions import CodecError

__all__ = ["HuffmanCode", "huffman_encode", "huffman_decode", "code_lengths"]


def code_lengths(symbols: np.ndarray, counts: np.ndarray) -> dict[int, int]:
    """Huffman code length for each distinct symbol given its occurrence count.

    A single-symbol alphabet gets length 1.  Ties are broken deterministically by
    symbol value so encode/decode agree across runs.
    """
    symbols = np.asarray(symbols)
    counts = np.asarray(counts)
    if symbols.size != counts.size:
        raise CodecError("symbols and counts must have equal length")
    if symbols.size == 0:
        return {}
    if symbols.size == 1:
        return {int(symbols[0]): 1}
    # heap entries: (count, tiebreak, node) where node is either a symbol or a list
    heap: list[tuple[int, int, object]] = []
    for tiebreak, (symbol, count) in enumerate(sorted(zip(symbols.tolist(), counts.tolist()))):
        heapq.heappush(heap, (int(count), tiebreak, int(symbol)))
    next_tiebreak = len(heap)
    lengths: dict[int, int] = {int(s): 0 for s in symbols.tolist()}
    # classic two-smallest merge; track depth increments by merging member lists
    members: dict[int, list[int]] = {}
    heap2: list[tuple[int, int, int]] = []
    for count, tiebreak, symbol in heap:
        members[tiebreak] = [symbol]  # type: ignore[list-item]
        heapq.heappush(heap2, (count, tiebreak, tiebreak))
    while len(heap2) > 1:
        c1, _, id1 = heapq.heappop(heap2)
        c2, _, id2 = heapq.heappop(heap2)
        merged = members[id1] + members[id2]
        for symbol in merged:
            lengths[symbol] += 1
        members[next_tiebreak] = merged
        heapq.heappush(heap2, (c1 + c2, next_tiebreak, next_tiebreak))
        next_tiebreak += 1
    return lengths


@dataclass
class HuffmanCode:
    """A canonical Huffman code plus the encoded payload.

    Attributes
    ----------
    symbols:
        The distinct symbols, sorted by (code length, symbol value) — canonical order.
    lengths:
        Code length of each symbol in ``symbols``.
    payload:
        The packed bitstream as bytes.
    bit_length:
        Number of meaningful bits in ``payload``.
    count:
        Number of encoded symbols.
    """

    symbols: np.ndarray
    lengths: np.ndarray
    payload: bytes
    bit_length: int
    count: int

    def size_bytes(self) -> int:
        """Payload plus a simple table cost (symbol + length per entry)."""
        table = self.symbols.size * (self.symbols.dtype.itemsize + 1)
        return len(self.payload) + table


def _canonical_codes(symbols: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values (as integers) given canonical-ordered lengths."""
    codes = np.zeros(symbols.size, dtype=np.uint64)
    code = 0
    previous_length = int(lengths[0]) if lengths.size else 0
    for position in range(symbols.size):
        length = int(lengths[position])
        code <<= length - previous_length
        codes[position] = code
        code += 1
        previous_length = length
    return codes


def huffman_encode(values: np.ndarray) -> HuffmanCode:
    """Encode an integer array with a canonical Huffman code."""
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise CodecError("Huffman coding operates on integer symbol arrays")
    flat = values.ravel()
    if flat.size == 0:
        return HuffmanCode(
            symbols=np.empty(0, dtype=np.int64),
            lengths=np.empty(0, dtype=np.uint8),
            payload=b"",
            bit_length=0,
            count=0,
        )
    uniques, counts = np.unique(flat, return_counts=True)
    length_map = code_lengths(uniques, counts)
    # canonical order: (length, symbol)
    order = sorted(length_map.items(), key=lambda item: (item[1], item[0]))
    symbols = np.array([symbol for symbol, _ in order], dtype=np.int64)
    lengths = np.array([length for _, length in order], dtype=np.uint8)
    codes = _canonical_codes(symbols, lengths)

    # map each value to its (code, length) via searchsorted on the symbol table
    lookup = np.argsort(symbols)
    sorted_symbols = symbols[lookup]
    positions = lookup[np.searchsorted(sorted_symbols, flat)]
    value_codes = codes[positions]
    value_lengths = lengths[positions].astype(np.int64)

    # pack bits MSB-first
    total_bits = int(value_lengths.sum())
    ends = np.cumsum(value_lengths)
    starts = ends - value_lengths
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_length = int(value_lengths.max())
    for bit in range(max_length):
        # for every symbol long enough, write bit `bit` (counting from the MSB)
        selector = value_lengths > bit
        if not selector.any():
            continue
        shifts = (value_lengths[selector] - 1 - bit).astype(np.uint64)
        bit_values = (value_codes[selector] >> shifts) & np.uint64(1)
        bits[starts[selector] + bit] = bit_values.astype(np.uint8)
    payload = np.packbits(bits).tobytes()
    return HuffmanCode(
        symbols=symbols,
        lengths=lengths,
        payload=payload,
        bit_length=total_bits,
        count=int(flat.size),
    )


def huffman_decode(code: HuffmanCode) -> np.ndarray:
    """Decode a :class:`HuffmanCode` back into its symbol array."""
    if code.count == 0:
        return np.empty(0, dtype=np.int64)
    codes = _canonical_codes(code.symbols, code.lengths)
    # decoding table keyed by (length, code value)
    table: dict[tuple[int, int], int] = {
        (int(code.lengths[i]), int(codes[i])): int(code.symbols[i])
        for i in range(code.symbols.size)
    }
    max_length = int(code.lengths.max())
    bits = np.unpackbits(np.frombuffer(code.payload, dtype=np.uint8), count=code.bit_length)
    out = np.empty(code.count, dtype=np.int64)
    position = 0
    current = 0
    current_length = 0
    produced = 0
    while produced < code.count:
        current = (current << 1) | int(bits[position])
        position += 1
        current_length += 1
        key = (current_length, current)
        if key in table:
            out[produced] = table[key]
            produced += 1
            current = 0
            current_length = 0
        elif current_length > max_length:  # pragma: no cover - corrupted stream
            raise CodecError("invalid Huffman stream")
    return out
