"""Baseline compressors the paper compares against (§II).

* :mod:`repro.baselines.blaz` — the original Blaz compressor (Martel 2022):
  2-dimensional FP64 arrays, 8×8 blocks, first-element differentiation, block-wise
  DCT, 255-bin binning and corner pruning, with its two compressed-space operations
  (addition and multiplication by a scalar).  Implemented block-by-block in pure
  Python, as the single-threaded reference of Fig 2.
* :mod:`repro.baselines.zfp_like` — a fixed-rate ZFP-style codec: 4ⁿ blocks, shared
  block exponent, the ZFP lifting transform, negabinary coefficients and bit-plane
  truncation to a fixed number of bits per value (Fig 3).
* :mod:`repro.baselines.sz_like` — an SZ-style error-bounded codec: hierarchical
  interpolation prediction, residual quantization against an absolute error bound,
  and Huffman coding of the quantization codes.
* :mod:`repro.baselines.huffman` — the canonical Huffman coder substrate used by the
  SZ-like codec.
"""

from .blaz import BlazCompressed, BlazCompressor
from .huffman import HuffmanCode, huffman_decode, huffman_encode
from .sz_like import SZCompressed, SZCompressor
from .zfp_like import ZFPCompressed, ZFPCompressor

__all__ = [
    "BlazCompressor",
    "BlazCompressed",
    "ZFPCompressor",
    "ZFPCompressed",
    "SZCompressor",
    "SZCompressed",
    "HuffmanCode",
    "huffman_encode",
    "huffman_decode",
]
