"""A fixed-rate ZFP-style transform codec (the Fig 3 comparison baseline).

ZFP (Lindstrom 2014, §II-A(a)) compresses d-dimensional floating-point arrays by:

1. partitioning the array into blocks of 4 in every direction,
2. converting each block to a **block floating-point** representation — all values
   share the exponent of the largest-magnitude element and become fixed-point
   integers,
3. applying a near-orthogonal **lifting transform** separably along every direction,
4. converting the transform coefficients to **negabinary** (base −2) so that sign
   information is spread over the bit planes, and
5. encoding bit planes from most to least significant, truncating at a fixed bit
   budget per block (fixed-rate mode — the only mode ZFP's CUDA path supports, and
   the mode the paper benchmarks against).

This module implements exactly those stages for 1- to 3-dimensional arrays, with the
documented ZFP forward/inverse transform matrices

    forward = 1/16 · [[ 4,  4,  4,  4],          inverse = 1/4 · [[4,  6, -4, -1],
                      [ 5,  1, -1, -5],                            [4,  2,  4,  5],
                      [-4,  4,  4, -4],                            [4, -2,  4, -5],
                      [-2,  6, -6,  2]]                            [4, -6, -4,  1]]

applied in floating point, 30-bit fixed-point significands, and per-block bit-plane
truncation to ``bits_per_value × block_size`` bits.  It is *not* a bit-compatible
reimplementation of the zfp stream format — what matters for the reproduction is
that compression and decompression exercise the same pipeline stages with the same
asymptotic cost and comparable error behaviour at a given rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import CodecError

__all__ = ["ZFPCompressor", "ZFPCompressed", "bit_lengths", "BLOCK", "PRECISION",
           "EXPONENT_BITS", "MAX_SHIFT"]

_BLOCK = 4
_PRECISION = 30  # fixed-point bits for block-floating-point significands
_EXPONENT_BITS = 16  # per-block exponent storage
#: Largest |ldexp shift| that stays finite/normal in float64; deep-subnormal
#: blocks (exponents below ≈ -992) clamp to this instead of overflowing.
_MAX_SHIFT = 1022

# public aliases for the stream serializer (repro.codecs.zfp), whose grid and
# bound math must mirror these pipeline parameters exactly
BLOCK = _BLOCK
PRECISION = _PRECISION
EXPONENT_BITS = _EXPONENT_BITS
MAX_SHIFT = _MAX_SHIFT


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """Bit length of each unsigned value (0 for 0).

    Uses the float64 log2 trick, exact for the < 2**52 magnitudes this pipeline
    produces.  Shared by the plane-truncation step below and the stream
    serializer in :mod:`repro.codecs.zfp`, which must agree on per-block
    dropped-plane counts bit for bit.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        lengths = np.floor(np.log2(np.maximum(values.astype(np.float64), 1.0)))
    return np.where(values > 0, lengths.astype(np.int64) + 1, 0)

_FORWARD = np.array(
    [
        [4.0, 4.0, 4.0, 4.0],
        [5.0, 1.0, -1.0, -5.0],
        [-4.0, 4.0, 4.0, -4.0],
        [-2.0, 6.0, -6.0, 2.0],
    ]
) / 16.0

_INVERSE = np.array(
    [
        [4.0, 6.0, -4.0, -1.0],
        [4.0, 2.0, 4.0, 5.0],
        [4.0, -2.0, 4.0, -5.0],
        [4.0, -6.0, -4.0, 1.0],
    ]
) / 4.0


@dataclass
class ZFPCompressed:
    """Compressed form produced by :class:`ZFPCompressor`.

    Attributes
    ----------
    shape:
        Original array shape.
    exponents:
        Per-block shared exponent (int16), shape = block grid.
    planes:
        Per-block negabinary coefficients with the discarded low bit planes zeroed,
        stored as uint64 of shape ``(n_blocks, 4**ndim)``.
    bits_per_value:
        The fixed rate this array was compressed at.
    kept_planes:
        Number of bit planes kept per block (derived from the rate).
    """

    shape: tuple[int, ...]
    exponents: np.ndarray
    planes: np.ndarray
    bits_per_value: int
    kept_planes: int

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.exponents.shape

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.exponents.shape))

    def size_bits(self) -> int:
        """Stored size under the fixed-rate budget (exponent + kept planes per block)."""
        block_size = self.planes.shape[1]
        per_block = _EXPONENT_BITS + self.kept_planes * block_size
        return self.n_blocks * per_block

    def size_bytes(self) -> int:
        return (self.size_bits() + 7) // 8


class ZFPCompressor:
    """Fixed-rate ZFP-style codec for 1- to 3-dimensional float arrays.

    Parameters
    ----------
    bits_per_value:
        The rate in bits per array element.  The paper's Fig 3 uses 8, 16 and 32
        bits per scalar on FP64 data, i.e. ratios of approximately 8, 4 and 2.
    """

    def __init__(self, bits_per_value: int = 16):
        bits_per_value = int(bits_per_value)
        # the upper cap matches the stream serializer's u16 rate field; rates
        # beyond 64 bits/value keep every plane anyway (kept_planes caps at 64)
        if not 1 <= bits_per_value <= 65535:
            raise CodecError("bits_per_value must be in [1, 65535]")
        self.bits_per_value = bits_per_value

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _block(array: np.ndarray) -> tuple[np.ndarray, tuple[int, ...], tuple[int, ...]]:
        """Pad to multiples of 4 and reshape to ``(n_blocks, 4, [4, [4]])``."""
        ndim = array.ndim
        pads = [(0, (-extent) % _BLOCK) for extent in array.shape]
        padded = np.pad(array, pads, mode="constant")
        grid = tuple(extent // _BLOCK for extent in padded.shape)
        # interleave (g0, 4, g1, 4, ...) then bring grid axes to the front
        interleaved = padded.reshape(
            tuple(val for g in grid for val in (g, _BLOCK))
        )
        grid_axes = tuple(range(0, 2 * ndim, 2))
        block_axes = tuple(range(1, 2 * ndim, 2))
        blocked = np.transpose(interleaved, grid_axes + block_axes)
        n_blocks = int(np.prod(grid))
        return blocked.reshape((n_blocks,) + (_BLOCK,) * ndim), grid, padded.shape

    @staticmethod
    def _unblock(
        blocks: np.ndarray, grid: tuple[int, ...], padded_shape: tuple[int, ...]
    ) -> np.ndarray:
        ndim = len(grid)
        blocked = blocks.reshape(grid + (_BLOCK,) * ndim)
        order = []
        for d in range(ndim):
            order.append(d)
            order.append(ndim + d)
        interleaved = np.transpose(blocked, order)
        return interleaved.reshape(padded_shape)

    @staticmethod
    def _apply_transform(blocks: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Apply ``matrix`` separably along every block axis (axis 0 is the block index)."""
        result = blocks
        ndim = blocks.ndim - 1
        for axis in range(1, ndim + 1):
            result = np.tensordot(result, matrix, axes=([axis], [1]))
            result = np.moveaxis(result, -1, axis)
        return result

    @staticmethod
    def _to_negabinary(values: np.ndarray) -> np.ndarray:
        """Map signed 64-bit integers to their negabinary (base −2) encodings."""
        mask = np.uint64(0xAAAAAAAAAAAAAAAA)
        as_unsigned = values.astype(np.int64).view(np.uint64)
        return (as_unsigned + mask) ^ mask

    @staticmethod
    def _from_negabinary(values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_to_negabinary`."""
        mask = np.uint64(0xAAAAAAAAAAAAAAAA)
        return ((values ^ mask) - mask).view(np.int64)

    # ------------------------------------------------------------------ pipeline
    def compress(self, array: np.ndarray) -> ZFPCompressed:
        """Compress an array at the configured fixed rate."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim < 1 or array.ndim > 3:
            raise CodecError("the ZFP-like codec supports 1- to 3-dimensional arrays")
        if array.size == 0:
            raise CodecError("cannot compress an empty array")
        if not np.all(np.isfinite(array)):
            raise CodecError("input contains non-finite values")
        ndim = array.ndim
        blocks, grid, _ = self._block(array)
        block_size = _BLOCK**ndim

        # Block floating point: shared exponent of the largest magnitude per block.
        maxima = np.abs(blocks).reshape(blocks.shape[0], -1).max(axis=1)
        # frexp: max = m * 2**e with m in [0.5, 1); all-zero blocks get exponent 0.
        _, exponents = np.frexp(maxima)
        exponents = np.where(maxima == 0.0, 0, exponents).astype(np.int16)
        shifts = np.minimum(_PRECISION - exponents.astype(np.int32), _MAX_SHIFT)
        scale = np.ldexp(1.0, shifts).reshape((-1,) + (1,) * ndim)
        fixed = np.rint(blocks * scale).astype(np.int64)

        # Lifting transform (floating point on the fixed-point integers, re-rounded).
        coefficients = np.rint(self._apply_transform(fixed.astype(np.float64), _FORWARD))
        coefficients = np.clip(coefficients, -(2**62), 2**62).astype(np.int64)

        # Negabinary + bit-plane truncation to the fixed budget.  As in zfp's embedded
        # coding, bit planes are counted from the highest *used* plane of each block
        # (all-zero leading planes cost essentially nothing in the real codec), so the
        # kept planes are the most significant ones actually present in the block.
        nega = self._to_negabinary(coefficients).reshape(blocks.shape[0], block_size)
        budget_bits = self.bits_per_value * block_size
        kept_planes = max(0, (budget_bits - _EXPONENT_BITS) // block_size)
        kept_planes = min(kept_planes, 64)
        if kept_planes >= 64:
            planes = nega
        elif kept_planes == 0:
            planes = np.zeros_like(nega)
        else:
            bit_length = bit_lengths(nega.max(axis=1))
            drop = np.clip(bit_length - kept_planes, 0, 63).astype(np.uint64)
            plane_mask = np.left_shift(
                np.uint64(0xFFFFFFFFFFFFFFFF), drop
            ).reshape(-1, 1)
            planes = nega & plane_mask

        return ZFPCompressed(
            shape=array.shape,
            exponents=exponents.reshape(grid),
            planes=planes,
            bits_per_value=self.bits_per_value,
            kept_planes=kept_planes,
        )

    def decompress(self, compressed: ZFPCompressed) -> np.ndarray:
        """Reconstruct an array from its ZFP-like compressed form."""
        shape = compressed.shape
        ndim = len(shape)
        grid = compressed.grid_shape
        block_size = _BLOCK**ndim
        padded_shape = tuple(g * _BLOCK for g in grid)

        coefficients = self._from_negabinary(compressed.planes).astype(np.float64)
        coefficients = coefficients.reshape((compressed.n_blocks,) + (_BLOCK,) * ndim)
        fixed = self._apply_transform(coefficients, _INVERSE)
        exponents = compressed.exponents.reshape(-1).astype(np.int32)
        # mirror the compressor's clamped shift exactly, or clamped blocks
        # would be rescaled by the wrong power of two
        scale = np.ldexp(
            1.0, np.maximum(exponents - _PRECISION, -_MAX_SHIFT)
        ).reshape((-1,) + (1,) * ndim)
        blocks = fixed * scale
        padded = self._unblock(blocks, grid, padded_shape)
        return padded[tuple(slice(0, extent) for extent in shape)]

    # ------------------------------------------------------------------ reporting
    def compression_ratio(self, array_shape: tuple[int, ...], input_bits: int = 64) -> float:
        """Nominal compression ratio at this fixed rate for ``input_bits`` inputs."""
        return float(input_bits) / float(self.bits_per_value)
