"""The original Blaz compressor (Martel, "Compressed matrix computations", 2022).

Blaz is the compressor PyBlaz descends from (§II-A(c)) and the baseline of the
Fig 2 timing comparison.  Its pipeline, for 2-dimensional FP64 arrays:

1. Block the input into 8×8 blocks (zero-padding partial blocks).
2. **Differentiation** ("normalization" in the Blaz paper): keep the first element of
   each block and replace every other element with the difference from the previous
   element in row-major order.
3. Apply a block-wise DCT to the differentiated blocks.
4. Save the biggest coefficient of each block and bin the coefficients into 255 bins
   indexed by 8-bit integers in [-127, 127].
5. Prune the 6×6 square of indices in the high-frequency corner of each block and
   flatten what remains.

Decompression reverses the steps (unflatten with zeros, unbin, inverse DCT,
integrate, merge blocks, crop).

Two compressed-space operations are supported, mirroring the original system:
:meth:`BlazCompressor.add` and :meth:`BlazCompressor.multiply_scalar`.  Because of
the differentiation step the mean/variance/dot-product family available in PyBlaz has
no Blaz counterpart — that is precisely the design difference the paper calls out
(Fig 1 caption, §IV-A), and the ablation benchmark quantifies it.

The implementation deliberately processes blocks one at a time in Python loops: Blaz
is the *single-threaded* reference point of the performance comparison, so its cost
model should scale with the number of blocks exactly as the original C implementation
does (polynomially in the array size), not enjoy numpy's bulk vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import CodecError
from ..core.transforms import dct_matrix

__all__ = ["BlazCompressor", "BlazCompressed"]

_BLOCK = 8
_RADIUS = 127  # 255 bins indexed -127..127
_KEEP = np.ones((_BLOCK, _BLOCK), dtype=bool)
_KEEP[_BLOCK - 6 :, _BLOCK - 6 :] = False  # drop the 6x6 high-frequency corner


@dataclass
class BlazCompressed:
    """Compressed form produced by :class:`BlazCompressor`.

    Attributes
    ----------
    shape:
        Original 2-D array shape.
    firsts:
        First element of each block (kept exactly), shape ``(grid_rows, grid_cols)``.
    maxima:
        Biggest DCT coefficient magnitude per block, same shape as ``firsts``.
    indices:
        Flattened kept bin indices per block, shape ``(n_blocks, kept)`` int8.
    """

    shape: tuple[int, int]
    firsts: np.ndarray
    maxima: np.ndarray
    indices: np.ndarray

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.firsts.shape

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.firsts.shape))

    def size_bytes(self) -> int:
        """Stored size: firsts and maxima at 8 bytes each, indices at 1 byte each."""
        return 8 * self.firsts.size + 8 * self.maxima.size + self.indices.size


class BlazCompressor:
    """Single-threaded Blaz codec for 2-dimensional float64 arrays."""

    block_shape = (_BLOCK, _BLOCK)

    def __init__(self) -> None:
        self._dct = dct_matrix(_BLOCK)

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _differentiate(block: np.ndarray) -> np.ndarray:
        """Blaz's normalization step: encode each element as a difference from its
        previous neighbour.

        Within a row each element is replaced by its difference from the element to
        its left; the first column is replaced by differences down the column.  The
        block's first element maps to zero (it is stored exactly and separately in
        ``firsts``), so a constant block differentiates to all zeros and round-trips
        exactly, and smooth blocks produce small, low-frequency difference fields —
        the property the subsequent DCT + corner pruning relies on.
        """
        block = np.asarray(block, dtype=np.float64)
        out = np.empty_like(block)
        out[:, 1:] = block[:, 1:] - block[:, :-1]
        out[1:, 0] = block[1:, 0] - block[:-1, 0]
        out[0, 0] = 0.0
        return out

    @staticmethod
    def _integrate(block: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_differentiate`: cumulative sums down the first column
        and then along each row.

        The result is relative to the block's first element; the caller re-anchors it
        on the exactly stored first value.
        """
        out = np.array(block, dtype=np.float64)
        out[:, 0] = np.cumsum(out[:, 0])
        return np.cumsum(out, axis=1)

    def _forward_dct(self, block: np.ndarray) -> np.ndarray:
        return self._dct @ block @ self._dct.T

    def _inverse_dct(self, coefficients: np.ndarray) -> np.ndarray:
        return self._dct.T @ coefficients @ self._dct

    @staticmethod
    def _pad(array: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        rows, cols = array.shape
        pad_rows = (-rows) % _BLOCK
        pad_cols = (-cols) % _BLOCK
        padded = np.pad(array, ((0, pad_rows), (0, pad_cols)), mode="constant")
        return padded, (rows, cols)

    # ------------------------------------------------------------------ pipeline
    def compress(self, array: np.ndarray) -> BlazCompressed:
        """Compress a 2-dimensional float array."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise CodecError(f"Blaz compresses 2-dimensional arrays, got ndim={array.ndim}")
        if array.size == 0:
            raise CodecError("cannot compress an empty array")
        padded, shape = self._pad(array)
        grid_rows = padded.shape[0] // _BLOCK
        grid_cols = padded.shape[1] // _BLOCK
        firsts = np.empty((grid_rows, grid_cols))
        maxima = np.empty((grid_rows, grid_cols))
        kept = int(_KEEP.sum())
        indices = np.empty((grid_rows * grid_cols, kept), dtype=np.int8)
        block_index = 0
        for gi in range(grid_rows):
            for gj in range(grid_cols):
                block = padded[gi * _BLOCK : (gi + 1) * _BLOCK, gj * _BLOCK : (gj + 1) * _BLOCK]
                firsts[gi, gj] = block[0, 0]
                diff = self._differentiate(block)
                coeff = self._forward_dct(diff)
                biggest = np.abs(coeff).max()
                maxima[gi, gj] = biggest
                if biggest == 0.0:
                    binned = np.zeros_like(coeff)
                else:
                    binned = np.rint(coeff * (_RADIUS / biggest))
                binned = np.clip(binned, -_RADIUS, _RADIUS)
                indices[block_index] = binned[_KEEP].astype(np.int8)
                block_index += 1
        return BlazCompressed(shape=shape, firsts=firsts, maxima=maxima, indices=indices)

    def decompress(self, compressed: BlazCompressed) -> np.ndarray:
        """Reconstruct the array from its Blaz compressed form."""
        grid_rows, grid_cols = compressed.grid_shape
        out = np.zeros((grid_rows * _BLOCK, grid_cols * _BLOCK))
        block_index = 0
        for gi in range(grid_rows):
            for gj in range(grid_cols):
                coeff = np.zeros((_BLOCK, _BLOCK))
                coeff[_KEEP] = compressed.indices[block_index].astype(np.float64)
                coeff *= compressed.maxima[gi, gj] / _RADIUS
                diff = self._inverse_dct(coeff)
                block = self._integrate(diff)
                # re-anchor on the exactly stored first element
                block += compressed.firsts[gi, gj] - block[0, 0]
                out[gi * _BLOCK : (gi + 1) * _BLOCK, gj * _BLOCK : (gj + 1) * _BLOCK] = block
                block_index += 1
        rows, cols = compressed.shape
        return out[:rows, :cols]

    # ------------------------------------------------------------------ compressed ops
    def add(self, a: BlazCompressed, b: BlazCompressed) -> BlazCompressed:
        """Compressed-space element-wise addition (the operation Blaz supports).

        Differences are linear, the DCT is linear and the first elements add, so the
        sum is formed by adding the scaled coefficients and the firsts, then
        re-binning — block by block, as the original implementation does.
        """
        if a.shape != b.shape or a.grid_shape != b.grid_shape:
            raise CodecError("Blaz addition requires identically shaped operands")
        firsts = a.firsts + b.firsts
        maxima = np.empty_like(a.maxima)
        indices = np.empty_like(a.indices)
        for block_index in range(a.n_blocks):
            gi, gj = divmod(block_index, a.grid_shape[1])
            coeff_a = np.zeros((_BLOCK, _BLOCK))
            coeff_a[_KEEP] = a.indices[block_index].astype(np.float64)
            coeff_a *= a.maxima[gi, gj] / _RADIUS
            coeff_b = np.zeros((_BLOCK, _BLOCK))
            coeff_b[_KEEP] = b.indices[block_index].astype(np.float64)
            coeff_b *= b.maxima[gi, gj] / _RADIUS
            total = coeff_a + coeff_b
            biggest = np.abs(total).max()
            maxima[gi, gj] = biggest
            if biggest == 0.0:
                binned = np.zeros((_BLOCK, _BLOCK))
            else:
                binned = np.clip(np.rint(total * (_RADIUS / biggest)), -_RADIUS, _RADIUS)
            indices[block_index] = binned[_KEEP].astype(np.int8)
        return BlazCompressed(shape=a.shape, firsts=firsts, maxima=maxima, indices=indices)

    def multiply_scalar(self, a: BlazCompressed, scalar: float) -> BlazCompressed:
        """Compressed-space multiplication by a scalar (block-by-block)."""
        if not np.isfinite(scalar):
            raise CodecError("scalar must be finite")
        scalar = float(scalar)
        firsts = np.empty_like(a.firsts)
        maxima = np.empty_like(a.maxima)
        indices = np.empty_like(a.indices)
        sign = -1 if scalar < 0 else 1
        for block_index in range(a.n_blocks):
            gi, gj = divmod(block_index, a.grid_shape[1])
            firsts[gi, gj] = a.firsts[gi, gj] * scalar
            maxima[gi, gj] = a.maxima[gi, gj] * abs(scalar)
            indices[block_index] = np.clip(
                a.indices[block_index].astype(np.int16) * sign, -_RADIUS, _RADIUS
            ).astype(np.int8)
        return BlazCompressed(shape=a.shape, firsts=firsts, maxima=maxima, indices=indices)
