"""Automatic selection of compression settings to meet an error target (§VI future work).

The paper's conclusion lists, as future work, making PyBlaz "automatically change its
compression settings in order to enforce some L∞ error bound through Bayesian
optimization or a similar search process instead of relying on the user to find
optimal compression settings".  This module implements that capability with a
deterministic guided search (no external optimizer dependency):

:func:`tune_settings` takes a representative array (or a sample of one), a target
maximum absolute error, and a candidate space (block shapes, index types, float
formats, pruning fractions), evaluates candidates in increasing order of stored size,
and returns the highest-ratio :class:`CompressionSettings` whose *measured* round-trip
L∞ error meets the target.  Because the error of a candidate is measured on the data
itself (not estimated from the bounds, which §IV-D shows are loose), the guarantee is
empirical in the same sense SZ's error bound is: it holds for the data it was tuned
on, and for similar data in the same value range.

A cheaper screening step uses the §IV-D binning bound to discard candidates that
cannot possibly meet the target, so the number of full compress/decompress
evaluations stays small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .codec import compression_ratio
from .compressor import Compressor
from .pruning import low_frequency_mask
from .settings import CompressionSettings

__all__ = ["TuningCandidate", "TuningResult", "candidate_space", "tune_settings"]


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated candidate configuration."""

    settings: CompressionSettings
    ratio: float
    measured_linf_error: float
    meets_target: bool


@dataclass
class TuningResult:
    """Outcome of :func:`tune_settings`.

    Attributes
    ----------
    best:
        The selected settings (highest ratio among candidates meeting the target), or
        ``None`` if no candidate met it.
    target_linf:
        The error target that was requested.
    evaluated:
        Every candidate that was fully evaluated, in evaluation order.
    """

    best: CompressionSettings | None
    target_linf: float
    evaluated: list[TuningCandidate] = field(default_factory=list)

    @property
    def best_candidate(self) -> TuningCandidate | None:
        for candidate in sorted(self.evaluated, key=lambda c: -c.ratio):
            if candidate.meets_target:
                return candidate
        return None


def candidate_space(
    ndim: int,
    block_extents: Sequence[int] = (4, 8, 16),
    index_dtypes: Sequence[str] = ("int8", "int16", "int32"),
    float_formats: Sequence[str] = ("float32", "float64"),
    keep_fractions: Sequence[float] = (1.0, 0.5),
) -> list[CompressionSettings]:
    """Build the default candidate grid for ``ndim``-dimensional data.

    Only hypercubic blocks are generated here; callers with strongly anisotropic data
    (like the Fig 5 volumes) can pass their own candidate list to
    :func:`tune_settings`.
    """
    candidates: list[CompressionSettings] = []
    for extent in block_extents:
        block_shape = (int(extent),) * ndim
        for float_format in float_formats:
            for index_dtype in index_dtypes:
                for keep in keep_fractions:
                    mask = None if keep >= 1.0 else low_frequency_mask(block_shape, keep)
                    candidates.append(
                        CompressionSettings(
                            block_shape=block_shape,
                            float_format=float_format,
                            index_dtype=index_dtype,
                            pruning_mask=mask,
                        )
                    )
    return candidates


def _screening_error_estimate(array: np.ndarray, settings: CompressionSettings) -> float:
    """Cheap lower-ish estimate of the achievable L∞ error for screening.

    Uses the binning half-step of a single coefficient at the scale of the array's
    largest magnitude: any candidate whose *best case* already exceeds the target can
    be skipped without running the pipeline.  (Deliberately optimistic — screening
    must never discard a feasible candidate.)
    """
    scale = float(np.abs(array).max())
    if scale == 0.0:
        return 0.0
    radius = settings.index_radius
    return scale / (2.0 * radius) / np.sqrt(settings.block_size)


def tune_settings(
    array: np.ndarray,
    target_linf: float,
    candidates: Iterable[CompressionSettings] | None = None,
    *,
    sample_limit: int | None = 2**22,
    input_bits_per_element: int = 64,
) -> TuningResult:
    """Find the highest-ratio settings whose round-trip L∞ error meets ``target_linf``.

    Parameters
    ----------
    array:
        Representative data to tune on (the full array, or a representative chunk).
    target_linf:
        Maximum allowed absolute round-trip error.
    candidates:
        Candidate settings to consider; defaults to :func:`candidate_space` for the
        array's dimensionality.
    sample_limit:
        If the array has more elements than this, tuning is performed on a contiguous
        leading slab of approximately this many elements (keeps tuning cheap for very
        large inputs).  ``None`` disables sampling.
    input_bits_per_element:
        Width of the uncompressed elements used in the ratio objective.

    Returns
    -------
    TuningResult
        With ``best`` set to the winning settings, or ``None`` when no candidate met
        the target (callers may then fall back to lossless storage).
    """
    array = np.asarray(array, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot tune on an empty array")
    if not np.isfinite(target_linf) or target_linf <= 0:
        raise ValueError("target_linf must be a positive finite number")

    sample = array
    if sample_limit is not None and array.size > sample_limit:
        # take a leading slab along the first axis with roughly sample_limit elements
        per_slice = max(1, array.size // array.shape[0])
        n_slices = max(1, int(sample_limit // per_slice))
        sample = array[tuple([slice(0, n_slices)] + [slice(None)] * (array.ndim - 1))]

    if candidates is None:
        candidates = candidate_space(array.ndim)
    candidates = [c for c in candidates if c.ndim == array.ndim]
    if not candidates:
        raise ValueError("no candidate settings with matching dimensionality")

    # evaluate best-ratio candidates first so the first hit is close to optimal, but
    # keep evaluating cheaper-ratio candidates only while no hit has been found
    ordered = sorted(
        candidates,
        key=lambda c: -compression_ratio(c, array.shape, input_bits_per_element),
    )

    result = TuningResult(best=None, target_linf=float(target_linf))
    found_ratio: float | None = None
    for settings in ordered:
        ratio = compression_ratio(settings, array.shape, input_bits_per_element)
        if found_ratio is not None and ratio <= found_ratio:
            break  # candidates are ordered by ratio; nothing later can do better
        if _screening_error_estimate(sample, settings) > target_linf:
            continue
        compressor = Compressor(settings)
        try:
            error = float(np.abs(compressor.roundtrip(sample) - sample).max())
        except ValueError:
            continue  # e.g. non-finite values after float16 overflow
        meets = bool(np.isfinite(error) and error <= target_linf)
        result.evaluated.append(
            TuningCandidate(settings=settings, ratio=ratio,
                            measured_linf_error=error, meets_target=meets)
        )
        if meets and found_ratio is None:
            found_ratio = ratio

    best = result.best_candidate
    result.best = best.settings if best is not None else None
    return result
