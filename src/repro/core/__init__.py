"""Core PyBlaz reproduction: the block-transform compressor and compressed-space ops.

The public API mirrors the paper's architecture (§III):

* :class:`CompressionSettings` — block shape, working float format, bin-index type,
  orthonormal transform, and pruning mask.
* :class:`Compressor` — ``compress`` / ``decompress`` implementing the five-step
  pipeline (data-type conversion → blocking → orthonormal transform → binning →
  pruning) and its inverse.
* :class:`CompressedArray` — the compressed form ``{s, i, N, F}`` plus bookkeeping.
* ``repro.core.ops`` — the dozen compressed-space operations of Table I.
* :mod:`repro.core.codec` — bit-exact serialization and compression-ratio accounting.
* :mod:`repro.core.errors` — the §IV-D error bounds.

Typical usage::

    import numpy as np
    from repro import Compressor, CompressionSettings

    settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                   index_dtype="int16")
    compressor = Compressor(settings)
    compressed = compressor.compress(np.random.rand(40, 40, 66))
    round_tripped = compressor.decompress(compressed)
"""

from .autotune import TuningCandidate, TuningResult, candidate_space, tune_settings
from .blocking import block_array, crop_to_shape, pad_to_blocks, unblock_array
from .compressed import CompressedArray
from .compressor import Compressor
from .codec import (
    asymptotic_compression_ratio,
    compressed_size_bits,
    compression_ratio,
    deserialize,
    serialize,
)
from .errors import (
    binning_error_bound,
    block_l2_error,
    linf_error_bound,
    pruning_error,
)
from .pruning import (
    corner_pruning_mask,
    keep_all_mask,
    low_frequency_mask,
    top_k_mask,
)
from .settings import CompressionSettings
from .transforms import (
    Transform,
    dct_matrix,
    get_transform,
    haar_matrix,
    identity_matrix,
)

__all__ = [
    "CompressionSettings",
    "Compressor",
    "CompressedArray",
    "tune_settings",
    "candidate_space",
    "TuningResult",
    "TuningCandidate",
    "Transform",
    "get_transform",
    "dct_matrix",
    "haar_matrix",
    "identity_matrix",
    "block_array",
    "unblock_array",
    "pad_to_blocks",
    "crop_to_shape",
    "keep_all_mask",
    "low_frequency_mask",
    "corner_pruning_mask",
    "top_k_mask",
    "serialize",
    "deserialize",
    "compressed_size_bits",
    "compression_ratio",
    "asymptotic_compression_ratio",
    "binning_error_bound",
    "pruning_error",
    "linf_error_bound",
    "block_l2_error",
]
