"""Compression settings: the knobs of the PyBlaz pipeline.

A :class:`CompressionSettings` instance fixes everything about how an array is
compressed (§III-A): the working float format used after the data-type-conversion
step, the block shape used by the blocking step, the orthonormal transform, the
integer type used as bin indices, and the pruning mask.  The compression ratio is a
pure function of these settings and the input shape (§IV-C) — it does not depend on
the data — so the settings object also exposes the ratio computations through
:mod:`repro.core.codec`.

Two compressed arrays can only be combined by binary compressed-space operations
(addition, dot product, SSIM, ...) when they were produced under *compatible*
settings: same block shape, same transform, same index type and same pruning mask.
:meth:`CompressionSettings.is_compatible_with` captures that rule and the operations
in :mod:`repro.core.ops` enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from ..numerics import FloatFormat, resolve_format
from .exceptions import CodecError

__all__ = ["CompressionSettings", "SUPPORTED_INDEX_DTYPES"]

#: Integer dtypes accepted as bin-index types (§III-A(d)).
SUPPORTED_INDEX_DTYPES: tuple[np.dtype, ...] = (
    np.dtype(np.int8),
    np.dtype(np.int16),
    np.dtype(np.int32),
    np.dtype(np.int64),
)


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def _normalize_block_shape(block_shape: Iterable[int]) -> tuple[int, ...]:
    shape = tuple(int(s) for s in block_shape)
    if len(shape) == 0:
        raise CodecError("block shape must have at least one dimension")
    for extent in shape:
        if extent < 1:
            raise CodecError(f"block extents must be positive, got {shape}")
        if not _is_power_of_two(extent):
            raise CodecError(
                f"PyBlaz supports only power-of-two block extents (got {shape}); "
                "see paper §III-A(b)"
            )
    return shape


@dataclass(frozen=True)
class CompressionSettings:
    """Immutable description of a PyBlaz compression configuration.

    Parameters
    ----------
    block_shape:
        Block extents per dimension, each a power of two; may be non-hypercubic,
        e.g. ``(4, 16, 16)``.  The dimensionality of the arrays to compress must
        equal ``len(block_shape)``.
    float_format:
        Working precision used after the data-type-conversion step and for the
        stored per-block maxima ``N``.  One of ``bfloat16``/``float16``/``float32``/
        ``float64`` (:class:`repro.numerics.FloatFormat` or its name).
    index_dtype:
        Integer dtype used as the bin-index type (``int8`` … ``int64``).
    transform:
        Name of the orthonormal transform: ``"dct"`` (default), ``"haar"`` or
        ``"identity"``.
    pruning_mask:
        Boolean array shaped like ``block_shape``; ``True`` marks coefficient
        indices that are *kept*.  ``None`` means keep everything.
    backend:
        Name of the kernel backend executing the transform+binning hot loop
        (see :mod:`repro.kernels`): ``"reference"`` (default, bit-exact),
        ``"gemm"`` or ``"numba"``.  An execution detail, not a property of the
        compressed form — it is excluded from equality/compatibility and never
        serialized, so streams produced under any backend interoperate.
    """

    block_shape: tuple[int, ...]
    float_format: FloatFormat = field(default="float32")  # type: ignore[assignment]
    index_dtype: np.dtype = field(default=np.dtype(np.int16))
    transform: str = "dct"
    pruning_mask: np.ndarray | None = None
    backend: str = field(default="reference", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "block_shape", _normalize_block_shape(self.block_shape))
        object.__setattr__(self, "float_format", resolve_format(self.float_format))
        dtype = np.dtype(self.index_dtype)
        if dtype not in SUPPORTED_INDEX_DTYPES:
            raise CodecError(
                f"index_dtype must be one of {[str(d) for d in SUPPORTED_INDEX_DTYPES]}, "
                f"got {dtype}"
            )
        object.__setattr__(self, "index_dtype", dtype)
        transform = str(self.transform).lower()
        if transform not in ("dct", "haar", "identity"):
            raise CodecError(f"unknown transform {self.transform!r}")
        object.__setattr__(self, "transform", transform)
        backend = str(self.backend).lower()
        # imported lazily: repro.kernels registers the built-in backends on
        # import and must not be a module-level dependency of core.settings
        from ..kernels import available_backends

        if backend not in available_backends():
            raise CodecError(
                f"unknown kernel backend {self.backend!r}; registered backends: "
                f"{', '.join(available_backends())}"
            )
        object.__setattr__(self, "backend", backend)
        if self.pruning_mask is not None:
            mask = np.asarray(self.pruning_mask, dtype=bool)
            if mask.shape != self.block_shape:
                raise CodecError(
                    f"pruning mask shape {mask.shape} must equal block shape {self.block_shape}"
                )
            if not mask.any():
                raise CodecError("pruning mask must keep at least one coefficient")
            mask = mask.copy()
            mask.setflags(write=False)
            object.__setattr__(self, "pruning_mask", mask)

    # ------------------------------------------------------------------ derived
    @property
    def ndim(self) -> int:
        """Dimensionality of arrays this configuration compresses."""
        return len(self.block_shape)

    @property
    def block_size(self) -> int:
        """Total number of elements per block."""
        return int(np.prod(self.block_shape))

    @property
    def index_radius(self) -> int:
        """Bin index radius ``r = 2**(b-1) - 1`` (§III-A(d))."""
        bits = self.index_dtype.itemsize * 8
        return 2 ** (bits - 1) - 1

    @property
    def n_bins(self) -> int:
        """Number of bins: values distinguishable by the index type minus one."""
        return 2 * self.index_radius + 1

    @property
    def mask(self) -> np.ndarray:
        """Effective pruning mask (all-True when no pruning was requested)."""
        if self.pruning_mask is None:
            return np.ones(self.block_shape, dtype=bool)
        return self.pruning_mask

    @property
    def kept_per_block(self) -> int:
        """Number of coefficients kept per block after pruning."""
        return int(self.mask.sum())

    @property
    def first_coefficient_kept(self) -> bool:
        """Whether the DC (first) coefficient of each block survives pruning.

        Mean, variance, covariance, SSIM and the approximate Wasserstein distance
        all read the first coefficient of each block, so they require this.
        """
        return bool(self.mask[(0,) * self.ndim])

    @property
    def dc_scale(self) -> float:
        """Scale ``c = prod(sqrt(block extents))`` relating DC coefficients to block means."""
        return float(np.prod(np.sqrt(np.asarray(self.block_shape, dtype=np.float64))))

    # ------------------------------------------------------------------ helpers
    def block_grid_shape(self, array_shape: Iterable[int]) -> tuple[int, ...]:
        """Shape of the arrangement of blocks ``b = ceil(s / i)`` for ``array_shape``."""
        shape = tuple(int(s) for s in array_shape)
        if len(shape) != self.ndim:
            raise CodecError(
                f"array of dimensionality {len(shape)} cannot be compressed with "
                f"{self.ndim}-dimensional block shape {self.block_shape}"
            )
        if any(s < 1 for s in shape):
            raise CodecError(f"array shape must be positive, got {shape}")
        return tuple(-(-s // b) for s, b in zip(shape, self.block_shape))

    def padded_shape(self, array_shape: Iterable[int]) -> tuple[int, ...]:
        """Shape after zero-padding so every extent is a multiple of the block extent."""
        grid = self.block_grid_shape(array_shape)
        return tuple(g * b for g, b in zip(grid, self.block_shape))

    def n_blocks(self, array_shape: Iterable[int]) -> int:
        """Total number of blocks used for ``array_shape``."""
        return int(np.prod(self.block_grid_shape(array_shape)))

    def is_compatible_with(self, other: "CompressionSettings") -> bool:
        """Whether binary compressed-space operations may combine arrays from both settings."""
        return (
            self.block_shape == other.block_shape
            and self.index_dtype == other.index_dtype
            and self.transform == other.transform
            and np.array_equal(self.mask, other.mask)
        )

    def with_(self, **changes) -> "CompressionSettings":
        """Return a copy with the given fields replaced (dataclass ``replace`` helper)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable description used by experiment harnesses."""
        pruned = self.block_size - self.kept_per_block
        backend = "" if self.backend == "reference" else f" backend={self.backend}"
        return (
            f"block={'x'.join(map(str, self.block_shape))} "
            f"float={self.float_format.name} index={self.index_dtype.name} "
            f"transform={self.transform} pruned={pruned}/{self.block_size}{backend}"
        )
