"""The compressed array container (§III-B).

A :class:`CompressedArray` is the result of compression and the operand of every
compressed-space operation.  Following the paper, its essential contents are the
set ``{s, i, N, F}``:

* ``s`` — the original (uncompressed) shape,
* ``i`` — the block shape (carried via the :class:`CompressionSettings`),
* ``N`` — the biggest coefficient magnitude per block, shaped like the block grid,
* ``F`` — the flattened bin indices of the kept (unpruned) coefficients, one row per
  block,

plus everything needed for decompression: the pruning mask, the bin-index dtype, the
working float format and the transform name (all carried by the settings object).

The container is deliberately a thin, validated record: all algorithms live in
:class:`repro.core.compressor.Compressor` and :mod:`repro.core.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pruning import unflatten_kept
from .settings import CompressionSettings

__all__ = ["CompressedArray"]


@dataclass
class CompressedArray:
    """Compressed representation of an array.

    Attributes
    ----------
    settings:
        The :class:`CompressionSettings` used to produce this array.
    shape:
        Original array shape ``s``.
    maxima:
        Per-block biggest coefficient magnitude ``N`` (float64, shape = block grid).
    indices:
        Flattened kept bin indices ``F`` of shape ``(n_blocks, kept_per_block)`` with
        the settings' integer dtype.
    """

    settings: CompressionSettings
    shape: tuple[int, ...]
    maxima: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        self.shape = tuple(int(s) for s in self.shape)
        if len(self.shape) != self.settings.ndim:
            raise ValueError(
                f"shape {self.shape} dimensionality does not match settings "
                f"({self.settings.ndim}-dimensional blocks)"
            )
        maxima = np.asarray(self.maxima, dtype=np.float64)
        expected_grid = self.settings.block_grid_shape(self.shape)
        if maxima.shape != expected_grid:
            raise ValueError(
                f"maxima shape {maxima.shape} does not match block grid {expected_grid}"
            )
        self.maxima = maxima
        indices = np.asarray(self.indices)
        if indices.dtype != self.settings.index_dtype:
            raise ValueError(
                f"indices dtype {indices.dtype} does not match settings index dtype "
                f"{self.settings.index_dtype}"
            )
        expected_indices_shape = (self.n_blocks, self.settings.kept_per_block)
        if indices.shape != expected_indices_shape:
            raise ValueError(
                f"indices shape {indices.shape} does not match {expected_indices_shape}"
            )
        self.indices = indices

    # ------------------------------------------------------------------ geometry
    @property
    def ndim(self) -> int:
        """Dimensionality of the original array."""
        return len(self.shape)

    @property
    def block_shape(self) -> tuple[int, ...]:
        return self.settings.block_shape

    @property
    def grid_shape(self) -> tuple[int, ...]:
        """Shape of the block grid ``ceil(s / i)``."""
        return self.settings.block_grid_shape(self.shape)

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.grid_shape))

    @property
    def padded_shape(self) -> tuple[int, ...]:
        """Shape of the zero-padded array the blocks tile exactly."""
        return self.settings.padded_shape(self.shape)

    @property
    def n_elements(self) -> int:
        """Number of elements of the original (uncropped) array."""
        return int(np.prod(self.shape))

    @property
    def n_padded_elements(self) -> int:
        """Number of elements of the padded array (what reductions actually see)."""
        return int(np.prod(self.padded_shape))

    # ------------------------------------------------------------------ views
    def specified_coefficients(self) -> np.ndarray:
        """Recover the specified (kept) coefficients ``Ĉ = N ⊙ F ⊘ r`` (Algorithm 3).

        Returns a blocked float64 array of shape ``(grid..., block...)`` with zeros at
        pruned coefficient positions.
        """
        blocked_indices = unflatten_kept(
            self.indices, self.settings.mask, self.grid_shape, fill_value=0,
            dtype=self.settings.index_dtype,
        )
        radius = float(self.settings.index_radius)
        expand = self.maxima.reshape(self.maxima.shape + (1,) * self.settings.ndim)
        return blocked_indices.astype(np.float64) * (expand / radius)

    def first_coefficients(self) -> np.ndarray:
        """The DC (first) coefficient of every block, shaped like the block grid.

        These equal ``block mean * prod(sqrt(block extents))`` up to binning error,
        and are the basis of the mean, variance, covariance and Wasserstein
        operations.  Raises if the DC coefficient was pruned away.
        """
        if not self.settings.first_coefficient_kept:
            raise ValueError(
                "the first coefficient of each block was pruned away; "
                "mean-based operations are unavailable under this pruning mask"
            )
        coefficients = self.specified_coefficients()
        dc_index = (Ellipsis,) + (0,) * self.settings.ndim
        return coefficients[dc_index]

    def blockwise_means(self) -> np.ndarray:
        """Block-wise means of the (padded) array, shaped like the block grid."""
        return self.first_coefficients() / self.settings.dc_scale

    # ------------------------------------------------------------------ misc
    def copy(self) -> "CompressedArray":
        """Deep copy (settings are immutable and shared)."""
        return CompressedArray(
            settings=self.settings,
            shape=self.shape,
            maxima=self.maxima.copy(),
            indices=self.indices.copy(),
        )

    def is_compatible_with(self, other: "CompressedArray") -> bool:
        """Whether binary compressed-space operations may combine ``self`` and ``other``."""
        return (
            isinstance(other, CompressedArray)
            and self.shape == other.shape
            and self.settings.is_compatible_with(other.settings)
        )

    def allclose(self, other: "CompressedArray", rtol: float = 1e-9, atol: float = 0.0) -> bool:
        """Structural near-equality of two compressed arrays (same settings family)."""
        return (
            self.is_compatible_with(other)
            and np.allclose(self.maxima, other.maxima, rtol=rtol, atol=atol)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedArray(shape={self.shape}, {self.settings.describe()}, "
            f"blocks={self.n_blocks})"
        )

    # ------------------------------------------------------------------ operators
    # Arithmetic operators delegate to the compressed-space operations so that
    # compressed arrays compose like ordinary arrays without ever decompressing:
    # ``-a``, ``a + b``, ``a - b``, ``a + 2.0``, ``3.0 * a``, ``a / 4``.
    def __neg__(self) -> "CompressedArray":
        from .ops.linear import negate

        return negate(self)

    def __add__(self, other) -> "CompressedArray":
        from .ops.linear import add, add_scalar

        if isinstance(other, CompressedArray):
            return add(self, other)
        if isinstance(other, (int, float, np.integer, np.floating)):
            return add_scalar(self, float(other))
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other) -> "CompressedArray":
        from .ops.linear import add_scalar, subtract

        if isinstance(other, CompressedArray):
            return subtract(self, other)
        if isinstance(other, (int, float, np.integer, np.floating)):
            return add_scalar(self, -float(other))
        return NotImplemented

    def __rsub__(self, other) -> "CompressedArray":
        from .ops.linear import add_scalar, multiply_scalar

        if isinstance(other, (int, float, np.integer, np.floating)):
            return add_scalar(multiply_scalar(self, -1.0), float(other))
        return NotImplemented

    def __mul__(self, other) -> "CompressedArray":
        from .ops.linear import multiply_scalar

        if isinstance(other, (int, float, np.integer, np.floating)):
            return multiply_scalar(self, float(other))
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other) -> "CompressedArray":
        from .ops.linear import multiply_scalar

        if isinstance(other, (int, float, np.integer, np.floating)):
            divisor = float(other)
            if divisor == 0.0:
                raise ZeroDivisionError("division of a compressed array by zero")
            return multiply_scalar(self, 1.0 / divisor)
        return NotImplemented
