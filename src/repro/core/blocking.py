"""Blocking and unblocking of arbitrary-dimensional arrays (§III-A(b)).

Blocking reshapes an input array of shape ``s`` into an array of blocks so that every
subsequent pipeline step can operate on blocks independently (which is what makes the
pipeline parallel-friendly).  The input is first zero-padded so each extent becomes a
multiple of the corresponding block extent; with block shape ``i`` and block-grid
shape ``b = ceil(s / i)`` the blocked array has shape ``b + i`` (grid axes first, then
intra-block axes), e.g. a ``(3, 224, 224)`` array blocked with ``(4, 4, 4)`` becomes
``(1, 56, 56, 4, 4, 4)``.

Blocking is the only exactly invertible step of the pipeline; :func:`unblock_array`
followed by :func:`crop_to_shape` recovers the original array bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "pad_to_blocks",
    "block_array",
    "unblock_array",
    "crop_to_shape",
    "blocked_shape",
]


def blocked_shape(array_shape: Sequence[int], block_shape: Sequence[int]) -> tuple[int, ...]:
    """Return the shape of the blocked array: block-grid extents followed by block extents."""
    if len(array_shape) != len(block_shape):
        raise ValueError(
            f"array dimensionality {len(array_shape)} does not match block "
            f"dimensionality {len(block_shape)}"
        )
    grid = tuple(-(-int(s) // int(b)) for s, b in zip(array_shape, block_shape))
    return grid + tuple(int(b) for b in block_shape)


def pad_to_blocks(array: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Zero-pad ``array`` so each extent is a multiple of the block extent.

    Padding is appended at the high-index end of each axis, matching the paper's
    description ("padded with zeros such that its size in each direction is a
    multiple of the block size").
    """
    array = np.asarray(array)
    if array.ndim != len(block_shape):
        raise ValueError(
            f"array dimensionality {array.ndim} does not match block "
            f"dimensionality {len(block_shape)}"
        )
    pad_widths = []
    for extent, block_extent in zip(array.shape, block_shape):
        block_extent = int(block_extent)
        remainder = extent % block_extent
        pad_widths.append((0, 0 if remainder == 0 else block_extent - remainder))
    if all(high == 0 for _, high in pad_widths):
        return array
    return np.pad(array, pad_widths, mode="constant", constant_values=0)


def block_array(array: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Block ``array`` into shape ``(grid..., block...)`` after zero padding.

    The result's first ``ndim`` axes index the block grid and the last ``ndim`` axes
    index positions within a block.
    """
    array = np.asarray(array)
    padded = pad_to_blocks(array, block_shape)
    ndim = padded.ndim
    grid = tuple(padded.shape[d] // int(block_shape[d]) for d in range(ndim))
    # reshape to interleaved (g0, b0, g1, b1, ...) then move all block axes to the end
    interleaved_shape = tuple(
        val for d in range(ndim) for val in (grid[d], int(block_shape[d]))
    )
    reshaped = padded.reshape(interleaved_shape)
    grid_axes = tuple(range(0, 2 * ndim, 2))
    block_axes = tuple(range(1, 2 * ndim, 2))
    return np.transpose(reshaped, grid_axes + block_axes)


def unblock_array(blocked: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`block_array`: merge blocks back into a padded array.

    ``blocked`` must have shape ``(grid..., block...)``.  The result has the padded
    shape; use :func:`crop_to_shape` to recover the original extents.
    """
    blocked = np.asarray(blocked)
    ndim = len(block_shape)
    if blocked.ndim != 2 * ndim:
        raise ValueError(
            f"blocked array must have {2 * ndim} axes (grid + block), got {blocked.ndim}"
        )
    grid = blocked.shape[:ndim]
    blocks = blocked.shape[ndim:]
    if tuple(blocks) != tuple(int(b) for b in block_shape):
        raise ValueError(
            f"trailing axes {blocks} do not match block shape {tuple(block_shape)}"
        )
    # invert the transpose used in block_array: (g..., b...) -> (g0, b0, g1, b1, ...)
    order = []
    for d in range(ndim):
        order.append(d)
        order.append(ndim + d)
    interleaved = np.transpose(blocked, order)
    padded_shape = tuple(grid[d] * blocks[d] for d in range(ndim))
    return interleaved.reshape(padded_shape)


def crop_to_shape(array: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Crop ``array`` down to ``shape`` (removing padding appended at the high end)."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValueError(
            f"cannot crop array of dimensionality {array.ndim} to shape {tuple(shape)}"
        )
    slices = tuple(slice(0, int(extent)) for extent in shape)
    for have, want in zip(array.shape, shape):
        if have < want:
            raise ValueError(
                f"cannot crop: array extent {have} is smaller than requested {want}"
            )
    return array[slices]
