"""Binning and unbinning of transform coefficients (§III-A(d)).

Binning coarsens the coefficient space so each coefficient can be stored as a short
integer.  Per block ``k`` the largest coefficient magnitude ``N_k = ||C_k||_inf`` is
recorded; coefficients are then mapped to integer bin indices

    ``I_k = round(r * C_k / N_k)``

where ``r = 2**(bits-1) - 1`` is the index-type radius.  Unbinning multiplies back:
``C_k ≈ I_k * N_k / r``.  The maximum per-coefficient error introduced is
``N_k / (2 r + 1)`` — half a bin width (§IV-D) — which :mod:`repro.core.errors`
exposes as a bound and the tests verify.

All functions operate on blocked arrays shaped ``(grid..., block...)`` and vectorize
over every block simultaneously.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "index_radius",
    "block_maxima",
    "scale_to_indices",
    "bin_coefficients",
    "unbin_indices",
]


def index_radius(index_dtype: np.dtype) -> int:
    """Radius ``r = 2**(bits-1) - 1`` of an integer bin-index type."""
    dtype = np.dtype(index_dtype)
    if dtype.kind != "i":
        raise ValueError(f"bin index type must be a signed integer dtype, got {dtype}")
    bits = dtype.itemsize * 8
    return 2 ** (bits - 1) - 1


def block_maxima(coefficients: np.ndarray, block_ndim: int) -> np.ndarray:
    """Per-block maximum coefficient magnitude ``N_k = ||C_k||_inf``.

    Parameters
    ----------
    coefficients:
        Blocked coefficient array of shape ``(grid..., block...)``.
    block_ndim:
        Number of trailing block axes.

    Returns
    -------
    np.ndarray
        Array of shape ``grid`` holding the maximum absolute coefficient per block.
    """
    coefficients = np.asarray(coefficients)
    if block_ndim < 1 or block_ndim > coefficients.ndim:
        raise ValueError(f"invalid block_ndim {block_ndim} for array of ndim {coefficients.ndim}")
    block_axes = tuple(range(coefficients.ndim - block_ndim, coefficients.ndim))
    return np.abs(coefficients).max(axis=block_axes)


def scale_to_indices(
    coefficients: np.ndarray,
    maxima: np.ndarray,
    block_ndim: int,
    index_dtype: np.dtype,
) -> np.ndarray:
    """Map blocked coefficients to integer bin indices given their block maxima.

    This is the binning core shared by the vectorized path
    (:func:`bin_coefficients`) and the chunked execution backends in
    :mod:`repro.parallel`, so both stay bit-identical by construction.  ``maxima``
    must be shaped like the leading (grid) axes of ``coefficients``.
    """
    dtype = np.dtype(index_dtype)
    radius = index_radius(dtype)
    coefficients = np.asarray(coefficients, dtype=np.float64)
    maxima = np.asarray(maxima, dtype=np.float64)
    # Broadcast maxima over the block axes; guard zero maxima against division by zero.
    expand = maxima.reshape(maxima.shape + (1,) * block_ndim)
    safe = np.where(expand == 0.0, 1.0, expand)
    # divide before scaling: |coefficients / safe| <= 1, so the product cannot
    # overflow even for 64-bit radii or subnormal block maxima
    scaled = (coefficients / safe) * float(radius)
    # round half away from zero would also be acceptable; numpy's rint (round half to
    # even) matches torch.round used by the reference implementation.
    indices = np.rint(scaled)
    # float64 cannot represent 2**63 - 1 exactly, so clamp int64 indices to the
    # largest exactly-representable value below the radius before casting
    limit = float(radius) if dtype.itemsize < 8 else float(2**63 - 1024)
    np.clip(indices, -limit, limit, out=indices)
    return indices.astype(dtype)


def bin_coefficients(
    coefficients: np.ndarray,
    block_ndim: int,
    index_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin blocked coefficients into integer indices.

    Returns ``(maxima, indices)`` where ``maxima`` has shape ``grid`` and ``indices``
    has the same shape as ``coefficients`` with dtype ``index_dtype``.  Blocks whose
    maximum is zero (all-zero blocks, e.g. pure padding) produce all-zero indices and
    a recorded maximum of zero so that unbinning reproduces the zeros exactly.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    maxima = block_maxima(coefficients, block_ndim)
    indices = scale_to_indices(coefficients, maxima, block_ndim, index_dtype)
    return maxima, indices


def unbin_indices(
    indices: np.ndarray,
    maxima: np.ndarray,
    block_ndim: int,
) -> np.ndarray:
    """Recover (approximate) coefficients from bin indices: ``C ≈ I * N / r``."""
    indices = np.asarray(indices)
    if indices.dtype.kind != "i":
        raise ValueError(f"indices must be an integer array, got dtype {indices.dtype}")
    radius = index_radius(indices.dtype)
    maxima = np.asarray(maxima, dtype=np.float64)
    if maxima.shape != indices.shape[: indices.ndim - block_ndim]:
        raise ValueError(
            f"maxima shape {maxima.shape} does not match block grid "
            f"{indices.shape[: indices.ndim - block_ndim]}"
        )
    expand = maxima.reshape(maxima.shape + (1,) * block_ndim)
    return indices.astype(np.float64) * (expand / float(radius))
