"""The PyBlaz compression pipeline (§III-A) and its inverse.

Compression consists of five steps:

1. **Data type conversion** — round the input to the working float format
   (bfloat16/float16/float32/float64); see :mod:`repro.numerics`.
2. **Blocking** — zero-pad and reshape into ``(grid..., block...)``;
   see :mod:`repro.core.blocking`.
3. **Orthonormal transform** — DCT (default), Haar or identity applied separably to
   every block; see :mod:`repro.core.transforms`.
4. **Binning** — per-block max-magnitude normalisation to integer bin indices;
   see :mod:`repro.core.binning`.
5. **Pruning** — keep only the coefficient indices selected by the pruning mask and
   flatten them; see :mod:`repro.core.pruning`.

Decompression is the same steps in reverse; only blocking is exactly invertible, the
other steps contribute the error budget analysed in :mod:`repro.core.errors`.

The heavy steps (transform and binning) are expressed as bulk vectorized numpy
operations over all blocks at once — the stand-in for the paper's GPU execution.  An
optional :class:`repro.parallel.BlockExecutor` can be supplied to chunk the block
grid across worker threads for very large arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..kernels import get_backend
from ..numerics import round_to_format
from .blocking import block_array, crop_to_shape, unblock_array
from .compressed import CompressedArray
from .exceptions import CodecError
from .pruning import flatten_kept, unflatten_kept
from .settings import CompressionSettings
from .transforms import get_transform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import BlockExecutor

__all__ = ["Compressor"]


class Compressor:
    """Compresses and decompresses arrays under a fixed :class:`CompressionSettings`.

    Parameters
    ----------
    settings:
        The compression configuration.
    executor:
        Optional :class:`repro.parallel.BlockExecutor`; when given, the transform and
        binning steps are applied chunk-by-chunk over the block grid, possibly in
        worker threads.  Results are identical to the vectorized path under the
        bit-exact ``reference`` backend.
    backend:
        Optional kernel-backend name (see :mod:`repro.kernels`) overriding
        ``settings.backend``.  Precedence: an executor constructed with its own
        backend wins, then this argument, then the settings field (default
        ``"reference"``).

    Notes
    -----
    A single :class:`Compressor` may compress arrays of any shape whose
    dimensionality matches the settings' block shape.  Arrays compressed with the
    same settings (and shape) can be combined with the operations in
    :mod:`repro.core.ops`.
    """

    def __init__(
        self,
        settings: CompressionSettings,
        executor: "BlockExecutor | None" = None,
        backend: str | None = None,
    ):
        self.settings = settings
        self.transform = get_transform(settings.transform, settings.block_shape)
        self.executor = executor
        self.backend = str(backend).lower() if backend is not None else settings.backend
        self.kernel = get_backend(self.backend)

    # ------------------------------------------------------------------ compression
    def compress(self, array: np.ndarray) -> CompressedArray:
        """Compress ``array`` and return its :class:`CompressedArray` representation."""
        settings = self.settings
        array = np.asarray(array)
        if array.ndim != settings.ndim:
            raise CodecError(
                f"array of dimensionality {array.ndim} cannot be compressed with "
                f"{settings.ndim}-dimensional settings {settings.block_shape}"
            )
        if array.size == 0:
            raise CodecError("cannot compress an empty array")
        # Check finiteness on the input's native dtype — no float64 staging copy;
        # round_to_format below is then the single materialisation of the array.
        if array.dtype.kind not in "fiu":
            array = np.asarray(array, dtype=np.float64)
        if not np.all(np.isfinite(array)):
            raise CodecError(
                "input contains non-finite values; PyBlaz's binning step cannot "
                "represent infinities or NaNs"
            )

        # Step 1: data type conversion (precision lowering).
        lowered = round_to_format(array, settings.float_format)
        if not np.all(np.isfinite(lowered)):
            # e.g. values beyond float16's dynamic range overflow to infinity during
            # the conversion step (§V-B's float16-vs-bfloat16 discussion); refuse to
            # bin infinities rather than silently producing NaN indices
            raise FloatingPointError(
                f"data overflows the {settings.float_format.name} working format; "
                "choose a wider float format (e.g. bfloat16 or float32)"
            )

        # Step 2: blocking (zero-pad + reshape).
        blocked = block_array(lowered, settings.block_shape)

        # Steps 3-4: the fused transform+binning kernel, optionally chunked.
        if self.executor is not None:
            maxima, indices_blocked = self.executor.transform_and_bin(
                blocked, self.transform, settings, kernel=self.kernel
            )
        else:
            maxima, indices_blocked = self.kernel.transform_and_bin(
                blocked, self.transform, settings
            )

        # The stored per-block maxima live at the working float precision (§IV-C
        # counts f bits per block for N); round them accordingly.
        maxima = round_to_format(maxima, settings.float_format)

        # Step 5: pruning + flattening.
        flattened = flatten_kept(indices_blocked, settings.mask)

        return CompressedArray(
            settings=settings,
            shape=array.shape,
            maxima=maxima,
            indices=flattened,
        )

    # ------------------------------------------------------------------ decompression
    def decompress(self, compressed: CompressedArray) -> np.ndarray:
        """Reconstruct an array from its compressed representation.

        The result is a float64 array with the original shape; its values carry the
        compression error introduced by the lossy pipeline steps.
        """
        settings = compressed.settings
        transform = get_transform(settings.transform, settings.block_shape)

        # Undo pruning: place kept indices back into blocks, zeros elsewhere.
        blocked_indices = unflatten_kept(
            compressed.indices,
            settings.mask,
            compressed.grid_shape,
            fill_value=0,
            dtype=settings.index_dtype,
        )

        # Undo binning: scale indices back to coefficients.
        radius = float(settings.index_radius)
        expand = compressed.maxima.reshape(compressed.maxima.shape + (1,) * settings.ndim)
        coefficients = blocked_indices.astype(np.float64) * (expand / radius)

        # Undo the transform, optionally chunked.
        if self.executor is not None:
            blocked = self.executor.inverse_transform(
                coefficients, transform, settings, kernel=self.kernel
            )
        else:
            blocked = self.kernel.inverse_transform(coefficients, transform, settings)

        # Undo blocking and padding.
        padded = unblock_array(blocked, settings.block_shape)
        return crop_to_shape(padded, compressed.shape)

    # ------------------------------------------------------------------ conveniences
    def roundtrip(self, array: np.ndarray) -> np.ndarray:
        """Compress then decompress ``array`` (useful for error measurements)."""
        return self.decompress(self.compress(array))

    def compression_error(self, array: np.ndarray) -> np.ndarray:
        """Pointwise error ``decompress(compress(array)) - array`` as float64."""
        return self.roundtrip(array) - np.asarray(array, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compressor({self.settings.describe()})"
