"""Pruning masks and flattening of specified coefficient indices (§III-A(e)).

Pruning selects which coefficient indices (and hence which spatial frequencies) are
kept in the compressed representation.  A pruning mask is a boolean array shaped like
the block shape; ``True`` marks kept indices.  After pruning, the kept indices of
every block are flattened into a dense sequence ``F`` (one row per block); because
the mask is saved with the compressed array, the sequence can be unflattened with
zeros in place of the pruned indices.

Besides the low-level flatten/unflatten operations this module provides the mask
constructors used throughout the paper and experiments:

* :func:`keep_all_mask` — no pruning (the Fig 5 configuration).
* :func:`low_frequency_mask` — keep the low-frequency hyper-triangle (a generalised
  "keep the top-left corner" rule), parameterised by the fraction kept.
* :func:`corner_pruning_mask` — drop a hyper-rectangle at the high-frequency corner,
  the rule the original Blaz uses (drop the 6×6 square of an 8×8 block).
* :func:`top_k_mask` — keep the ``k`` lowest-frequency indices in zigzag order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "keep_all_mask",
    "low_frequency_mask",
    "corner_pruning_mask",
    "top_k_mask",
    "flatten_kept",
    "unflatten_kept",
    "validate_mask",
]


def validate_mask(mask: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Validate and normalise a pruning mask: boolean, block-shaped, keeps >= 1 index."""
    mask = np.asarray(mask, dtype=bool)
    expected = tuple(int(b) for b in block_shape)
    if mask.shape != expected:
        raise ValueError(f"pruning mask shape {mask.shape} must equal block shape {expected}")
    if not mask.any():
        raise ValueError("pruning mask must keep at least one coefficient")
    return mask


def keep_all_mask(block_shape: Sequence[int]) -> np.ndarray:
    """Mask keeping every coefficient (no pruning)."""
    return np.ones(tuple(int(b) for b in block_shape), dtype=bool)


def _frequency_index_sum(block_shape: Sequence[int]) -> np.ndarray:
    """Array whose entry at index ``(i0, i1, ...)`` is ``i0 + i1 + ...``.

    With the DCT the coefficient at multi-index ``i`` corresponds to spatial
    frequency growing with each coordinate, so the sum of coordinates is a natural
    "total frequency" ordering used by the low-frequency and top-k masks.
    """
    shape = tuple(int(b) for b in block_shape)
    grids = np.meshgrid(*[np.arange(extent) for extent in shape], indexing="ij")
    total = np.zeros(shape, dtype=np.int64)
    for grid in grids:
        total = total + grid
    return total


def low_frequency_mask(block_shape: Sequence[int], keep_fraction: float) -> np.ndarray:
    """Keep approximately ``keep_fraction`` of coefficients, lowest total frequency first.

    The DC coefficient is always kept.  ``keep_fraction`` must lie in ``(0, 1]``.
    The actual kept count is ``max(1, round(keep_fraction * block size))``.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    shape = tuple(int(b) for b in block_shape)
    size = int(np.prod(shape))
    kept = max(1, int(round(keep_fraction * size)))
    return top_k_mask(shape, kept)


def top_k_mask(block_shape: Sequence[int], k: int) -> np.ndarray:
    """Keep the ``k`` coefficients with the lowest total frequency (ties broken by index).

    ``k`` is clipped to ``[1, block size]``.  The DC coefficient (index all-zeros)
    always has the lowest total frequency and is therefore always kept.
    """
    shape = tuple(int(b) for b in block_shape)
    size = int(np.prod(shape))
    k = int(np.clip(k, 1, size))
    total = _frequency_index_sum(shape).ravel()
    # stable ordering: total frequency, then flat index
    order = np.lexsort((np.arange(size), total))
    mask = np.zeros(size, dtype=bool)
    mask[order[:k]] = True
    return mask.reshape(shape)


def corner_pruning_mask(block_shape: Sequence[int], drop_shape: Sequence[int]) -> np.ndarray:
    """Drop a hyper-rectangle of size ``drop_shape`` at the high-index corner.

    This generalises Blaz's rule of dropping the 6×6 square in the high-frequency
    corner of each 8×8 block: ``corner_pruning_mask((8, 8), (6, 6))``.
    """
    shape = tuple(int(b) for b in block_shape)
    drop = tuple(int(d) for d in drop_shape)
    if len(drop) != len(shape):
        raise ValueError("drop_shape must have the same dimensionality as block_shape")
    for d, s in zip(drop, shape):
        if d < 0 or d > s:
            raise ValueError(f"drop extents {drop} must lie within block shape {shape}")
    mask = np.ones(shape, dtype=bool)
    if all(d > 0 for d in drop):
        corner = tuple(slice(s - d, s) for s, d in zip(shape, drop))
        mask[corner] = False
    if not mask.any():
        raise ValueError("corner pruning would drop every coefficient")
    return mask


def flatten_kept(blocked: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Flatten the kept (mask-True) entries of every block into a 2-D array.

    Parameters
    ----------
    blocked:
        Array of shape ``(grid..., block...)``.
    mask:
        Boolean array of the block shape.

    Returns
    -------
    np.ndarray
        Array of shape ``(n_blocks, kept_per_block)`` whose rows hold each block's
        kept entries in C order of the block indices.
    """
    blocked = np.asarray(blocked)
    mask = np.asarray(mask, dtype=bool)
    block_ndim = mask.ndim
    if blocked.shape[-block_ndim:] != mask.shape:
        raise ValueError(
            f"trailing axes {blocked.shape[-block_ndim:]} do not match mask shape {mask.shape}"
        )
    grid_shape = blocked.shape[:-block_ndim]
    n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
    flat_blocks = blocked.reshape(n_blocks, -1)
    if mask.all():
        # keep-everything masks make the boolean gather an identity; skip the
        # full-array fancy-indexing copy (the common unpruned configuration)
        return flat_blocks
    return flat_blocks[:, mask.ravel()]


def unflatten_kept(
    flat: np.ndarray,
    mask: np.ndarray,
    grid_shape: Sequence[int],
    fill_value: float = 0,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Inverse of :func:`flatten_kept`: rebuild blocked data with ``fill_value`` where pruned.

    Parameters
    ----------
    flat:
        Array of shape ``(n_blocks, kept_per_block)``.
    mask:
        Boolean array of the block shape (same one used for flattening).
    grid_shape:
        Shape of the block grid.
    fill_value:
        Value written at pruned positions (0 — pruning rounds them to zero).
    dtype:
        Output dtype; defaults to ``flat.dtype``.
    """
    flat = np.asarray(flat)
    mask = np.asarray(mask, dtype=bool)
    grid_shape = tuple(int(g) for g in grid_shape)
    n_blocks = int(np.prod(grid_shape)) if grid_shape else 1
    kept = int(mask.sum())
    if flat.shape != (n_blocks, kept):
        raise ValueError(
            f"flat array shape {flat.shape} does not match (n_blocks={n_blocks}, kept={kept})"
        )
    out_dtype = dtype if dtype is not None else flat.dtype
    if kept == mask.size:
        # nothing was pruned: every position is filled from flat, so the
        # scatter is a reshape (plus at most a dtype cast)
        return flat.astype(out_dtype, copy=False).reshape(grid_shape + mask.shape)
    blocks = np.full((n_blocks, mask.size), fill_value, dtype=out_dtype)
    blocks[:, mask.ravel()] = flat
    return blocks.reshape(grid_shape + mask.shape)
