"""Shared exception types for the compression stack.

Kept in a leaf module (no intra-package imports) so that settings, compressor,
baselines and the codec adapters can all raise the same types without import
cycles; :mod:`repro.core.errors` re-exports :class:`CodecError` next to the
error-bound analysis, which is where user code is documented to find it.
"""

from __future__ import annotations

__all__ = ["CodecError", "IntegrityError"]


class CodecError(ValueError):
    """A codec was given an invalid dtype, shape, or parameter.

    Every compressor in the repository — the core PyBlaz pipeline and all the
    baseline codecs — raises this one type for input/parameter validation, so
    callers iterating :func:`repro.codecs.available_codecs` can handle failures
    uniformly, and the CLI can map it to a dedicated exit code (3).

    Subclasses :class:`ValueError` so code written against the pre-registry
    interfaces (which raised a mix of ``ValueError``/``TypeError``) keeps
    working unchanged.
    """


class IntegrityError(CodecError):
    """Stored bytes failed an integrity check (checksum or length mismatch).

    Raised by :class:`repro.streaming.CompressedStore` when a version-3 chunk
    record (or the chunk table itself) does not match the checksum the writer
    recorded — a flipped bit, a short read, a torn write.  The message always
    names the store path and, for chunk records, the chunk index, which the
    ``repro verify-store`` CLI and the repair path rely on.

    Subclasses :class:`CodecError`, so every existing "corrupt store → exit 3"
    contract keeps holding; callers that care about the *detected corruption*
    case specifically (rather than any codec failure) can catch this type and
    read :attr:`path` / :attr:`chunk_index`.

    Attributes
    ----------
    path:
        The store file the corrupt bytes were read from (string, or None when
        unknown).
    chunk_index:
        Index of the corrupt chunk record, or ``None`` when the chunk table
        itself failed verification.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 chunk_index: int | None = None):
        super().__init__(message)
        self.path = path
        self.chunk_index = chunk_index
