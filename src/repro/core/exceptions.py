"""Shared exception types for the compression stack.

Kept in a leaf module (no intra-package imports) so that settings, compressor,
baselines and the codec adapters can all raise the same types without import
cycles; :mod:`repro.core.errors` re-exports :class:`CodecError` next to the
error-bound analysis, which is where user code is documented to find it.
"""

from __future__ import annotations

__all__ = ["CodecError"]


class CodecError(ValueError):
    """A codec was given an invalid dtype, shape, or parameter.

    Every compressor in the repository — the core PyBlaz pipeline and all the
    baseline codecs — raises this one type for input/parameter validation, so
    callers iterating :func:`repro.codecs.available_codecs` can handle failures
    uniformly, and the CLI can map it to a dedicated exit code (3).

    Subclasses :class:`ValueError` so code written against the pre-registry
    interfaces (which raised a mix of ``ValueError``/``TypeError``) keeps
    working unchanged.
    """
