"""Serialization of compressed arrays and compression-ratio accounting (§IV-C).

The stored components of a compressed array are, following the paper:

* the floating-point and integer types, specified in 4 bits,
* the original shape ``s`` (64 bits per dimension),
* a marker for the end of ``s`` (up to 64 bits),
* the block shape ``i`` (64 bits per dimension),
* the pruning mask ``P`` flattened (``prod(i)`` bits),
* the per-block maxima ``N`` flattened (``f`` bits each, ``prod(ceil(s ⊘ i))`` blocks),
* the kept bin indices ``F`` (``i_bits * sum(P)`` bits per block).

Two kinds of sizes are exposed: the *accounting* size of §IV-C (used for the
compression-ratio figures of the paper, e.g. the ≈2.91 and ≈10.66 worked examples)
and the *actual* byte size of the serialized stream produced by :func:`serialize`,
which includes a small fixed header and byte-alignment overhead.

The byte format is self-describing: :func:`deserialize` reconstructs the
:class:`CompressedArray` (including its :class:`CompressionSettings`) from the bytes
alone, which the file-level round-trip tests exercise.
"""

from __future__ import annotations

import struct

import numpy as np

from ..numerics import BFLOAT16, FLOAT16, FLOAT32, FLOAT64, FloatFormat
from .compressed import CompressedArray
from .exceptions import CodecError
from .settings import CompressionSettings

__all__ = [
    "stored_component_bits",
    "compressed_size_bits",
    "compression_ratio",
    "asymptotic_compression_ratio",
    "pack_floats",
    "unpack_floats",
    "float_bytes",
    "pack_type_codes",
    "unpack_type_codes",
    "pack_block_geometry",
    "unpack_block_geometry",
    "serialize",
    "deserialize",
    "save",
    "load",
]

_MAGIC = b"PBLZ"
_VERSION = 2

_FLOAT_CODES: dict[str, int] = {"bfloat16": 0, "float16": 1, "float32": 2, "float64": 3}
_FLOAT_BY_CODE: dict[int, FloatFormat] = {0: BFLOAT16, 1: FLOAT16, 2: FLOAT32, 3: FLOAT64}
_INDEX_CODES: dict[str, int] = {"int8": 0, "int16": 1, "int32": 2, "int64": 3}
_INDEX_BY_CODE: dict[int, np.dtype] = {
    0: np.dtype(np.int8),
    1: np.dtype(np.int16),
    2: np.dtype(np.int32),
    3: np.dtype(np.int64),
}
_TRANSFORM_CODES: dict[str, int] = {"dct": 0, "haar": 1, "identity": 2}
_TRANSFORM_BY_CODE = {v: k for k, v in _TRANSFORM_CODES.items()}


# --------------------------------------------------------------------------- accounting
def stored_component_bits(
    settings: CompressionSettings, array_shape: tuple[int, ...]
) -> dict[str, int]:
    """Bit count of each stored component for ``array_shape`` under ``settings``.

    Follows the component list of §IV-C exactly; the returned dict has keys
    ``type_tags``, ``shape``, ``shape_marker``, ``block_shape``, ``pruning_mask``,
    ``maxima`` and ``indices``.
    """
    ndim = len(array_shape)
    n_blocks = settings.n_blocks(array_shape)
    f_bits = settings.float_format.storage_bits
    i_bits = settings.index_dtype.itemsize * 8
    kept = settings.kept_per_block
    return {
        "type_tags": 4,
        "shape": 64 * ndim,
        "shape_marker": 64,
        "block_shape": 64 * ndim,
        "pruning_mask": settings.block_size,
        "maxima": f_bits * n_blocks,
        "indices": i_bits * kept * n_blocks,
    }


def compressed_size_bits(settings: CompressionSettings, array_shape: tuple[int, ...]) -> int:
    """Total stored size in bits per the §IV-C accounting."""
    return int(sum(stored_component_bits(settings, array_shape).values()))


def compression_ratio(
    settings: CompressionSettings,
    array_shape: tuple[int, ...],
    input_bits_per_element: int = 64,
) -> float:
    """Exact compression ratio ``(u · Πs) / stored bits`` for a finite array.

    ``input_bits_per_element`` is ``u`` in the paper's formula — the width of the
    uncompressed elements (64 for FP64 inputs).
    """
    numerator = float(input_bits_per_element) * float(np.prod(array_shape))
    return numerator / float(compressed_size_bits(settings, array_shape))


def asymptotic_compression_ratio(
    settings: CompressionSettings,
    array_shape: tuple[int, ...],
    input_bits_per_element: int = 64,
) -> float:
    """The §IV-C limit ratio ``u Πs / ((f + i ΣP) Π⌈s ⊘ i⌉)``.

    Ignores the per-array constant overhead (type tags, shapes, mask), which the
    exact ratio approaches as the array grows.
    """
    f_bits = settings.float_format.storage_bits
    i_bits = settings.index_dtype.itemsize * 8
    kept = settings.kept_per_block
    n_blocks = settings.n_blocks(array_shape)
    numerator = float(input_bits_per_element) * float(np.prod(array_shape))
    denominator = float(f_bits + i_bits * kept) * float(n_blocks)
    return numerator / denominator


# --------------------------------------------------------------------------- float packing
def pack_floats(values: np.ndarray, fmt: FloatFormat) -> bytes:
    """Pack float64 values into the working format's storage width."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if fmt.name == "float64":
        return values.astype("<f8").tobytes()
    if fmt.name == "float32":
        return values.astype("<f4").tobytes()
    if fmt.name == "float16":
        return values.astype("<f2").tobytes()
    if fmt.name == "bfloat16":
        as32 = values.astype(np.float32)
        bits = as32.view(np.uint32)
        upper = (bits >> np.uint32(16)).astype("<u2")
        return upper.tobytes()
    raise ValueError(f"unsupported float format {fmt}")  # pragma: no cover - defensive


def unpack_floats(data: bytes, count: int, fmt: FloatFormat) -> np.ndarray:
    """Inverse of :func:`pack_floats`, returning float64 values."""
    if fmt.name == "float64":
        return np.frombuffer(data, dtype="<f8", count=count).astype(np.float64)
    if fmt.name == "float32":
        return np.frombuffer(data, dtype="<f4", count=count).astype(np.float64)
    if fmt.name == "float16":
        return np.frombuffer(data, dtype="<f2", count=count).astype(np.float64)
    if fmt.name == "bfloat16":
        upper = np.frombuffer(data, dtype="<u2", count=count).astype(np.uint32)
        bits = upper << np.uint32(16)
        return bits.view(np.float32).astype(np.float64)
    raise ValueError(f"unsupported float format {fmt}")  # pragma: no cover - defensive


def float_bytes(count: int, fmt: FloatFormat) -> int:
    """Byte length of ``count`` packed values in format ``fmt``."""
    return count * (fmt.storage_bits // 8)


# --------------------------------------------------------------------------- settings packing
# These pieces are shared between the one-shot stream format (v2, below) and the
# chunked :class:`repro.streaming.CompressedStore` format, which interleaves its own
# chunk table but reuses the identical settings encoding.
def pack_type_codes(settings: CompressionSettings, ndim: int) -> bytes:
    """Pack the float/index/transform type codes and dimensionality (4 bytes)."""
    return struct.pack(
        "<BBBB",
        _FLOAT_CODES[settings.float_format.name],
        _INDEX_CODES[settings.index_dtype.name],
        _TRANSFORM_CODES[settings.transform],
        ndim,
    )


def unpack_type_codes(data: bytes, offset: int) -> tuple[FloatFormat, np.dtype, str, int, int]:
    """Inverse of :func:`pack_type_codes`.

    Returns ``(float_format, index_dtype, transform, ndim, new_offset)``.
    """
    float_code, index_code, transform_code, ndim = struct.unpack_from("<BBBB", data, offset)
    return (
        _FLOAT_BY_CODE[float_code],
        _INDEX_BY_CODE[index_code],
        _TRANSFORM_BY_CODE[transform_code],
        ndim,
        offset + 4,
    )


def pack_block_geometry(settings: CompressionSettings) -> bytes:
    """Pack the block shape and pruning mask (the data-independent geometry)."""
    ndim = settings.ndim
    out = struct.pack(f"<{ndim}Q", *settings.block_shape)
    mask_bits = np.packbits(settings.mask.ravel().astype(np.uint8))
    out += struct.pack("<I", mask_bits.size)
    out += mask_bits.tobytes()
    return out


def unpack_block_geometry(
    data: bytes,
    offset: int,
    ndim: int,
    float_format: FloatFormat,
    index_dtype: np.dtype,
    transform: str,
) -> tuple[CompressionSettings, int]:
    """Inverse of :func:`pack_block_geometry`; rebuilds the full settings object."""
    block_shape = struct.unpack_from(f"<{ndim}Q", data, offset)
    offset += 8 * ndim
    (mask_nbytes,) = struct.unpack_from("<I", data, offset)
    offset += 4
    mask_bits = np.frombuffer(data, dtype=np.uint8, count=mask_nbytes, offset=offset)
    offset += mask_nbytes
    block_size = int(np.prod(block_shape))
    mask = np.unpackbits(mask_bits, count=block_size).astype(bool).reshape(block_shape)
    settings = CompressionSettings(
        block_shape=block_shape,
        float_format=float_format,
        index_dtype=index_dtype,
        transform=transform,
        pruning_mask=None if mask.all() else mask,
    )
    return settings, offset


# --------------------------------------------------------------------------- serialization
def serialize(compressed: CompressedArray) -> bytes:
    """Serialize a compressed array to a self-describing byte string."""
    settings = compressed.settings
    ndim = settings.ndim
    header = bytearray()
    header += _MAGIC
    header += struct.pack("<B", _VERSION)
    header += pack_type_codes(settings, ndim)
    header += struct.pack(f"<{ndim}Q", *compressed.shape)
    header += pack_block_geometry(settings)

    payload = bytearray()
    payload += pack_floats(compressed.maxima, settings.float_format)
    payload += np.ascontiguousarray(
        compressed.indices, dtype=settings.index_dtype.newbyteorder("<")
    ).tobytes()
    return bytes(header) + bytes(payload)


def deserialize(data: bytes) -> CompressedArray:
    """Reconstruct a :class:`CompressedArray` from bytes produced by :func:`serialize`."""
    if data[:5] == _MAGIC + b"C":
        # the chunked-store magic "PBLZC" shares this format's "PBLZ" prefix;
        # catch it here so the error names the right tool instead of reporting a
        # bogus version number
        raise CodecError(
            "this is a PyBlaz chunked store; open it with "
            "repro.streaming.CompressedStore (CLI: stream-decompress)"
        )
    if data[:4] != _MAGIC:
        raise CodecError("not a PyBlaz compressed stream (bad magic)")
    offset = 4
    (version,) = struct.unpack_from("<B", data, offset)
    offset += 1
    if version != _VERSION:
        raise CodecError(f"unsupported stream version {version}")
    float_format, index_dtype, transform, ndim, offset = unpack_type_codes(data, offset)
    shape = struct.unpack_from(f"<{ndim}Q", data, offset)
    offset += 8 * ndim
    settings, offset = unpack_block_geometry(
        data, offset, ndim, float_format, index_dtype, transform
    )

    n_blocks = settings.n_blocks(shape)
    maxima_nbytes = float_bytes(n_blocks, float_format)
    maxima = unpack_floats(data[offset : offset + maxima_nbytes], n_blocks, float_format)
    offset += maxima_nbytes
    maxima = maxima.reshape(settings.block_grid_shape(shape))

    kept = settings.kept_per_block
    indices_count = n_blocks * kept
    indices = np.frombuffer(
        data, dtype=index_dtype.newbyteorder("<"), count=indices_count, offset=offset
    )
    indices = indices.astype(index_dtype).reshape(n_blocks, kept)

    return CompressedArray(settings=settings, shape=shape, maxima=maxima, indices=indices)


def save(compressed: CompressedArray, path) -> None:
    """Write a compressed array to ``path``."""
    with open(path, "wb") as handle:
        handle.write(serialize(compressed))


def load(path) -> CompressedArray:
    """Read a compressed array previously written by :func:`save`."""
    with open(path, "rb") as handle:
        return deserialize(handle.read())
