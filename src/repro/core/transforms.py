"""Orthonormal transforms used by the compressor (§III-A(c), Appendix VI-A).

Each block is transformed into coefficients of an orthonormal, separable transform.
Orthonormality is the property all compressed-space reductions rely on: it preserves
dot products (and hence L2 norms, variances and covariances), and it maps the block
mean onto the first ("DC") coefficient scaled by ``sqrt(block size)``.

Three transforms are provided:

* ``"dct"`` — the orthonormal type-II discrete cosine transform, PyBlaz's default.
* ``"haar"`` — the orthonormal Haar wavelet transform (power-of-two sizes only).
* ``"identity"`` — the standard basis, useful for isolating binning/pruning error
  in tests and ablations.

The matrices here act along one axis; :class:`Transform` applies them separably
along every block axis of a ``(grid..., block...)``-shaped array produced by
:func:`repro.core.blocking.block_array`.
"""

from __future__ import annotations

import string
from functools import lru_cache
from typing import Sequence

import numpy as np

__all__ = [
    "dct_matrix",
    "haar_matrix",
    "identity_matrix",
    "transform_matrix",
    "Transform",
    "get_transform",
]


@lru_cache(maxsize=None)
def dct_matrix(size: int) -> np.ndarray:
    """Orthonormal DCT-II matrix ``H`` of shape ``(size, size)``.

    ``H[k, n] = sqrt((1 + (k > 0)) / size) * cos(pi * (2n + 1) * k / (2 size))``.
    Rows are the sampled cosine basis functions; ``H @ x`` produces the coefficients
    of a length-``size`` signal ``x`` and ``H.T @ c`` reconstructs it.
    """
    size = int(size)
    if size < 1:
        raise ValueError("transform size must be positive")
    k = np.arange(size).reshape(-1, 1).astype(np.float64)
    n = np.arange(size).reshape(1, -1).astype(np.float64)
    matrix = np.cos(np.pi * (2.0 * n + 1.0) * k / (2.0 * size))
    scale = np.full((size, 1), np.sqrt(2.0 / size))
    scale[0, 0] = np.sqrt(1.0 / size)
    out = matrix * scale
    out.setflags(write=False)
    return out


@lru_cache(maxsize=None)
def haar_matrix(size: int) -> np.ndarray:
    """Orthonormal Haar wavelet matrix of shape ``(size, size)``.

    ``size`` must be a power of two.  The first row is the normalized constant
    function, so the DC-coefficient property used by the mean/variance operations
    holds exactly as for the DCT.
    """
    size = int(size)
    if size < 1 or (size & (size - 1)) != 0:
        raise ValueError(f"Haar transform requires a power-of-two size, got {size}")
    matrix = np.array([[1.0]])
    while matrix.shape[0] < size:
        top = np.kron(matrix, np.array([1.0, 1.0]))
        bottom = np.kron(np.eye(matrix.shape[0]), np.array([1.0, -1.0]))
        matrix = np.vstack([top, bottom]) / np.sqrt(2.0)
    matrix = np.ascontiguousarray(matrix)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=None)
def identity_matrix(size: int) -> np.ndarray:
    """The standard basis as an (orthonormal) transform — no decorrelation."""
    size = int(size)
    if size < 1:
        raise ValueError("transform size must be positive")
    out = np.eye(size)
    out.setflags(write=False)
    return out


_MATRIX_BUILDERS = {
    "dct": dct_matrix,
    "haar": haar_matrix,
    "identity": identity_matrix,
}


def transform_matrix(name: str, size: int) -> np.ndarray:
    """Return the orthonormal matrix of transform ``name`` for ``size`` samples."""
    key = str(name).lower()
    if key not in _MATRIX_BUILDERS:
        raise ValueError(f"unknown transform {name!r}; choose from {sorted(_MATRIX_BUILDERS)}")
    return _MATRIX_BUILDERS[key](size)


class Transform:
    """Separable N-dimensional orthonormal transform over blocked arrays.

    Parameters
    ----------
    name:
        ``"dct"``, ``"haar"`` or ``"identity"``.
    block_shape:
        Extents of a block along each dimension; one matrix is built per extent.

    A blocked array has shape ``(grid..., block...)``.  :meth:`forward` contracts
    each block axis with the corresponding matrix (Einstein-summation style, as in
    Appendix VI-A); :meth:`inverse` contracts with the transposes.  Both preserve
    the array's leading grid axes untouched, so they vectorize over all blocks at
    once — this is the numpy stand-in for the paper's GPU bulk execution.
    """

    def __init__(self, name: str, block_shape: Sequence[int]):
        self.name = str(name).lower()
        self.block_shape = tuple(int(b) for b in block_shape)
        self.matrices = tuple(transform_matrix(self.name, extent) for extent in self.block_shape)

    @property
    def ndim(self) -> int:
        return len(self.block_shape)

    def _apply(self, blocked: np.ndarray, matrices: Sequence[np.ndarray]) -> np.ndarray:
        blocked = np.asarray(blocked, dtype=np.float64)
        ndim = self.ndim
        if blocked.ndim < ndim:
            raise ValueError(
                f"blocked array must have at least {ndim} trailing block axes"
            )
        if blocked.shape[-ndim:] != self.block_shape:
            raise ValueError(
                f"trailing axes {blocked.shape[-ndim:]} do not match block shape "
                f"{self.block_shape}"
            )
        result = blocked
        lead = blocked.ndim - ndim
        axis_letters = string.ascii_lowercase[: blocked.ndim]
        for axis_offset, matrix in enumerate(matrices):
            axis = lead + axis_offset
            # Contract this block axis with the matrix: result[..., k, ...] =
            # sum_n matrix[k, n] * result[..., n, ...].  einsum with optimize=False
            # never dispatches to BLAS, whose kernel choice depends on the batch
            # size; the per-element summation order here is fixed, so transforming
            # any subset of blocks is bit-identical to transforming them all at
            # once — the invariant the streaming compressor's exactness rests on.
            operand = list(axis_letters)
            operand[axis] = "B"
            output = list(axis_letters)
            output[axis] = "A"
            subscripts = f"{''.join(operand)},AB->{''.join(output)}"
            result = np.einsum(subscripts, result, matrix, optimize=False)
        return result

    def forward(self, blocked: np.ndarray) -> np.ndarray:
        """Transform blocks of data into blocks of coefficients."""
        return self._apply(blocked, self.matrices)

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        """Transform blocks of coefficients back into blocks of data."""
        return self._apply(coefficients, tuple(m.T for m in self.matrices))

    def dc_scale(self) -> float:
        """Factor relating each block's first coefficient to the block mean.

        For every supported transform the first basis vector is the constant vector
        ``1/sqrt(extent)`` in each direction (identity excepted — see note), so the
        first coefficient equals ``block mean * prod(sqrt(extent))``.  The identity
        transform does not have this property; callers that rely on the DC scale
        (mean, variance, Wasserstein) check :meth:`has_dc_property`.
        """
        return float(np.prod(np.sqrt(np.asarray(self.block_shape, dtype=np.float64))))

    def has_dc_property(self) -> bool:
        """Whether the first coefficient of each block is the scaled block mean."""
        return self.name in ("dct", "haar")


@lru_cache(maxsize=None)
def _cached_transform(name: str, block_shape: tuple[int, ...]) -> Transform:
    return Transform(name, block_shape)


def get_transform(name: str, block_shape: Sequence[int]) -> Transform:
    """Return a (cached) :class:`Transform` for ``name`` and ``block_shape``."""
    return _cached_transform(str(name).lower(), tuple(int(b) for b in block_shape))
