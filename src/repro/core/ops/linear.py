"""Array-valued linear operations in the compressed space (Algorithms 1, 2, 4, 5).

* :func:`negate` — negate the bin indices; exact (no additional error).
* :func:`multiply_scalar` — scale the per-block maxima by ``|x|`` and flip index
  signs when ``x < 0``; exact.
* :func:`add` / :func:`subtract` — sum the specified coefficients and re-bin; the
  re-binning step is the only source of additional error.
* :func:`add_scalar` — shift every block's first (DC) coefficient by
  ``x · Π sqrt(i)`` and re-bin; requires the DC coefficient to be unpruned.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from .coefficients import rebin_coefficients, require_compatible, specified_coefficients

__all__ = ["negate", "add", "subtract", "add_scalar", "multiply_scalar"]


def negate(compressed: CompressedArray) -> CompressedArray:
    """Algorithm 1: the negated array ``{s, i, N, -F}``.

    Because bin indices are proportional to coefficients, negating the indices is
    equivalent to negating every coefficient, and hence every decompressed element.
    Introduces no additional error.
    """
    negated = np.negative(compressed.indices)
    # The most negative representable index has no positive counterpart in two's
    # complement; compression never produces it (indices are clipped to ±r), but a
    # defensively clipped copy keeps the invariant for externally built arrays.
    radius = compressed.settings.index_radius
    np.clip(negated, -radius, radius, out=negated)
    return CompressedArray(
        settings=compressed.settings,
        shape=compressed.shape,
        maxima=compressed.maxima.copy(),
        indices=negated.astype(compressed.settings.index_dtype),
    )


def add(a: CompressedArray, b: CompressedArray) -> CompressedArray:
    """Algorithm 2: element-wise sum of two compressed arrays.

    The specified coefficients of both operands are summed and re-binned against the
    (possibly larger) new per-block maxima; re-binning is the only additional error.
    """
    require_compatible(a, b, "addition")
    summed = specified_coefficients(a) + specified_coefficients(b)
    return rebin_coefficients(summed, a.settings, a.shape)


def subtract(a: CompressedArray, b: CompressedArray) -> CompressedArray:
    """Element-wise difference ``a - b``, i.e. ``add(a, negate(b))`` fused.

    The paper realises differences with negation followed by addition (§V-A); this
    helper fuses the two so only one re-binning happens.
    """
    require_compatible(a, b, "subtraction")
    diff = specified_coefficients(a) - specified_coefficients(b)
    return rebin_coefficients(diff, a.settings, a.shape)


def add_scalar(compressed: CompressedArray, scalar: float) -> CompressedArray:
    """Algorithm 4: add ``scalar`` to every element.

    Adding a constant to a block shifts only its mean, i.e. only the first (DC)
    coefficient, by ``scalar · Π sqrt(block extents)``.  The DC coefficient must
    therefore have survived pruning.  The shifted coefficients are re-binned, which
    is the only source of additional error.

    Note: the scalar is added over the *padded* domain as well, exactly as a
    decompress → add → recompress pipeline (with zero padding) would behave.
    """
    if not compressed.settings.first_coefficient_kept:
        raise ValueError(
            "add_scalar requires the first coefficient of each block to be unpruned"
        )
    if not np.isfinite(scalar):
        raise ValueError("scalar must be finite")
    coefficients = specified_coefficients(compressed)
    dc_index = (Ellipsis,) + (0,) * compressed.settings.ndim
    coefficients[dc_index] += float(scalar) * compressed.settings.dc_scale
    return rebin_coefficients(coefficients, compressed.settings, compressed.shape)


def multiply_scalar(compressed: CompressedArray, scalar: float) -> CompressedArray:
    """Algorithm 5: multiply every element by ``scalar``: ``{s, i, N·|x|, F·sign(x)}``.

    Scaling the per-block maxima scales every reconstructed coefficient by the same
    factor, so the operation is exact (no additional error).  A negative scalar
    additionally negates the indices; a zero scalar produces an exactly-zero array.
    """
    if not np.isfinite(scalar):
        raise ValueError("scalar must be finite")
    scalar = float(scalar)
    maxima = compressed.maxima * abs(scalar)
    if scalar < 0:
        indices = np.negative(compressed.indices)
        radius = compressed.settings.index_radius
        np.clip(indices, -radius, radius, out=indices)
        indices = indices.astype(compressed.settings.index_dtype)
    elif scalar == 0.0:
        indices = np.zeros_like(compressed.indices)
    else:
        indices = compressed.indices.copy()
    return CompressedArray(
        settings=compressed.settings,
        shape=compressed.shape,
        maxima=maxima,
        indices=indices,
    )
