"""Similarity measures in the compressed space (Algorithms 11, 12).

* :func:`cosine_similarity` — the angle between two arrays viewed as vectors, from
  the compressed-space dot product and L2 norms.
* :func:`structural_similarity` — the SSIM index built from the compressed-space
  mean, variance and covariance, using the global (single-window) formulation of
  Algorithm 12: a weighted product of luminance, contrast and structure terms with
  stabilizer constants.

Stabilizer defaults follow the standard SSIM constants ``C1 = (k1·L)²`` and
``C2 = (k2·L)²`` with ``k1 = 0.01``, ``k2 = 0.03`` and ``L`` = ``data_range`` (1.0 by
default for data normalised to [0, 1], as in the paper's MRI experiment).  The
structure stabilizer is ``C2 / 2`` as in Algorithm 12.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from . import folds
from .coefficients import require_compatible
from .reductions import mean
from .statistics import covariance, variance

__all__ = ["cosine_similarity", "structural_similarity"]


def cosine_similarity(a: CompressedArray, b: CompressedArray) -> float:
    """Algorithm 11: ``dot(a, b) / (‖a‖₂ · ‖b‖₂)``.

    A thin wrapper over the single-pass similarity fold
    (:func:`repro.core.ops.folds.similarity_partial`), which computes the dot
    product and both squared norms in one coefficient traversal.  Error
    contract: exact in the compressed space (both numerator and denominator
    are).  Raises ``ZeroDivisionError`` if either operand has zero norm, for
    which cosine similarity is undefined.
    """
    return folds.evaluate("similarity", a, b)


def structural_similarity(
    a: CompressedArray,
    b: CompressedArray,
    *,
    data_range: float = 1.0,
    luminance_stabilizer: float | None = None,
    contrast_stabilizer: float | None = None,
    luminance_weight: float = 1.0,
    contrast_weight: float = 1.0,
    structure_weight: float = 1.0,
) -> float:
    """Algorithm 12: the structural similarity index from compressed statistics.

    Parameters
    ----------
    data_range:
        Dynamic range ``L`` of the data; the default 1.0 suits data normalised to
        [0, 1] as in the paper's MRI study.
    luminance_stabilizer, contrast_stabilizer:
        Stabilizers ``s_l`` and ``s_c``; default to ``(0.01·L)²`` and ``(0.03·L)²``.
    luminance_weight, contrast_weight, structure_weight:
        Exponents ``w_l``, ``w_c``, ``w_s`` of the weighted product.

    Notes
    -----
    This is the single-window ("global") SSIM the paper computes — not the windowed
    mean-SSIM of image processing libraries.  With all weights 1, identical inputs
    give exactly 1.0.
    """
    require_compatible(a, b, "structural similarity")
    s_l = (0.01 * data_range) ** 2 if luminance_stabilizer is None else float(luminance_stabilizer)
    s_c = (0.03 * data_range) ** 2 if contrast_stabilizer is None else float(contrast_stabilizer)
    if s_l <= 0 or s_c <= 0:
        raise ValueError("SSIM stabilizers must be positive")

    mu_a = mean(a)
    mu_b = mean(b)
    var_a = variance(a)
    var_b = variance(b)
    sigma_a = np.sqrt(max(var_a, 0.0))
    sigma_b = np.sqrt(max(var_b, 0.0))
    sigma_ab = covariance(a, b)

    luminance = (2.0 * mu_a * mu_b + s_l) / (mu_a * mu_a + mu_b * mu_b + s_l)
    contrast = (2.0 * sigma_a * sigma_b + s_c) / (var_a + var_b + s_c)
    structure = (sigma_ab + s_c / 2.0) / (sigma_a * sigma_b + s_c / 2.0)

    return float(
        np.sign(luminance) * np.abs(luminance) ** luminance_weight
        * np.sign(contrast) * np.abs(contrast) ** contrast_weight
        * np.sign(structure) * np.abs(structure) ** structure_weight
    )
