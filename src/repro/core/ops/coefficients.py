"""Shared coefficient-space helpers for the compressed-space operations.

Two properties of the compression pipeline make compressed-space operation possible
(§IV-A): (1) each block of stored indices ``F`` is proportional to the block's
transform coefficients, so scaling ``F`` by ``N`` recovers the *specified*
coefficients exactly as they will appear at decompression time; and (2) the
orthonormal transform preserves dot products, so summative quantities (means,
norms, covariances) can be computed from coefficients directly.

:func:`specified_coefficients` implements Algorithm 3.  :func:`rebin_coefficients`
is the converse: given a blocked array of coefficients produced by some operation
(e.g. the sum of two arrays' coefficients), re-derive the ``{N, F}`` pair, which is
where the "rebinning" error of Table I comes from.
"""

from __future__ import annotations

import numpy as np

from ..binning import bin_coefficients
from ..compressed import CompressedArray
from ..pruning import flatten_kept
from ..settings import CompressionSettings

__all__ = ["specified_coefficients", "rebin_coefficients", "require_compatible"]


def specified_coefficients(compressed: CompressedArray) -> np.ndarray:
    """Algorithm 3: recover the kept coefficients ``Ĉ = N ⊙ F ⊘ r``.

    Returns a blocked float64 array shaped ``(grid..., block...)`` with zeros at
    pruned positions.  Callers own the returned array (partials mutate it in
    place), so when several folds share one chunk the lazy engine primes a
    ``coefficients_cache`` attribute on the chunk: subsequent calls then return
    a bitwise-identical copy of the cached array instead of re-deriving it from
    the indices — same bits, one fancy-indexing pass instead of one per fold.
    """
    cache = getattr(compressed, "coefficients_cache", None)
    if cache is not None:
        return cache.copy()
    return compressed.specified_coefficients()


def rebin_coefficients(
    coefficients: np.ndarray,
    settings: CompressionSettings,
    shape: tuple[int, ...],
) -> CompressedArray:
    """Quantize a blocked coefficient array back into a :class:`CompressedArray`.

    This is the final step of every compressed-space operation whose result is an
    array but whose coefficients are no longer exactly expressible with the input
    ``{N, F}`` pairs (element-wise addition, scalar addition).  The error introduced
    here is the "rebinning" error of Table I: at most half a bin width of the *new*
    per-block maxima.

    Coefficients at pruned positions are discarded (they are zero for all operations
    defined in this package, since inputs have zeros there and the operations are
    element-wise in coefficient space).
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    expected_grid = settings.block_grid_shape(shape)
    if coefficients.shape != expected_grid + settings.block_shape:
        raise ValueError(
            f"coefficient array shape {coefficients.shape} does not match "
            f"grid {expected_grid} + block {settings.block_shape}"
        )
    maxima, indices_blocked = bin_coefficients(
        coefficients, settings.ndim, settings.index_dtype
    )
    flattened = flatten_kept(indices_blocked, settings.mask)
    return CompressedArray(
        settings=settings, shape=shape, maxima=maxima, indices=flattened
    )


def require_compatible(a: CompressedArray, b: CompressedArray, operation: str) -> None:
    """Raise ``ValueError`` unless ``a`` and ``b`` may be combined by ``operation``."""
    if not isinstance(a, CompressedArray) or not isinstance(b, CompressedArray):
        raise TypeError(f"{operation} requires CompressedArray operands")
    if a.shape != b.shape:
        raise ValueError(
            f"{operation} requires equal shapes, got {a.shape} and {b.shape}"
        )
    if not a.settings.is_compatible_with(b.settings):
        raise ValueError(
            f"{operation} requires compatible compression settings "
            f"({a.settings.describe()} vs {b.settings.describe()})"
        )
