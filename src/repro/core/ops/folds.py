"""Partial-fold forms of the compressed-space reductions (the out-of-core substrate).

Every scalar reduction in this package factors into three pieces:

* a **partial** mapping one chunk (or chunk pair) of a compressed array to a
  small :class:`FoldState` holding per-block partial sums — never the raw
  coefficients;
* the associative, commutative :func:`combine` merging two states;
* a **finalize** turning the accumulated state into the scalar result.

The in-memory operations in :mod:`repro.core.ops` are thin wrappers that run a
fold over a single chunk (the whole array); the out-of-core engine in
:mod:`repro.streaming.ops` runs the *same* fold over the chunks of a
:class:`repro.streaming.CompressedStore`.  The folds are **chunking-invariant
to the last bit** because

1. store chunks are block-aligned slabs, so every chunk covers whole blocks;
2. each per-block partial sum is computed independently per block (a reduction
   over that block's trailing axes only), so it has the same bits whether the
   block arrived in a chunk or in the whole array; and
3. finalization sums the per-block values with :func:`math.fsum`, which returns
   the correctly rounded sum of its inputs — independent of how they were
   grouped into chunks.

Consequently a store-level reduction equals its in-memory counterpart on the
assembled array *bit for bit* whenever the chunks assemble bit-identically —
the ``reference`` kernel-backend guarantee.  Under the fast backends
(:mod:`repro.kernels`), chunked compression differs from one-shot compression
within the backend's documented ``accumulation_tolerance``, and the reductions
inherit that tolerance — see ``docs/ops.md`` for the per-operation contracts.

The partial state costs one float64 per block and per tracked quantity — a
``Π block_extents``-fold reduction of the data (64× for the default 4³ blocks).
Chunk coefficients are materialised transiently, one chunk (pair) at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import chain
from typing import Callable

import numpy as np

from ..compressed import CompressedArray
from .coefficients import require_compatible, specified_coefficients

__all__ = [
    "FoldState",
    "FoldSpec",
    "FOLD_SPECS",
    "get_fold_spec",
    "evaluate",
    "combine",
    "combine_all",
    "total",
    "product_partial",
    "square_partial",
    "difference_square_partial",
    "dc_partial",
    "similarity_partial",
    "centered_product_partial",
    "centered_square_partial",
    "dc_grand_mean",
    "finalize_dot",
    "finalize_l2_norm",
    "finalize_euclidean_distance",
    "finalize_mean",
    "finalize_covariance",
    "finalize_variance",
    "finalize_cosine_similarity",
]


@dataclass
class FoldState:
    """Associative partial state of a compressed-space reduction.

    Attributes
    ----------
    sums:
        Named per-block partial-sum vectors, each a list of float64 arrays (one
        array per chunk folded so far, in chunk order).  Which names are
        present depends on the partial that produced the state.
    n_blocks, n_elements, n_padded_elements:
        Accumulated block / element / padded-element counts of the chunks
        folded so far.
    dc_scale:
        The settings' DC scale ``Π sqrt(block extents)`` (needed by the mean
        finalizer); ``None`` for folds that do not touch DC coefficients.
    """

    sums: dict[str, list[np.ndarray]]
    n_blocks: int
    n_elements: int
    n_padded_elements: int
    dc_scale: float | None = field(default=None)


def _check_mergeable(left: FoldState, right: FoldState) -> None:
    """Raise ``ValueError`` unless two states came from the same fold and geometry."""
    if set(left.sums) != set(right.sums):
        raise ValueError(
            f"cannot combine partial states of different folds "
            f"({sorted(left.sums)} vs {sorted(right.sums)})"
        )
    if (
        left.dc_scale is not None
        and right.dc_scale is not None
        and left.dc_scale != right.dc_scale
    ):
        raise ValueError("cannot combine partial states with different block shapes")


def combine(left: FoldState, right: FoldState) -> FoldState:
    """Merge two partial states (associative and commutative up to finalize).

    Per-block vectors are concatenated and counts added; because
    :func:`total` sums them exactly, the *finalized* result does not depend on
    the combination order.  Raises ``ValueError`` when the states came from
    different folds or from incompatible block geometries.
    """
    _check_mergeable(left, right)
    return FoldState(
        sums={key: left.sums[key] + right.sums[key] for key in left.sums},
        n_blocks=left.n_blocks + right.n_blocks,
        n_elements=left.n_elements + right.n_elements,
        n_padded_elements=left.n_padded_elements + right.n_padded_elements,
        dc_scale=left.dc_scale if left.dc_scale is not None else right.dc_scale,
    )


def combine_all(states) -> "FoldState | None":
    """Merge an iterable of partial states in one linear pass.

    Equivalent to left-folding :func:`combine` but extends one accumulator in
    place, so merging ``n`` per-chunk states costs O(n) instead of the O(n²)
    list rebuilding of repeated pairwise combines — the form the streaming
    engine uses over stores with many chunks.  Returns ``None`` for an empty
    iterable (no chunks folded).
    """
    accumulator: FoldState | None = None
    for state in states:
        if accumulator is None:
            accumulator = FoldState(
                sums={key: list(parts) for key, parts in state.sums.items()},
                n_blocks=state.n_blocks,
                n_elements=state.n_elements,
                n_padded_elements=state.n_padded_elements,
                dc_scale=state.dc_scale,
            )
            continue
        _check_mergeable(accumulator, state)
        for key, parts in state.sums.items():
            accumulator.sums[key].extend(parts)
        accumulator.n_blocks += state.n_blocks
        accumulator.n_elements += state.n_elements
        accumulator.n_padded_elements += state.n_padded_elements
        if accumulator.dc_scale is None:
            accumulator.dc_scale = state.dc_scale
    return accumulator


def total(state: FoldState, key: str) -> float:
    """Exact (correctly rounded) sum of one per-block partial-sum vector.

    ``math.fsum`` makes this independent of the chunking that produced the
    parts — the property that lets store-level reductions match their
    in-memory counterparts bit for bit.
    """
    return math.fsum(chain.from_iterable(state.sums[key]))


# ---------------------------------------------------------------------- helpers
def _readonly_coefficients(chunk: CompressedArray) -> np.ndarray:
    """Specified coefficients for read-only use: the primed cache when present.

    Partials may *read* this array but never write it — operands a partial
    mutates must go through :func:`specified_coefficients`, which returns an
    owned copy.  Skipping the copy for read-only operands saves one memcpy per
    binary partial under the engine's shared-cache sweeps; the bits are
    identical either way.
    """
    cache = getattr(chunk, "coefficients_cache", None)
    if cache is not None:
        return cache
    return specified_coefficients(chunk)


def _per_block_sum(values: np.ndarray, ndim: int) -> np.ndarray:
    """Sum a blocked ``(grid..., block...)`` array within each block, raveled C-order.

    Each block's sum is a reduction over that block's own elements only, so the
    result rows are bitwise independent of which other blocks share the array.
    """
    block_axes = tuple(range(values.ndim - ndim, values.ndim))
    return values.sum(axis=block_axes).ravel()


def _state(chunk: CompressedArray, sums: dict[str, list[np.ndarray]],
           dc_scale: float | None = None) -> FoldState:
    """Wrap one chunk's per-block vectors with its counts."""
    return FoldState(
        sums=sums,
        n_blocks=chunk.n_blocks,
        n_elements=chunk.n_elements,
        n_padded_elements=chunk.n_padded_elements,
        dc_scale=dc_scale,
    )


def _dc_index(ndim: int) -> tuple:
    """Index expression selecting every block's first (DC) coefficient."""
    return (Ellipsis,) + (0,) * ndim


def _require_dc(chunk: CompressedArray, operation: str) -> None:
    """Raise ``ValueError`` unless the DC coefficient survived pruning."""
    if not chunk.settings.first_coefficient_kept:
        raise ValueError(
            f"{operation} requires the first coefficient of each block to be unpruned"
        )


# ---------------------------------------------------------------------- partials
def product_partial(a: CompressedArray, b: CompressedArray) -> FoldState:
    """Per-block sums of ``Ĉa ⊙ Ĉb`` — the partial of :func:`~repro.core.ops.dot`."""
    require_compatible(a, b, "dot product")
    ndim = a.settings.ndim
    products = specified_coefficients(a)
    np.multiply(products, _readonly_coefficients(b), out=products)
    return _state(a, {"product": [_per_block_sum(products, ndim)]})


def square_partial(chunk: CompressedArray) -> FoldState:
    """Per-block sums of ``Ĉ ⊙ Ĉ`` — the partial of :func:`~repro.core.ops.l2_norm`."""
    squares = specified_coefficients(chunk)
    np.multiply(squares, squares, out=squares)
    return _state(chunk, {"square": [_per_block_sum(squares, chunk.settings.ndim)]})


def difference_square_partial(a: CompressedArray, b: CompressedArray) -> FoldState:
    """Per-block sums of ``(Ĉa − Ĉb)²`` — the partial of Euclidean distance."""
    require_compatible(a, b, "euclidean distance")
    difference = specified_coefficients(a)
    np.subtract(difference, _readonly_coefficients(b), out=difference)
    np.multiply(difference, difference, out=difference)
    return _state(a, {"diff_square": [_per_block_sum(difference, a.settings.ndim)]})


def dc_partial(chunk: CompressedArray) -> FoldState:
    """Per-block DC (first) coefficients — the partial of :func:`~repro.core.ops.mean`.

    Raises ``ValueError`` when the DC coefficient was pruned away (the mean is
    then unrecoverable from the compressed form).
    """
    dc = np.array(chunk.first_coefficients(), dtype=np.float64).ravel()
    return _state(chunk, {"dc": [dc]}, dc_scale=chunk.settings.dc_scale)


def similarity_partial(a: CompressedArray, b: CompressedArray) -> FoldState:
    """Per-block product and squared-norm sums — the partial of cosine similarity.

    One pass computes everything :func:`finalize_cosine_similarity` needs:
    ``Σ Ĉa·Ĉb``, ``Σ Ĉa²`` and ``Σ Ĉb²`` per block.
    """
    require_compatible(a, b, "cosine similarity")
    ndim = a.settings.ndim
    ca = specified_coefficients(a)
    cb = specified_coefficients(b)
    product = _per_block_sum(ca * cb, ndim)
    np.multiply(ca, ca, out=ca)
    np.multiply(cb, cb, out=cb)
    return _state(a, {
        "product": [product],
        "square_a": [_per_block_sum(ca, ndim)],
        "square_b": [_per_block_sum(cb, ndim)],
    })


def centered_product_partial(
    a: CompressedArray, b: CompressedArray, dc_mean_a: float, dc_mean_b: float
) -> FoldState:
    """Per-block sums of centered coefficient products — the covariance partial.

    ``dc_mean_a`` / ``dc_mean_b`` are the *global* DC means of the two full
    arrays (pass 1, :func:`dc_grand_mean` over :func:`dc_partial`); subtracting
    them from each block's DC coefficient centers the arrays on their means
    without touching any other coefficient (§IV, Algorithm 8).
    """
    require_compatible(a, b, "covariance")
    _require_dc(a, "covariance/variance")
    ndim = a.settings.ndim
    ca = specified_coefficients(a)
    cb = specified_coefficients(b)
    ca[_dc_index(ndim)] -= dc_mean_a
    cb[_dc_index(ndim)] -= dc_mean_b
    np.multiply(ca, cb, out=ca)
    return _state(a, {"centered_product": [_per_block_sum(ca, ndim)]})


def centered_square_partial(chunk: CompressedArray, dc_mean: float) -> FoldState:
    """Per-block sums of squared centered coefficients — the variance partial."""
    _require_dc(chunk, "covariance/variance")
    ndim = chunk.settings.ndim
    centered = specified_coefficients(chunk)
    centered[_dc_index(ndim)] -= dc_mean
    np.multiply(centered, centered, out=centered)
    return _state(chunk, {"centered_square": [_per_block_sum(centered, ndim)]})


# ---------------------------------------------------------------------- finalizers
def _require_nonempty(state: FoldState) -> None:
    """Guard against folding zero chunks."""
    if state.n_blocks == 0:
        raise ValueError("cannot reduce an empty chunk stream")


def dc_grand_mean(state: FoldState) -> float:
    """The mean DC coefficient over every block (pass 1 of covariance/variance)."""
    _require_nonempty(state)
    return total(state, "dc") / state.n_blocks


def finalize_dot(state: FoldState) -> float:
    """Algorithm 6: the dot product is the exact sum of the per-block products."""
    _require_nonempty(state)
    return total(state, "product")


def finalize_l2_norm(state: FoldState) -> float:
    """Algorithm 10: one square root of the exactly summed squared norm."""
    _require_nonempty(state)
    return float(math.sqrt(total(state, "square")))


def finalize_euclidean_distance(state: FoldState) -> float:
    """Euclidean distance: square root of the summed squared differences."""
    _require_nonempty(state)
    return float(math.sqrt(total(state, "diff_square")))


def finalize_mean(state: FoldState, *, padded: bool = True) -> float:
    """Algorithm 7: average DC coefficient divided by the DC scale.

    With ``padded=True`` (the paper's semantics) the mean is over the
    zero-padded block domain; ``padded=False`` rescales to the original
    element count.
    """
    _require_nonempty(state)
    value = total(state, "dc") / state.n_blocks / state.dc_scale
    if not padded:
        value *= state.n_padded_elements / state.n_elements
    return value


def finalize_covariance(state: FoldState) -> float:
    """Algorithm 8: mean of the centered products over the padded domain."""
    _require_nonempty(state)
    return total(state, "centered_product") / state.n_padded_elements


def finalize_variance(state: FoldState) -> float:
    """Algorithm 9: mean of the squared centered coefficients (always ≥ 0)."""
    _require_nonempty(state)
    return total(state, "centered_square") / state.n_padded_elements


def finalize_cosine_similarity(state: FoldState) -> float:
    """Algorithm 11: ``dot / (‖a‖₂·‖b‖₂)`` from one accumulated state.

    Raises ``ZeroDivisionError`` when either operand has zero norm, for which
    cosine similarity is undefined.
    """
    _require_nonempty(state)
    denominator = math.sqrt(total(state, "square_a")) * math.sqrt(total(state, "square_b"))
    if denominator == 0.0:
        raise ZeroDivisionError("cosine similarity is undefined for zero-norm arrays")
    return total(state, "product") / denominator


# ---------------------------------------------------------------------- fold specs
@dataclass(frozen=True)
class FoldSpec:
    """Declarative description of one fold: the unit the planner schedules.

    A spec names a partial, states what it needs (operand count, DC
    availability, pass-1 DC means for the centered folds) and how to finish it.
    The in-memory operations consume specs through :func:`evaluate`; the lazy
    engine (:mod:`repro.engine`) consumes the same specs to fuse many folds
    into shared sweeps over a store, deduplicating equal ``(name, operands)``
    terms across the requested outputs.

    Attributes
    ----------
    name:
        Registry key, also the natural name of the partial it wraps.
    arity:
        Number of compressed operands the partial folds (1 or 2).
    requires_dc:
        Whether the partial needs each block's first (DC) coefficient unpruned;
        the planner fails fast on store sources whose pruning mask dropped it.
    partial:
        ``(*chunks, *extra) -> FoldState`` — the per-chunk partial.
    finalize:
        ``FoldState -> float`` (possibly with keyword options, e.g. the mean's
        ``padded``) turning the accumulated state into the scalar.
    centered:
        True for the two-pass folds whose ``extra`` arguments are the operands'
        global DC means (one per operand, from a :func:`dc_grand_mean` pass).
    touches_coefficients:
        Whether the partial materialises the full specified-coefficient array
        (everything except the DC-only fold); the engine uses this to decide
        which decoded chunks are worth a shared coefficient cache.
    """

    name: str
    arity: int
    requires_dc: bool
    partial: Callable[..., FoldState]
    finalize: Callable[..., float]
    centered: bool = False
    touches_coefficients: bool = True

    @property
    def n_extra(self) -> int:
        """Number of extra scalar arguments the partial takes (DC means)."""
        return self.arity if self.centered else 0


#: Every fold the operation set factors into, by name.  ``dc`` doubles as the
#: mean fold (finalized with :func:`finalize_mean`) and as pass 1 of the
#: centered folds (finalized with :func:`dc_grand_mean`) — the planner reuses a
#: single accumulated ``dc`` state for both.
FOLD_SPECS: dict[str, FoldSpec] = {
    spec.name: spec
    for spec in (
        FoldSpec("dc", 1, True, dc_partial, finalize_mean,
                 touches_coefficients=False),
        FoldSpec("square", 1, False, square_partial, finalize_l2_norm),
        FoldSpec("product", 2, False, product_partial, finalize_dot),
        FoldSpec("diff_square", 2, False, difference_square_partial,
                 finalize_euclidean_distance),
        FoldSpec("similarity", 2, False, similarity_partial,
                 finalize_cosine_similarity),
        FoldSpec("centered_square", 1, True, centered_square_partial,
                 finalize_variance, centered=True),
        FoldSpec("centered_product", 2, True, centered_product_partial,
                 finalize_covariance, centered=True),
    )
}


def get_fold_spec(name: str) -> FoldSpec:
    """Look up a registered :class:`FoldSpec`; raise ``KeyError`` with the valid set."""
    try:
        return FOLD_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown fold {name!r}; registered folds: {sorted(FOLD_SPECS)}"
        ) from None


def evaluate(name: str, *operands: CompressedArray, extra: tuple = (),
             **finalize_options) -> float:
    """Run one registered fold start-to-finish over in-memory operands.

    The single-chunk path the :mod:`repro.core.ops` wrappers use: one partial
    over the whole array (or array pair), one finalize.  ``extra`` carries the
    centered folds' DC means; ``finalize_options`` are passed to the spec's
    finalizer (e.g. the mean's ``padded``).
    """
    spec = get_fold_spec(name)
    if len(operands) != spec.arity:
        raise ValueError(
            f"fold {name!r} takes {spec.arity} operand(s), got {len(operands)}"
        )
    if len(extra) != spec.n_extra:
        raise ValueError(
            f"fold {name!r} takes {spec.n_extra} extra argument(s) "
            f"(the operands' global DC means), got {len(extra)}"
        )
    return spec.finalize(spec.partial(*operands, *extra), **finalize_options)
