"""Approximate Wasserstein distance in the compressed space (§IV-B, Algorithm 13).

The block-wise means available from the first coefficients form a coarse proxy of the
decompressed arrays; the order-``p`` Wasserstein (earth mover's) distance between the
two proxies approximates the distance between the underlying arrays, with an error
governed by the block size (one-element blocks would make it exact but destroy
compression).

Following Algorithm 13: the block-wise means are normalised into probability
distributions with a softmax when they do not already sum to one, both distributions
are sorted (the 1-D optimal transport plan between empirical distributions pairs
sorted samples), and the distance is

    ``( Σ |sorted(A') - sorted(B')|^p / Π ⌈s ⊘ i⌉ )^(1/p)``.

Because sorting is involved this operation is not differentiable (unlike every other
operation in Table I).

Numerical note: for large orders (the paper sweeps up to p = 68 and observes that all
peaks vanish for p ≥ 80) the naive evaluation of ``|d|^p`` underflows to zero in
float64.  The default implementation here factors out the maximum difference so the
result stays finite for any ``p`` (``stable=True``); passing ``stable=False``
reproduces the naive evaluation — and with it the paper's observed vanishing of all
peaks at p ≥ 80.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from .coefficients import require_compatible

__all__ = ["wasserstein_distance", "softmax"]


def softmax(values: np.ndarray) -> np.ndarray:
    """Numerically stable softmax ``e^x / Σ e^x`` over the flattened input."""
    values = np.asarray(values, dtype=np.float64).ravel()
    shifted = values - values.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def _as_distribution(blockwise_means: np.ndarray, atol: float = 1e-9) -> np.ndarray:
    """Normalise block-wise means into a probability distribution (Algorithm 13).

    If the means already sum to one (within ``atol``) and are non-negative they are
    used as-is; otherwise the softmax is applied, exactly as the paper does.
    """
    flat = np.asarray(blockwise_means, dtype=np.float64).ravel()
    total = flat.sum()
    if np.isclose(total, 1.0, atol=atol) and np.all(flat >= 0):
        return flat
    return softmax(flat)


def wasserstein_distance(
    a: CompressedArray,
    b: CompressedArray,
    order: float = 1.0,
    *,
    stable: bool = True,
) -> float:
    """Algorithm 13: approximate order-``p`` Wasserstein distance between two arrays.

    Parameters
    ----------
    a, b:
        Compressed operands with compatible settings and equal shapes.  Both must
        retain the first coefficient of every block.
    order:
        The order ``p`` ≥ 1 of the distance.  Higher orders emphasise the largest
        mass displacement, which is how the paper isolates the scission event from
        noise peaks (Fig 6b).
    stable:
        Use the overflow/underflow-safe evaluation (default).  ``stable=False``
        evaluates ``|d|^p`` directly, reproducing the float64 underflow the paper
        observes for p ≥ 80.

    Returns
    -------
    float
        ``( Σ |sorted(A') - sorted(B')|^p / n_blocks )^(1/p)``.
    """
    require_compatible(a, b, "Wasserstein distance")
    order = float(order)
    if order < 1.0:
        raise ValueError(f"Wasserstein order must be >= 1, got {order}")

    means_a = a.blockwise_means()
    means_b = b.blockwise_means()
    dist_a = np.sort(_as_distribution(means_a))
    dist_b = np.sort(_as_distribution(means_b))
    diffs = np.abs(dist_a - dist_b)
    n_blocks = float(diffs.size)

    if not stable:
        return float((np.sum(diffs ** order) / n_blocks) ** (1.0 / order))

    max_diff = diffs.max()
    if max_diff == 0.0:
        return 0.0
    scaled = diffs / max_diff
    # (max^p * sum(scaled^p) / n)^(1/p) = max * (sum(scaled^p)/n)^(1/p); scaled <= 1
    # keeps every intermediate in range for arbitrarily large p.
    inner = np.sum(scaled ** order) / n_blocks
    return float(max_diff * inner ** (1.0 / order))
