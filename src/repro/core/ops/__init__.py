"""Compressed-space operations (§IV, Table I, Algorithms 1–13).

Every function in this package operates on :class:`repro.core.CompressedArray`
operands **without decompressing them**.  Array-valued results are returned as new
``CompressedArray`` objects; scalar-valued results are Python floats.

The operations and their error behaviour, following Table I:

=============================  =========  ==========================
Operation                      Result     Source of additional error
=============================  =========  ==========================
:func:`negate`                 array      none
:func:`add` / :func:`subtract` array      rebinning
:func:`add_scalar`             array      rebinning
:func:`multiply_scalar`        array      none
:func:`dot`                    scalar     none
:func:`mean`                   scalar     none
:func:`covariance`             scalar     none
:func:`variance`               scalar     none
:func:`l2_norm`                scalar     none
:func:`euclidean_distance`     scalar     none
:func:`cosine_similarity`      scalar     none
:func:`structural_similarity`  scalar     none
:func:`wasserstein_distance`   scalar     function of block size
=============================  =========  ==========================

"None" means no error beyond what compression already introduced (and ordinary
floating-point rounding).  Scalar reductions are taken over the zero-padded block
domain; when the array shape is a multiple of the block shape they coincide with the
uncompressed-space definitions (see DESIGN.md §5).

Every scalar reduction also exposes a **partial-fold form** in
:mod:`repro.core.ops.folds` (per-chunk partial → associative combine →
finalize); the functions here are thin wrappers running the fold over a single
chunk, and :mod:`repro.streaming.ops` runs the same folds out-of-core over
chunked stores.  ``docs/ops.md`` tabulates every operation's error-bound
contract and its in-memory vs store-level availability.
"""

from . import folds
from .approximate import (
    approximate_binary_map,
    approximate_histogram,
    approximate_map,
    approximate_quantile,
    approximate_reduce,
)
from .coefficients import rebin_coefficients, specified_coefficients
from .linear import add, add_scalar, multiply_scalar, negate, subtract
from .reductions import blockwise_mean, dot, euclidean_distance, l2_norm, mean
from .similarity import cosine_similarity, structural_similarity
from .statistics import (
    blockwise_covariance,
    blockwise_standard_deviation,
    blockwise_variance,
    covariance,
    standard_deviation,
    variance,
)
from .wasserstein import wasserstein_distance

__all__ = [
    "folds",
    "specified_coefficients",
    "rebin_coefficients",
    "negate",
    "add",
    "subtract",
    "add_scalar",
    "multiply_scalar",
    "dot",
    "mean",
    "blockwise_mean",
    "l2_norm",
    "euclidean_distance",
    "covariance",
    "variance",
    "standard_deviation",
    "blockwise_covariance",
    "blockwise_variance",
    "blockwise_standard_deviation",
    "cosine_similarity",
    "structural_similarity",
    "wasserstein_distance",
    "approximate_map",
    "approximate_binary_map",
    "approximate_reduce",
    "approximate_histogram",
    "approximate_quantile",
]
