"""Scalar reductions in the compressed space (Algorithms 6, 7, 10).

All three reductions exploit orthonormality — dot products of coefficient blocks
equal dot products of the corresponding data blocks — so they require no inverse
transform and introduce no error beyond what compression already produced.

Padding semantics: the reductions see the zero-padded block domain.  The dot product
and L2 norm are unaffected by zero padding; the mean is taken over the padded element
count, which matches the paper's implementation (and equals the true mean exactly when
the shape is a multiple of the block shape).  Callers that need the cropped-domain
mean can rescale with ``n_padded_elements / n_elements``.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from .coefficients import require_compatible, specified_coefficients

__all__ = ["dot", "mean", "blockwise_mean", "l2_norm"]


def dot(a: CompressedArray, b: CompressedArray) -> float:
    """Algorithm 6: dot product ``Σ (Ĉ1 ⊙ Ĉ2)``.

    Equals the dot product of the two decompressed (padded) arrays because the
    orthonormal transform preserves inner products; padding contributes zeros.
    """
    require_compatible(a, b, "dot product")
    return float(np.sum(specified_coefficients(a) * specified_coefficients(b)))


def mean(compressed: CompressedArray, *, padded: bool = True) -> float:
    """Algorithm 7: the array mean from the first coefficient of every block.

    Each block's first coefficient equals the block mean scaled by
    ``c = Π sqrt(block extents)``, so the array mean is the average of first
    coefficients divided by ``c``.

    Parameters
    ----------
    padded:
        When True (default, the paper's semantics) the mean is over the zero-padded
        domain.  When False the result is rescaled to the original element count,
        giving the true mean of the uncompressed array up to compression error.
    """
    value = float(np.mean(compressed.first_coefficients()) / compressed.settings.dc_scale)
    if not padded:
        value *= compressed.n_padded_elements / compressed.n_elements
    return value


def blockwise_mean(compressed: CompressedArray) -> np.ndarray:
    """Block-wise means ``Ĉ[..., first] / c`` shaped like the block grid.

    This is the coarse proxy of the uncompressed array that the approximate
    operations (§IV-B) build on.
    """
    return compressed.blockwise_means()


def l2_norm(compressed: CompressedArray) -> float:
    """Algorithm 10: the L2 (Euclidean) norm ``‖Ĉ‖₂``.

    Orthonormal transforms preserve the 2-norm, so the norm of the kept coefficients
    equals the norm of the decompressed (padded) array; padding contributes zeros.
    """
    coefficients = specified_coefficients(compressed)
    return float(np.sqrt(np.sum(coefficients * coefficients)))
