"""Scalar reductions in the compressed space (Algorithms 6, 7, 10).

All reductions exploit orthonormality — dot products of coefficient blocks
equal dot products of the corresponding data blocks — so they require no inverse
transform and introduce no error beyond what compression already produced.

Every function here is a thin wrapper over its partial-fold form in
:mod:`repro.core.ops.folds` (per-chunk partial → associative combine →
finalize), run over a single chunk: the whole array.  The out-of-core engine
:mod:`repro.streaming.ops` runs the identical fold over store chunks, and the
folds are chunking-invariant to the last bit (see the :mod:`folds
<repro.core.ops.folds>` module docstring), so the two layers always agree on
identical compressed data.

Exactness contract: **no additional error** beyond compression — the values are
exact functions of the stored ``{N, F}`` pairs, accumulated with correctly
rounded summation (:func:`math.fsum`), deterministic across chunkings and
executors.

Padding semantics: the reductions see the zero-padded block domain.  The dot
product, L2 norm and Euclidean distance are unaffected by zero padding; the mean
is taken over the padded element count, which matches the paper's implementation
(and equals the true mean exactly when the shape is a multiple of the block
shape).  Callers that need the cropped-domain mean can pass ``padded=False``.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from . import folds

__all__ = ["dot", "mean", "blockwise_mean", "l2_norm", "euclidean_distance"]


def dot(a: CompressedArray, b: CompressedArray) -> float:
    """Algorithm 6: dot product ``Σ (Ĉ1 ⊙ Ĉ2)``.

    Equals the dot product of the two decompressed (padded) arrays because the
    orthonormal transform preserves inner products; padding contributes zeros.
    Error contract: exact in the compressed space (no error beyond compression).
    """
    return folds.evaluate("product", a, b)


def mean(compressed: CompressedArray, *, padded: bool = True) -> float:
    """Algorithm 7: the array mean from the first coefficient of every block.

    Each block's first coefficient equals the block mean scaled by
    ``c = Π sqrt(block extents)``, so the array mean is the average of first
    coefficients divided by ``c``.  Error contract: exact in the compressed
    space (no error beyond compression).

    Parameters
    ----------
    padded:
        When True (default, the paper's semantics) the mean is over the zero-padded
        domain.  When False the result is rescaled to the original element count,
        giving the true mean of the uncompressed array up to compression error.
    """
    return folds.evaluate("dc", compressed, padded=padded)


def blockwise_mean(compressed: CompressedArray) -> np.ndarray:
    """Block-wise means ``Ĉ[..., first] / c`` shaped like the block grid.

    This is the coarse proxy of the uncompressed array that the approximate
    operations (§IV-B) build on.  Error contract: exact in the compressed space.
    """
    return compressed.blockwise_means()


def l2_norm(compressed: CompressedArray) -> float:
    """Algorithm 10: the L2 (Euclidean) norm ``‖Ĉ‖₂``.

    Orthonormal transforms preserve the 2-norm, so the norm of the kept
    coefficients equals the norm of the decompressed (padded) array; padding
    contributes zeros.  Error contract: exact in the compressed space.
    """
    return folds.evaluate("square", compressed)


def euclidean_distance(a: CompressedArray, b: CompressedArray) -> float:
    """Euclidean distance ``‖a − b‖₂`` computed directly on the coefficients.

    Orthonormality makes ``Σ (Ĉ1 − Ĉ2)²`` equal the squared distance of the
    decompressed (padded) arrays, so no subtraction-and-rebinning round trip
    (and none of its rebinning error) is needed.  Error contract: exact in the
    compressed space (no error beyond compression).
    """
    return folds.evaluate("diff_square", a, b)
