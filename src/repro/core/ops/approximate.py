"""Approximate operations built on the block-wise mean proxy (§IV-B).

Beyond the Wasserstein distance, the paper notes that "we can use the block-wise mean
to find approximations of arbitrary operations on uncompressed arrays", with the
approximation granularity set by the block shape (one-element blocks would be exact
but give up all compression).  This module provides that machinery:

* :func:`approximate_map` — apply an arbitrary element-wise function to the proxy and
  return the per-block results (e.g. ``np.exp``, thresholding, clipping).
* :func:`approximate_binary_map` — same for a binary function of two compressed
  arrays (e.g. relative difference, masking).
* :func:`approximate_reduce` — reduce the proxy with an arbitrary reduction
  (e.g. ``np.median``, ``np.percentile``-style callables), weighted by block size.
* :func:`approximate_histogram` — histogram of the proxy values, the building block
  for approximate quantiles.
* :func:`approximate_quantile` — approximate quantiles of the original data from the
  block-wise means.

All of these read only the first coefficient of each block, so they never touch the
full coefficient set, let alone decompress; their error is governed by how much the
data varies within a block (tests quantify this against exact references on
smooth and rough data).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..compressed import CompressedArray
from .coefficients import require_compatible

__all__ = [
    "approximate_map",
    "approximate_binary_map",
    "approximate_reduce",
    "approximate_histogram",
    "approximate_quantile",
]


def approximate_map(
    compressed: CompressedArray, func: Callable[[np.ndarray], np.ndarray]
) -> np.ndarray:
    """Apply an element-wise ``func`` to the block-wise-mean proxy of the array.

    Returns an array shaped like the block grid: entry ``k`` approximates the value
    of ``func`` over block ``k`` of the original array (exactly ``func(block mean)``).
    The approximation error is ``func``'s variation over each block.
    """
    means = compressed.blockwise_means()
    result = np.asarray(func(means))
    if result.shape != means.shape:
        raise ValueError(
            f"func must be element-wise: expected output shape {means.shape}, "
            f"got {result.shape}"
        )
    return result


def approximate_binary_map(
    a: CompressedArray,
    b: CompressedArray,
    func: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Apply an element-wise binary ``func`` to the proxies of two compressed arrays."""
    require_compatible(a, b, "approximate binary map")
    means_a = a.blockwise_means()
    means_b = b.blockwise_means()
    result = np.asarray(func(means_a, means_b))
    if result.shape != means_a.shape:
        raise ValueError(
            f"func must be element-wise: expected output shape {means_a.shape}, "
            f"got {result.shape}"
        )
    return result


def approximate_reduce(
    compressed: CompressedArray,
    reduction: Callable[[np.ndarray], float] = np.mean,
) -> float:
    """Reduce the block-wise-mean proxy with an arbitrary ``reduction``.

    For linear reductions (mean, sum scaled by block size) this is exact over the
    padded domain; for non-linear reductions (median, max of means, ...) the result
    is the reduction of the proxy, whose distance to the true reduction shrinks with
    the block size.
    """
    return float(reduction(compressed.blockwise_means().ravel()))


def approximate_histogram(
    compressed: CompressedArray,
    bins: int | Sequence[float] = 32,
    value_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of the block-wise-mean proxy (counts are in units of blocks).

    Returns ``(counts, edges)`` as :func:`numpy.histogram` does.  Multiplying the
    counts by the block size gives an element-count approximation of the data's
    histogram whose resolution is the within-block spread.
    """
    means = compressed.blockwise_means().ravel()
    return np.histogram(means, bins=bins, range=value_range)


def approximate_quantile(
    compressed: CompressedArray, q: float | Sequence[float]
) -> np.ndarray | float:
    """Approximate quantile(s) of the original data from the block-wise means.

    Quantiles of the proxy converge to the data's quantiles as blocks shrink; with
    one-element blocks they are exact (§IV-B's limiting case).
    """
    q_array = np.atleast_1d(np.asarray(q, dtype=np.float64))
    if np.any((q_array < 0) | (q_array > 1)):
        raise ValueError("quantiles must lie in [0, 1]")
    means = compressed.blockwise_means().ravel()
    values = np.quantile(means, q_array)
    if np.isscalar(q) or (hasattr(q, "__len__") and len(np.shape(q)) == 0):
        return float(values[0])
    return values
