"""Covariance, variance and standard deviation in the compressed space (Algorithms 8, 9).

Covariance is the mean of the element-wise product of *centered* coefficients:
centering an array (subtracting its mean from every element) only changes each
block's first (DC) coefficient, by the global mean scaled by ``Π sqrt(i)`` — which
equals the average of the DC coefficients.  After centering, orthonormality turns the
element-wise product sum into the data-space product sum, and dividing by the padded
element count gives the (population) covariance.

Block-wise variants center each block independently (zeroing its DC coefficient) and
average within blocks, giving per-block covariance/variance maps.

All quantities use the population convention (``ddof=0``) over the padded domain,
matching the reference implementation; tests compare against
``repro.analysis.reference`` with identical conventions.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from .coefficients import require_compatible, specified_coefficients

__all__ = [
    "covariance",
    "variance",
    "standard_deviation",
    "blockwise_covariance",
    "blockwise_variance",
    "blockwise_standard_deviation",
]


def _centered_coefficients(compressed: CompressedArray) -> np.ndarray:
    """Specified coefficients with the global mean removed (DC coefficients centered)."""
    if not compressed.settings.first_coefficient_kept:
        raise ValueError(
            "covariance/variance require the first coefficient of each block to be unpruned"
        )
    coefficients = specified_coefficients(compressed)
    ndim = compressed.settings.ndim
    dc_index = (Ellipsis,) + (0,) * ndim
    dc = coefficients[dc_index]
    coefficients[dc_index] = dc - dc.mean()
    return coefficients


def covariance(a: CompressedArray, b: CompressedArray) -> float:
    """Algorithm 8: covariance of two compressed arrays.

    ``mean(Ĉ1_centered ⊙ Ĉ2_centered)`` over all coefficient slots, which equals the
    population covariance of the decompressed (padded) arrays.
    """
    require_compatible(a, b, "covariance")
    return float(np.mean(_centered_coefficients(a) * _centered_coefficients(b)))


def variance(compressed: CompressedArray) -> float:
    """Algorithm 9: variance as the covariance of the array with itself."""
    centered = _centered_coefficients(compressed)
    return float(np.mean(centered * centered))


def standard_deviation(compressed: CompressedArray) -> float:
    """Standard deviation: the square root of :func:`variance`."""
    return float(np.sqrt(variance(compressed)))


def _blockwise_centered(compressed: CompressedArray) -> np.ndarray:
    """Coefficients with each block's own mean removed (DC coefficients zeroed)."""
    coefficients = specified_coefficients(compressed)
    ndim = compressed.settings.ndim
    dc_index = (Ellipsis,) + (0,) * ndim
    coefficients[dc_index] = 0.0
    return coefficients


def blockwise_covariance(a: CompressedArray, b: CompressedArray) -> np.ndarray:
    """Per-block covariance map shaped like the block grid.

    Each block is centered on its own mean, then the coefficient products are averaged
    within the block — the block-wise analogue of Algorithm 8 mentioned in §IV-A.
    """
    require_compatible(a, b, "block-wise covariance")
    ndim = a.settings.ndim
    product = _blockwise_centered(a) * _blockwise_centered(b)
    block_axes = tuple(range(product.ndim - ndim, product.ndim))
    return product.mean(axis=block_axes)


def blockwise_variance(compressed: CompressedArray) -> np.ndarray:
    """Per-block variance map (block-wise covariance of the array with itself)."""
    ndim = compressed.settings.ndim
    centered = _blockwise_centered(compressed)
    block_axes = tuple(range(centered.ndim - ndim, centered.ndim))
    return (centered * centered).mean(axis=block_axes)


def blockwise_standard_deviation(compressed: CompressedArray) -> np.ndarray:
    """Per-block standard deviation map."""
    return np.sqrt(blockwise_variance(compressed))
