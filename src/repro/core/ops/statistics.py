"""Covariance, variance and standard deviation in the compressed space (Algorithms 8, 9).

Covariance is the mean of the element-wise product of *centered* coefficients:
centering an array (subtracting its mean from every element) only changes each
block's first (DC) coefficient, by the global mean scaled by ``Π sqrt(i)`` — which
equals the average of the DC coefficients.  After centering, orthonormality turns the
element-wise product sum into the data-space product sum, and dividing by the padded
element count gives the (population) covariance.

The scalar statistics are thin wrappers over their two-pass partial-fold forms
in :mod:`repro.core.ops.folds`: pass 1 folds the global DC mean
(:func:`folds.dc_partial`), pass 2 folds the centered products
(:func:`folds.centered_product_partial` / :func:`folds.centered_square_partial`).
The out-of-core engine :mod:`repro.streaming.ops` runs the identical two passes
over store chunks, and the folds are chunking-invariant to the last bit, so the
two layers always agree on identical compressed data.  Error contract: exact in
the compressed space (no error beyond compression; correctly rounded
accumulation).

Block-wise variants center each block independently (zeroing its DC coefficient) and
average within blocks, giving per-block covariance/variance maps.

All quantities use the population convention (``ddof=0``) over the padded domain,
matching the reference implementation; tests compare against
``repro.analysis.reference`` with identical conventions.
"""

from __future__ import annotations

import numpy as np

from ..compressed import CompressedArray
from . import folds
from .coefficients import require_compatible, specified_coefficients

__all__ = [
    "covariance",
    "variance",
    "standard_deviation",
    "blockwise_covariance",
    "blockwise_variance",
    "blockwise_standard_deviation",
]


def covariance(a: CompressedArray, b: CompressedArray) -> float:
    """Algorithm 8: covariance of two compressed arrays.

    ``mean(Ĉ1_centered ⊙ Ĉ2_centered)`` over all coefficient slots, which equals the
    population covariance of the decompressed (padded) arrays.  Error contract:
    exact in the compressed space; requires the DC coefficient to be unpruned.
    """
    require_compatible(a, b, "covariance")
    mean_a = folds.dc_grand_mean(folds.dc_partial(a))
    mean_b = folds.dc_grand_mean(folds.dc_partial(b))
    return folds.evaluate("centered_product", a, b, extra=(mean_a, mean_b))


def variance(compressed: CompressedArray) -> float:
    """Algorithm 9: variance as the covariance of the array with itself.

    Error contract: exact in the compressed space (and always ≥ 0 — the fold
    sums squares); requires the DC coefficient to be unpruned.
    """
    mean_dc = folds.dc_grand_mean(folds.dc_partial(compressed))
    return folds.evaluate("centered_square", compressed, extra=(mean_dc,))


def standard_deviation(compressed: CompressedArray) -> float:
    """Standard deviation: the square root of :func:`variance` (same contract)."""
    return float(np.sqrt(variance(compressed)))


def _blockwise_centered(compressed: CompressedArray) -> np.ndarray:
    """Coefficients with each block's own mean removed (DC coefficients zeroed)."""
    coefficients = specified_coefficients(compressed)
    ndim = compressed.settings.ndim
    dc_index = (Ellipsis,) + (0,) * ndim
    coefficients[dc_index] = 0.0
    return coefficients


def blockwise_covariance(a: CompressedArray, b: CompressedArray) -> np.ndarray:
    """Per-block covariance map shaped like the block grid.

    Each block is centered on its own mean, then the coefficient products are averaged
    within the block — the block-wise analogue of Algorithm 8 mentioned in §IV-A.
    Error contract: exact in the compressed space.
    """
    require_compatible(a, b, "block-wise covariance")
    ndim = a.settings.ndim
    product = _blockwise_centered(a) * _blockwise_centered(b)
    block_axes = tuple(range(product.ndim - ndim, product.ndim))
    return product.mean(axis=block_axes)


def blockwise_variance(compressed: CompressedArray) -> np.ndarray:
    """Per-block variance map (block-wise covariance of the array with itself).

    Error contract: exact in the compressed space.
    """
    ndim = compressed.settings.ndim
    centered = _blockwise_centered(compressed)
    block_axes = tuple(range(centered.ndim - ndim, centered.ndim))
    return (centered * centered).mean(axis=block_axes)


def blockwise_standard_deviation(compressed: CompressedArray) -> np.ndarray:
    """Per-block standard deviation map (square root of :func:`blockwise_variance`)."""
    return np.sqrt(blockwise_variance(compressed))
