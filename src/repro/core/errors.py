"""Compression error analysis (§IV-D).

Error is introduced in the data-type conversion, orthonormal transform, binning and
pruning steps; the paper's analysis (which this module implements and the tests
verify) covers the last two:

* **Binning** — per block ``k`` the bins cover ``[-N_k, N_k]`` with ``2r + 1`` bins,
  so each kept coefficient is off by at most half a bin width,
  ``N_k / (2 r + 1)`` (:func:`binning_error_bound`).
* **Pruning** — a pruned coefficient is rounded to zero, so its error is the
  coefficient itself (:func:`pruning_error`).
* **L∞ bound in the decompressed space** — a single coefficient error of magnitude
  ``e`` can change a decompressed element by at most ``e`` (orthonormal basis vectors
  have unit norm); the combined worst case over a block is the loose bound
  ``‖C_k‖_∞ · Π i`` (:func:`linf_error_bound`).
* **L2 error in a block** — orthonormal transforms preserve the 2-norm, so the L2
  error of a decompressed block equals the L2 norm of its coefficient errors
  (:func:`block_l2_error`), with no looseness.
"""

from __future__ import annotations

import numpy as np

from .binning import index_radius
from .compressed import CompressedArray
from .exceptions import CodecError, IntegrityError
from .settings import CompressionSettings
from .transforms import get_transform
from .blocking import block_array

__all__ = [
    "CodecError",
    "IntegrityError",
    "binning_error_bound",
    "pruning_error",
    "linf_error_bound",
    "block_l2_error",
    "coefficient_errors",
]


def binning_error_bound(
    maxima: np.ndarray, index_dtype: np.dtype, *, exact: bool = False
) -> np.ndarray:
    """Maximum per-coefficient binning error per block.

    The paper's analysis (§IV-D) treats the ``2r + 1`` bins as evenly covering
    ``[-N_k, N_k]`` and states the half-bin-width bound ``N_k / (2 r + 1)``.  The
    actual binning rule ``I = round(r · C / N)`` has quantisation step ``N_k / r``,
    whose half-step is ``N_k / (2 r)`` — larger than the paper's figure by the factor
    ``(2r + 1) / (2r)`` (≈ 0.4 % for int8, negligible for wider types).  ``exact=True``
    returns the implementation-exact bound; the default returns the paper's value.

    Parameters
    ----------
    maxima:
        Per-block maximum coefficient magnitudes ``N`` (any shape).
    index_dtype:
        The bin-index integer dtype, which determines the radius ``r``.
    exact:
        Return ``N_k / (2r)`` (a true bound for this implementation) instead of the
        paper's ``N_k / (2r + 1)``.
    """
    radius = index_radius(np.dtype(index_dtype))
    denominator = float(2 * radius) if exact else float(2 * radius + 1)
    return np.asarray(maxima, dtype=np.float64) / denominator


def coefficient_errors(
    compressed: CompressedArray, original: np.ndarray
) -> np.ndarray:
    """Exact per-coefficient error ``Ĉ - C`` between stored and true coefficients.

    ``original`` must be the array that was compressed (same shape).  The true
    coefficients are recomputed from the original after the same data-type
    conversion and blocking, so the returned errors capture binning + pruning only.
    """
    from ..numerics import round_to_format

    settings = compressed.settings
    original = np.asarray(original)
    if original.shape != compressed.shape:
        raise ValueError(
            f"original shape {original.shape} does not match compressed shape {compressed.shape}"
        )
    lowered = round_to_format(original, settings.float_format)
    blocked = block_array(lowered, settings.block_shape)
    transform = get_transform(settings.transform, settings.block_shape)
    true_coefficients = transform.forward(blocked)
    return compressed.specified_coefficients() - true_coefficients


def pruning_error(
    coefficients: np.ndarray, settings: CompressionSettings
) -> np.ndarray:
    """Error contributed by pruning alone: the pruned coefficients themselves.

    Returns an array shaped like ``coefficients`` that is zero at kept positions and
    equals the coefficient magnitude at pruned positions.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    mask = settings.mask
    if coefficients.shape[-settings.ndim :] != mask.shape:
        raise ValueError(
            f"coefficient block axes {coefficients.shape[-settings.ndim:]} do not match "
            f"block shape {mask.shape}"
        )
    dropped = ~mask
    return np.abs(coefficients) * dropped


def linf_error_bound(compressed: CompressedArray) -> np.ndarray:
    """The loose per-block L∞ bound ``‖C_k‖_∞ · Π i`` of §IV-D.

    This is the only L∞ guarantee the paper provides: every coefficient error is at
    most ``‖C_k‖_∞`` (binning cannot exceed the biggest coefficient and pruning drops
    coefficients bounded by it), and each decompressed element is a unit-norm
    combination of ``Π i`` coefficients.
    """
    block_size = float(compressed.settings.block_size)
    return np.abs(compressed.maxima) * block_size


def block_l2_error(
    compressed: CompressedArray, original: np.ndarray
) -> np.ndarray:
    """Exact per-block L2 error of the decompressed array.

    By orthonormality this equals the L2 norm of the per-block coefficient errors;
    the identity is exercised directly by the test suite against the actual
    decompressed output.
    """
    errors = coefficient_errors(compressed, original)
    block_axes = tuple(range(errors.ndim - compressed.settings.ndim, errors.ndim))
    return np.sqrt(np.sum(errors * errors, axis=block_axes))
