"""Process-wide decoded-chunk LRU cache with a byte budget.

The plan engine's coefficient cache is *step-scoped*: it lives for one fused
chunk step and is torn down before the next decode, which is the right
lifetime for a single sweep but wastes work in a long-lived server where
consecutive plans keep re-reading the same hot stores.  :class:`ChunkCache`
generalizes that idea to a **process-wide tier**: decoded chunk objects
(pyblaz :class:`repro.core.CompressedArray` records, or any codec's compressed
object) are kept under an LRU policy bounded by a byte budget, keyed by
``(store path, chunk index)``.

Attach a cache to a store by assigning
:attr:`repro.streaming.CompressedStore.chunk_cache` (the serving catalog does
this for every store it opens); ``read_chunk`` then consults the cache before
re-parsing the record.  The cache stores *decoded records*, not decompressed
arrays — typically 10-60× smaller than the dense chunk, so a modest budget
covers a whole working set.

Thread safety: all operations take an internal lock, so concurrent readers
(server executor, threaded executors, benchmark clients) can share one cache.
Entries are shared objects — callers must follow the engine's discipline of
never leaving mutations behind (the plan's coefficient priming is strictly
step-scoped, and the serving scheduler runs one plan at a time, so a cached
chunk is never primed by two plans concurrently).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["ChunkCache", "DEFAULT_CACHE_BYTES"]

#: Default byte budget: enough for the decoded records of a few hundred
#: typical chunks without threatening a small container's memory.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def _estimate_nbytes(chunk: Any) -> int:
    """Approximate resident bytes of a decoded chunk object.

    Sums the numpy buffers and byte strings reachable from the object's
    attributes (``maxima``/``indices`` for pyblaz, code tables and payloads
    for the byte-stream codecs); unknown attribute types cost nothing.  A
    floor of 1 byte keeps pathological objects from being free.
    """
    total = 0
    state = getattr(chunk, "__dict__", None)
    values = state.values() if isinstance(state, dict) else ()
    for value in values:
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, (bytes, bytearray)):
            total += len(value)
    return max(total, 1)


class ChunkCache:
    """Byte-budgeted, thread-safe LRU over decoded store chunks.

    Parameters
    ----------
    max_bytes:
        Total budget for cached chunk records.  Inserting past the budget
        evicts least-recently-used entries; a single record larger than the
        whole budget is simply not cached.

    Attributes
    ----------
    hits, misses, evictions:
        Monotonic counters (also surfaced by :meth:`snapshot`), which the
        serving metrics expose — a fused plan whose sweep hits the cache does
        no record parsing at all, so the hit rate is the decode-saving rate.
    prefetch_issued, prefetch_used, prefetch_wasted:
        Effectiveness ledger for the warm path
        (:func:`repro.streaming.warm_store_cache`): entries inserted with
        ``put(..., prefetched=True)`` count as *issued*; the first later hit
        on such an entry counts it *used*; eviction or invalidation before
        any hit counts it *wasted*.  ``issued - used - wasted`` entries are
        still warm and waiting.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES):
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_issued = 0
        self.prefetch_used = 0
        self.prefetch_wasted = 0
        self._prefetched: set[Hashable] = set()

    # ------------------------------------------------------------------ access
    def get(self, key: Hashable) -> Any | None:
        """Return the cached chunk for ``key`` (marking it recently used), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if key in self._prefetched:
                self._prefetched.discard(key)
                self.prefetch_used += 1
            return entry[0]

    def put(self, key: Hashable, chunk: Any, *, prefetched: bool = False) -> None:
        """Insert a decoded chunk, evicting LRU entries past the byte budget.

        ``prefetched=True`` marks the entry as warm-path work so the prefetch
        effectiveness counters can tell whether it was later used (a hit) or
        wasted (evicted/invalidated untouched).
        """
        nbytes = _estimate_nbytes(chunk)
        if nbytes > self.max_bytes:
            return  # larger than the whole budget: caching it would just thrash
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= old[1]
            self._entries[key] = (chunk, nbytes)
            self._current_bytes += nbytes
            if prefetched:
                self._prefetched.add(key)
                self.prefetch_issued += 1
            while self._current_bytes > self.max_bytes and self._entries:
                evicted_key, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._current_bytes -= evicted_bytes
                self.evictions += 1
                if evicted_key in self._prefetched:
                    self._prefetched.discard(evicted_key)
                    self.prefetch_wasted += 1

    def invalidate(self, prefix: str | None = None) -> int:
        """Drop entries whose key's first element equals ``prefix`` (a store
        path), or everything when ``prefix`` is None; returns the drop count."""
        with self._lock:
            if prefix is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._current_bytes = 0
                self.prefetch_wasted += len(self._prefetched)
                self._prefetched.clear()
                return dropped
            doomed = [key for key in self._entries
                      if isinstance(key, tuple) and key and key[0] == prefix]
            for key in doomed:
                _, nbytes = self._entries.pop(key)
                self._current_bytes -= nbytes
                if key in self._prefetched:
                    self._prefetched.discard(key)
                    self.prefetch_wasted += 1
            return len(doomed)

    # ------------------------------------------------------------------ introspection
    def __contains__(self, key: Hashable) -> bool:
        """Silent membership probe: no hit/miss counter moves, no LRU touch.

        The warm path uses this to skip already-cached chunks without
        polluting the hit-rate statistics the sweeps are measured by.
        """
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Bytes currently held (approximate, via the insertion estimates)."""
        with self._lock:
            return self._current_bytes

    def snapshot(self) -> dict:
        """Counters and occupancy as one JSON-ready dict (for the stats endpoint)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "prefetch_issued": self.prefetch_issued,
                "prefetch_used": self.prefetch_used,
                "prefetch_wasted": self.prefetch_wasted,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChunkCache(entries={len(self)}, bytes={self.current_bytes}/"
                f"{self.max_bytes}, hits={self.hits}, misses={self.misses})")
