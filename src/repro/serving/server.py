"""The asyncio query service: newline-delimited JSON, coalesced fused plans.

Protocol (one JSON object per line, over TCP)::

    -> {"id": 7, "kind": "evaluate", "outputs": {"m": <wire>, "v": <wire>}}
    <- {"id": 7, "ok": true, "results": {"m": ..., "v": ...},
        "batch": {"requests": 3, "plans": 1, "passes": 2, "coalesced": true},
        "seconds": 0.0123}

    -> {"id": 8, "kind": "stats"}      <- {"id": 8, "ok": true, "stats": {...}}
    -> {"id": 9, "kind": "catalog"}    <- {"id": 9, "ok": true, "catalog": {...}}

Failures answer ``{"id": ..., "ok": false, "error": "..."}`` per request —
malformed JSON, malformed wire nodes, unknown catalog names and invalid
expressions never take the server down.

**Coalescing.**  Evaluate requests land on a queue.  The scheduler takes the
first waiting request, sleeps one *tick* so concurrent requests can pile up,
drains the queue, and compiles every collected request's reductions into **one
fused plan** (outputs namespaced per request).  The planner's partial dedup
then does the heavy lifting: N users asking for overlapping statistics over
the same catalog stores share fold partials and decode sweeps, so a batch
costs barely more than one request.  Results fan back per request and are
bit-identical to evaluating each request alone (same partials, same fsum
combine — the engine's bit-identity guarantee is per fold term, and fold terms
are independent of which outputs reference them).

Plans execute on a **single worker thread**, one batch at a time — plan
execution is CPU/IO-bound numpy work that would fight the GIL anyway, and
serializing it keeps shared cached chunks safe from concurrent coefficient
priming (:mod:`repro.serving.cache`).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from .. import engine
from ..core.exceptions import CodecError
from ..engine.wire import WIRE_VERSION, WireError, request_from_wire
from ..reliability.errors import WorkerCrashError
from .catalog import StoreCatalog
from .client import ServerError
from .metrics import ServiceMetrics

__all__ = ["QueryService", "ThreadedQueryService", "DEFAULT_TICK_SECONDS"]

#: Default coalescing window: long enough for concurrent requests to pile up,
#: short enough to be invisible next to a store sweep.
DEFAULT_TICK_SECONDS = 0.002


@dataclass
class _Pending:
    """One validated evaluate request waiting for a scheduler tick."""

    outputs: dict
    future: "asyncio.Future" = field(repr=False)


class QueryService:
    """Serve fused-plan evaluations of wire-form expression requests.

    Parameters
    ----------
    catalog:
        The :class:`StoreCatalog` whose names requests may reference.
    tick:
        Coalescing window in seconds: after the first queued request, the
        scheduler waits this long before draining the queue into one batch.
        ``0`` still drains whatever is already queued (opportunistic
        coalescing with no added latency).
    coalesce:
        When False, every request in a batch executes as its own plan — the
        "naive" mode the serving benchmark compares against.
    metrics:
        Optional :class:`ServiceMetrics`; one is created (wired to the
        catalog's cache) when omitted.
    backend:
        Kernel backend name every served plan executes under (``None`` →
        the bit-exact ``reference`` default).  Compiled backends pay JIT
        warm-up once per plan *signature* — the signature-keyed kernel cache
        is process-wide, so coalesced plans with the same term shape reuse
        one kernel across requests and ticks.  Unknown names raise here, at
        construction; a known-but-unavailable backend falls back to
        ``reference`` per plan (recorded in the metrics by-backend counts).
    deadline:
        Optional per-request budget in seconds: a request still waiting for
        its batch past this answers ``{"ok": false, "deadline_exceeded":
        true}`` instead of hanging the client (the batch keeps running for
        its other requests).
    max_in_flight:
        Optional backpressure bound: evaluate requests beyond this many
        concurrently in flight are rejected immediately with ``{"ok": false,
        "overloaded": true}`` — an explicit signal the client can back off
        on, never a hang.
    workers:
        When positive, batches execute through a
        :class:`repro.parallel.ProcessExecutor` with this many worker
        processes; a crashed pool degrades the batch to serial execution
        (recorded in the metrics degradation counters) instead of failing it.
        ``0`` (default) executes serially on the worker thread.
    prefetch:
        Warm-path control (``docs/performance.md``): when the catalog has a
        chunk cache and ``prefetch`` is not ``0``, each scheduler tick also
        submits the batch's referenced stores to a background warm thread
        that decodes their chunks into the shared cache via
        :func:`repro.streaming.warm_store_cache`, so the plan sweep finds
        them hot.  ``0`` disables the warm path entirely; other values are
        reserved for future depth tuning (the cache byte budget is the real
        bound today).
    """

    def __init__(self, catalog: StoreCatalog, *, tick: float = DEFAULT_TICK_SECONDS,
                 coalesce: bool = True, metrics: ServiceMetrics | None = None,
                 backend: str | None = None, deadline: float | None = None,
                 max_in_flight: int | None = None, workers: int = 0,
                 prefetch: int | None = None):
        if tick < 0:
            raise ValueError("tick must be non-negative")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 (or None)")
        if backend is not None:
            from ..kernels import get_backend_class
            get_backend_class(str(backend).lower())  # fail fast on unknown names
        self.catalog = catalog
        self.tick = float(tick)
        self.coalesce = bool(coalesce)
        self.backend = backend
        self.deadline = deadline
        self.max_in_flight = max_in_flight
        self.metrics = metrics if metrics is not None else ServiceMetrics(
            cache=catalog.cache, catalog=catalog
        )
        if workers > 0:
            from ..parallel import ProcessExecutor
            self._executor = ProcessExecutor(n_workers=workers)
        else:
            self._executor = None
        self._queue: "asyncio.Queue[_Pending | None]" = asyncio.Queue()
        self._pool = ThreadPoolExecutor(max_workers=1,
                                        thread_name_prefix="repro-serving-plan")
        self.prefetch = prefetch
        if prefetch != 0 and catalog.cache is not None:
            self._warm_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serving-prefetch"
            )
        else:
            self._warm_pool = None
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._in_flight = 0  # event-loop-only state, no lock needed
        self._stopping = False

    # ------------------------------------------------------------------ lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the listener, start the scheduler; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port (read it back from the return value
        or :attr:`port`) — what the tests and the benchmark use.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; only valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def port(self) -> int:
        """The bound TCP port (ephemeral binds resolve here)."""
        return self.address[1]

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (the CLI's main loop)."""
        if self._server is None:
            raise RuntimeError("call start() first")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening, drain in-flight batches, shut the worker pool down.

        Graceful: requests already queued before the stop keep their place —
        the scheduler executes them as its final batch and answers them —
        while requests arriving after the stop began are rejected with a
        clean ``server is shutting down`` error instead of being dropped.
        """
        self._stopping = True  # new evaluates answer "shutting down" from here
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._scheduler_task is not None:
            await self._queue.put(None)  # wake the scheduler into its exit path
            await self._scheduler_task
            self._scheduler_task = None
        # fail anything that raced into the queue behind the sentinel, so no
        # awaiting handler hangs forever on an orphaned future
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None and not item.future.done():
                item.future.set_exception(
                    ValueError("server shut down before this request ran")
                )
        self._pool.shutdown(wait=True)
        if self._warm_pool is not None:
            self._warm_pool.shutdown(wait=True)

    # ------------------------------------------------------------------ connections
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One client connection: requests answered in order, one per line."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client went away
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, raw: bytes) -> dict:
        """Parse one request line and route it; always returns a response dict."""
        try:
            message = json.loads(raw)
        except json.JSONDecodeError as exc:
            return {"id": None, "ok": False, "error": f"malformed JSON request: {exc}"}
        if not isinstance(message, dict):
            return {"id": None, "ok": False,
                    "error": f"request must be a JSON object, got {message!r}"}
        base = {"id": message.get("id")}
        kind = message.get("kind", "evaluate")
        if kind == "stats":
            return {**base, "ok": True, "stats": self.metrics.snapshot()}
        if kind == "catalog":
            return {**base, "ok": True, "catalog": self.catalog.describe(),
                    "wire_version": WIRE_VERSION}
        if kind != "evaluate":
            return {**base, "ok": False,
                    "error": f"unknown request kind {kind!r}; valid kinds: "
                             "evaluate, stats, catalog"}
        return {**base, **(await self._evaluate(message))}

    async def _evaluate(self, message: dict) -> dict:
        """Validate one evaluate request, enqueue it, await its batch's results.

        The reliability gates run in order: a stopping server rejects cleanly,
        a full server answers ``overloaded`` immediately (backpressure, never
        a hang), and a request whose batch outlives the per-request
        ``deadline`` answers ``deadline_exceeded`` while the batch finishes
        for everyone else.
        """
        self.metrics.record_received()
        received = time.perf_counter()
        if self._stopping:
            self.metrics.record_failed()
            return {"ok": False, "error": "server is shutting down"}
        if self.max_in_flight is not None and self._in_flight >= self.max_in_flight:
            self.metrics.record_overloaded()
            return {"ok": False, "overloaded": True,
                    "error": f"overloaded: {self._in_flight} request(s) already "
                             f"in flight (limit {self.max_in_flight}); "
                             "back off and retry"}
        try:
            outputs = request_from_wire(message.get("outputs"),
                                        resolve=self.catalog.get)
            # solo compile+validate up front, so one bad request errors alone
            # instead of poisoning the whole coalesced batch
            engine.plan(outputs)._validate_sources()
        except KeyError as exc:
            self.metrics.record_failed()
            return {"ok": False, "error": str(exc).strip("'\"")}
        except (WireError, CodecError, TypeError, ValueError) as exc:
            self.metrics.record_failed()
            return {"ok": False, "error": str(exc)}
        self._in_flight += 1
        try:
            future = asyncio.get_running_loop().create_future()
            await self._queue.put(_Pending(outputs, future))
            try:
                if self.deadline is not None:
                    values, batch_info = await asyncio.wait_for(
                        future, timeout=self.deadline
                    )
                else:
                    values, batch_info = await future
            except asyncio.TimeoutError:
                # wait_for cancelled the future; the scheduler skips done or
                # cancelled futures, so the batch completes for everyone else
                self.metrics.record_deadline_exceeded()
                return {"ok": False, "deadline_exceeded": True,
                        "error": f"request exceeded the {self.deadline:g}s "
                                 "deadline; the server may be overloaded"}
            except Exception as exc:
                # every batch failure becomes a clean error response — an
                # unexpected exception type must not kill the connection
                self.metrics.record_failed()
                return {"ok": False, "error": f"batch execution failed: {exc}"}
        finally:
            self._in_flight -= 1
        latency = time.perf_counter() - received
        self.metrics.record_served(latency)
        return {"ok": True, "results": values, "batch": batch_info,
                "seconds": latency}

    # ------------------------------------------------------------------ scheduling
    async def _scheduler(self) -> None:
        """Collect queued requests per tick and execute them as one batch."""
        loop = asyncio.get_running_loop()
        while True:
            pending = await self._queue.get()
            if pending is None:
                return
            batch = [pending]
            if self.tick > 0:
                await asyncio.sleep(self.tick)
            stopping = False
            while True:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            start = time.perf_counter()
            if self._warm_pool is not None:
                # overlap cache warm-up with the tick's dispatch latency: the
                # warm thread decodes the batch's store chunks into the shared
                # cache while the plan thread is still spinning up
                self._warm_pool.submit(self._warm_batch, batch)
            try:
                per_request, n_plans, passes, backend = await loop.run_in_executor(
                    self._pool, self._execute_batch, batch
                )
            except Exception as exc:
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
            else:
                seconds = time.perf_counter() - start
                self.metrics.record_batch(len(batch), n_plans, passes, seconds,
                                          backend=backend)
                info = {"requests": len(batch), "plans": n_plans,
                        "passes": passes, "coalesced": self.coalesce,
                        "seconds": seconds, "backend": backend}
                for item, values in zip(batch, per_request):
                    if not item.future.done():
                        item.future.set_result((values, info))
            if stopping:
                return

    def _execute_batch(
        self, batch: list[_Pending]
    ) -> tuple[list[dict], int, int, str]:
        """Run one batch on the worker thread; returns per-request value dicts.

        Coalesced: every request's outputs compile into **one** plan under
        ``(request index, output name)`` keys — the planner dedups shared fold
        partials across requests, so overlapping statistics share sweeps.
        Naive: one plan per request, sequentially (the benchmark baseline).
        Either way every plan executes under the service's :attr:`backend`;
        the returned name is what actually ran (``reference`` after an
        availability fallback), for the batch info and by-backend metrics.
        Each plan runs through :meth:`_run_plan`'s degradation ladder, so a
        crashed process pool or a failing compiled kernel degrades the batch
        instead of failing it.
        """
        if self.coalesce:
            joint = {
                (index, name): expression
                for index, item in enumerate(batch)
                for name, expression in item.outputs.items()
            }
            fused = engine.plan(joint)
            values = self._run_plan(fused)
            per_request = [
                {name: values[(index, name)] for name in item.outputs}
                for index, item in enumerate(batch)
            ]
            return per_request, 1, fused.n_passes, fused.last_execution["backend"]
        per_request = []
        passes = 0
        executed = "reference"
        for item in batch:
            solo = engine.plan(item.outputs)
            per_request.append(self._run_plan(solo))
            passes += solo.n_passes
            executed = solo.last_execution["backend"]
        return per_request, len(batch), passes, executed

    def _warm_batch(self, batch: list[_Pending]) -> None:
        """Warm the chunk cache for every store a batch's expressions touch.

        Runs on the dedicated prefetch thread.  Walks each request's
        expression trees for :class:`~repro.engine.expr.Source` leaves that
        wrap open stores, dedups them by identity, and pushes each through
        :func:`repro.streaming.warm_store_cache` — coalesced span reads,
        decode, ``put(..., prefetched=True)``.  Best-effort by design: any
        store error here is swallowed (the sweep itself will surface it with
        full retry/integrity semantics), and a cache-less catalog makes this
        a no-op.
        """
        from ..engine.expr import Source
        from ..streaming.prefetch import warm_store_cache
        from ..streaming.sources import STORE_TYPES

        stores: dict[int, Any] = {}
        for item in batch:
            stack = list(item.outputs.values())
            while stack:
                node = stack.pop()
                if isinstance(node, Source):
                    if isinstance(node.wrapped, STORE_TYPES):
                        stores[id(node.wrapped)] = node.wrapped
                else:
                    stack.extend(getattr(node, "operands", ()))
        warmed = 0
        for store in stores.values():
            try:
                warmed += warm_store_cache(store)
            except Exception:  # noqa: BLE001 - warm path must never fail a batch
                continue
        if warmed:
            self.metrics.record_prefetch(warmed)

    def _run_plan(self, built: "engine.Plan"):
        """Execute one plan with the service's degradation ladder applied.

        * A :class:`WorkerCrashError` from the process executor re-executes
          the plan serially (``process_to_serial``) — correctness over
          parallelism.
        * A compiled kernel failing at runtime already degraded inside
          :meth:`Plan.execute` (``runtime_fallbacks`` in
          ``Plan.last_execution``); it is counted here so ``stats`` shows it.

        Both rungs land in the metrics ``reliability.degradations`` counters
        and in ``Plan.last_execution["fallback_reason"]``.
        """
        try:
            values = built.execute(executor=self._executor, backend=self.backend)
        except WorkerCrashError as exc:
            self.metrics.record_degradation("process_to_serial")
            values = built.execute(backend=self.backend)
            if built.last_execution is not None:
                built.last_execution["fallback_reason"] = (
                    f"process pool crashed ({exc}); batch re-executed serially"
                )
        last = built.last_execution or {}
        if last.get("runtime_fallbacks"):
            self.metrics.record_degradation("compiled_to_interpreted")
        return values


class ThreadedQueryService:
    """Run a :class:`QueryService` on a private event loop in a daemon thread.

    The embedding shape used by the tests, the serving benchmark and the docs:
    enter the context manager, talk to ``host``/``port`` with a
    :class:`repro.serving.QueryClient`, and leave the block to shut the server
    down cleanly.

    ::

        with ThreadedQueryService(catalog, tick=0.005) as served:
            with QueryClient(served.host, served.port) as client:
                client.evaluate({"m": expr.mean(expr.source("temps"))})

    A server thread that fails to start (port in use, bad backend) or fails
    to join at exit raises a typed :class:`repro.serving.ServerError` instead
    of silently proceeding; both waits are configurable via
    ``startup_timeout`` / ``shutdown_timeout`` (seconds).
    """

    def __init__(self, catalog: StoreCatalog, host: str = "127.0.0.1",
                 port: int = 0, *, startup_timeout: float = 30.0,
                 shutdown_timeout: float = 30.0, **service_kwargs):
        self.service = QueryService(catalog, **service_kwargs)
        self.host = host
        self.port = port  # resolved to the bound port once started
        self.startup_timeout = float(startup_timeout)
        self.shutdown_timeout = float(shutdown_timeout)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        """Thread body: own loop, start the service, spin until stopped."""
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.host, self.port = self._loop.run_until_complete(
                self.service.start(self.host, self.port)
            )
        except BaseException as exc:  # surfaced to __enter__
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            # cancel lingering connection handlers so no coroutine dies
            # un-awaited when the loop closes
            leftovers = asyncio.all_tasks(self._loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                self._loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            self._loop.close()

    def __enter__(self) -> "ThreadedQueryService":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serving")
        self._thread.start()
        if not self._ready.wait(timeout=self.startup_timeout):
            raise ServerError(
                f"query service failed to start within {self.startup_timeout:g}s"
            )
        if self._startup_error is not None:
            raise ServerError(
                f"query service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self.shutdown_timeout)
            if self._thread.is_alive():
                raise ServerError(
                    f"query service thread failed to shut down within "
                    f"{self.shutdown_timeout:g}s; its daemon thread may still "
                    "hold the port"
                )
