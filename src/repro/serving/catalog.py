"""Named catalog of compressed stores — the data the query service pushes code to.

A :class:`StoreCatalog` maps client-visible names to
:class:`repro.streaming.CompressedStore` paths and opens each store **once**,
lazily, on first use.  That single shared open handle per name is what makes
cross-request coalescing work: every request resolving ``"temps"`` gets the
*same* store object, so the planner's source dedup (`id`-based for store
objects) merges their folds into one sweep.  The store-level concurrency fix
(positional chunk reads) makes sharing one handle across the server's readers
safe.

A catalog can also attach a process-wide :class:`repro.serving.ChunkCache` to
every store it opens, turning repeated sweeps over hot stores into cache hits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Mapping

from ..core.exceptions import CodecError
from ..streaming.sharded import is_sharded_store, load_manifest, open_store
from ..streaming.sources import STORE_TYPES
from ..streaming.store import CompressedStore
from .cache import ChunkCache

__all__ = ["StoreCatalog"]


class StoreCatalog:
    """Lazily opened, name-keyed collection of compressed stores.

    Parameters
    ----------
    stores:
        Mapping of catalog names to store paths (or already open
        :class:`CompressedStore` objects, which the catalog adopts but does
        not reopen).
    cache:
        Optional :class:`ChunkCache` attached to every store the catalog
        opens (and to adopted stores that have none).

    Usable as a context manager; closing the catalog closes every store it
    opened itself (adopted stores belong to their creator).
    """

    def __init__(self, stores: Mapping[str, "str | Path | CompressedStore"],
                 cache: ChunkCache | None = None):
        if not stores:
            raise ValueError("a catalog needs at least one named store")
        self.cache = cache
        self._paths: dict[str, Path] = {}
        self._open: dict[str, CompressedStore] = {}
        self._owned: set[str] = set()
        for name, target in stores.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"catalog names must be non-empty strings, got {name!r}")
            if isinstance(target, STORE_TYPES):
                self._adopt(name, target)
            else:
                self._paths[name] = Path(target)

    def _adopt(self, name: str, store: CompressedStore) -> None:
        """Register an externally opened store under ``name`` (not owned)."""
        self._open[name] = store
        self._paths[name] = store.path
        if self.cache is not None and store.chunk_cache is None:
            store.chunk_cache = self.cache

    # ------------------------------------------------------------------ access
    @property
    def names(self) -> tuple[str, ...]:
        """Every catalog name, sorted (the client-visible namespace)."""
        return tuple(sorted(self._paths))

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self._paths)

    def get(self, name: str) -> CompressedStore:
        """The open store for ``name`` (opened on first use, then shared).

        Raises ``KeyError`` naming the valid catalog for unknown names — the
        server maps this to a per-request error response.
        """
        store = self._open.get(name)
        if store is not None:
            return store
        path = self._paths.get(name)
        if path is None:
            raise KeyError(
                f"unknown store {name!r}; catalog has: {', '.join(self.names)}"
            )
        store = open_store(path)
        if self.cache is not None:
            store.chunk_cache = self.cache
        self._open[name] = store
        self._owned.add(name)
        return store

    def prefetch(self, name: str, indices=None) -> int:
        """Warm the shared chunk cache with ``name``'s decoded chunks.

        Delegates to :func:`repro.streaming.warm_store_cache` through the
        catalog's single shared handle, so the warmed entries are exactly the
        ones later sweeps will hit.  Returns the number of chunks decoded into
        the cache (0 when the catalog has no cache attached).  ``indices``
        restricts the warm-up to specific chunk indices.
        """
        from ..streaming.prefetch import warm_store_cache

        return warm_store_cache(self.get(name), indices)

    def refresh(self, name: str) -> None:
        """Drop ``name``'s open handle and cached chunks; reopen on next use.

        The hook for stores repaired or rewritten **in place** (e.g. ``repro
        verify-store --repair-from``): the shared handle still maps the old
        bytes and the chunk cache may hold chunks decoded from them, so both
        are discarded — per shard for sharded stores.  Owned handles are
        closed; adopted ones are only forgotten (their creator closes them).
        Unknown names raise ``KeyError`` like :meth:`get`.
        """
        if name not in self._paths:
            raise KeyError(
                f"unknown store {name!r}; catalog has: {', '.join(self.names)}"
            )
        store = self._open.pop(name, None)
        if self.cache is not None:
            target = self._paths[name]
            if store is not None and hasattr(store, "shard_paths"):
                paths = store.shard_paths()
            elif is_sharded_store(target):
                # cache keys are per shard file, so enumerate them even when
                # the sharded handle was never opened through this catalog
                paths = tuple(str(target / entry["file"])
                              for entry in load_manifest(target)["shards"])
            else:
                paths = (str(target),)
            for path in paths:
                self.cache.invalidate(path)
        if store is not None and name in self._owned:
            self._owned.discard(name)
            try:
                store.close()
            except CodecError:  # pragma: no cover - close never raises this
                pass

    def open_stores(self) -> tuple[CompressedStore, ...]:
        """Every store currently open (touched by a query or adopted).

        Opens nothing; the metrics layer uses this to sum per-store reliability
        counters (``read_retries``) without forcing cold stores open.
        """
        return tuple(self._open.values())

    def describe(self) -> dict:
        """JSON-ready catalog listing: per name, path plus geometry if open.

        Opens nothing: geometry appears once a store has been touched by a
        query, so describing a cold catalog stays free.
        """
        listing = {}
        for name in self.names:
            entry: dict = {"path": str(self._paths[name])}
            store = self._open.get(name)
            if store is not None:
                entry.update({
                    "shape": list(store.shape),
                    "n_chunks": store.n_chunks,
                    "codec": store.codec_name,
                })
            listing[name] = entry
        return listing

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close every store this catalog opened (adopted stores are left open)."""
        for name in list(self._owned):
            store = self._open.pop(name, None)
            if store is not None:
                try:
                    store.close()
                except CodecError:  # pragma: no cover - close never raises this
                    pass
            self._owned.discard(name)

    def __enter__(self) -> "StoreCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreCatalog({', '.join(self.names)})"
