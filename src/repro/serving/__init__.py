"""Query serving over catalogs of compressed stores.

This package turns the lazy engine into a long-lived service: clients submit
wire-form reduction requests (:mod:`repro.engine.wire`) against a named
:class:`StoreCatalog`, and the :class:`QueryService` scheduler coalesces every
request arriving within one tick into **a single fused plan** — N concurrent
users asking overlapping statistics over shared stores cost barely more than
one user, because the planner dedups their fold partials and decode sweeps.

Layers:

- :class:`ChunkCache` — process-wide byte-budgeted LRU over decoded chunk
  records, shared by every store the catalog opens.
- :class:`StoreCatalog` — name → store mapping with lazy single-open handles
  (the identity the planner's cross-request source dedup keys on).
- :class:`ServiceMetrics` — request/latency/coalescing counters behind the
  stats endpoint.
- :class:`QueryService` / :class:`ThreadedQueryService` — the asyncio server
  and its embed-in-a-thread wrapper.
- :class:`QueryClient` — small synchronous client for the line protocol.

See ``docs/serving.md`` for the protocol and an end-to-end walkthrough, and
``benchmarks/bench_serving.py`` for coalesced-vs-naive throughput numbers.
"""

from .cache import DEFAULT_CACHE_BYTES, ChunkCache
from .catalog import StoreCatalog
from .client import QueryClient, ServerError
from .metrics import ServiceMetrics
from .server import DEFAULT_TICK_SECONDS, QueryService, ThreadedQueryService

__all__ = [
    "ChunkCache",
    "DEFAULT_CACHE_BYTES",
    "StoreCatalog",
    "ServiceMetrics",
    "QueryService",
    "ThreadedQueryService",
    "QueryClient",
    "ServerError",
    "DEFAULT_TICK_SECONDS",
]
