"""Small synchronous client for the query service's line protocol.

:class:`QueryClient` speaks the newline-delimited JSON protocol of
:class:`repro.serving.QueryService` over one TCP connection.  It accepts
either ready-made wire dicts or live :class:`repro.engine.expr` nodes (which
it serializes with :func:`repro.engine.wire.request_to_wire` — sources must
wrap catalog *names*, since the stores live server-side).

One connection answers requests in order, so a single client is a sequential
caller; run several clients (threads or processes) to exercise the server's
request coalescing, as ``benchmarks/bench_serving.py`` does.

**Reliability.**  The client never leaks its socket: a failed connect, a
malformed response or a mid-call transport error closes the connection before
the error propagates.  With a ``retry`` policy, connects and calls are retried
with decorrelated-jitter backoff (reconnecting between attempts — calls are
read-only, so a retried evaluate is safe); with a per-call ``deadline``, the
whole call (including retries) is bounded and overruns raise
:class:`repro.reliability.DeadlineError`.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Mapping

from ..engine.expr import Expr
from ..engine.wire import request_to_wire
from ..reliability.errors import DeadlineError
from ..reliability.retry import Deadline, RetryPolicy, retry_call

__all__ = ["QueryClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered ``ok: false``; the message is the server's error.

    Also raised by :class:`repro.serving.ThreadedQueryService` when the server
    thread fails to start or join within its timeout.  Inspect
    :attr:`response` (when set) for the structured error — ``overloaded`` and
    ``deadline_exceeded`` rejections are flagged there.
    """

    def __init__(self, message: str, *, response: dict | None = None):
        super().__init__(message)
        self.response = response

    @property
    def overloaded(self) -> bool:
        """True when the server rejected the call with backpressure."""
        return bool(self.response and self.response.get("overloaded"))

    @property
    def deadline_exceeded(self) -> bool:
        """True when the server gave up on the call at its own deadline."""
        return bool(self.response and self.response.get("deadline_exceeded"))


class QueryClient:
    """One TCP connection to a :class:`repro.serving.QueryService`.

    ::

        with QueryClient(host, port) as client:
            values = client.evaluate({"m": expr.mean(expr.source("temps"))})

    Usable as a context manager; :meth:`close` is idempotent.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout per blocking operation, in seconds (``None`` blocks
        forever).
    retry:
        Optional :class:`repro.reliability.RetryPolicy`; when set, failed
        connects and transport errors mid-call (connection reset, malformed
        response, timeout without a deadline) are retried on a fresh
        connection.  ``None`` (default) fails on the first error, like the
        pre-reliability client.
    deadline:
        Optional per-call wall-clock budget in seconds, spanning every retry;
        an overrun raises :class:`repro.reliability.DeadlineError`.
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0, *,
                 retry: RetryPolicy | None = None,
                 deadline: float | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.deadline = deadline
        self._socket: socket.socket | None = None
        self._stream = None
        self._next_id = 0
        self._connect(Deadline.after(deadline))

    # ------------------------------------------------------------------ transport
    def _connect_once(self) -> None:
        """One connect attempt; on failure nothing is left open."""
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            self._stream = sock.makefile("rwb")
        except Exception:
            sock.close()
            raise
        self._socket = sock

    def _connect(self, deadline: Deadline | None) -> None:
        """Connect, retrying per the client's policy under ``deadline``."""
        if self.retry is None:
            self._connect_once()
            return
        retry_call(self._connect_once, policy=self.retry,
                   retry_on=(OSError,), deadline=deadline)

    def _call(self, request: dict) -> dict:
        """Send one request line, read one response line, check ``ok``.

        Transport failures close the socket (never leaking it) and, with a
        ``retry`` policy, reconnect and retry; :class:`ServerError` (the
        server answered, unhappily) and :class:`DeadlineError` are never
        retried.
        """
        deadline = Deadline.after(self.deadline)
        attempts = self.retry.attempts if self.retry is not None else 1
        delays = self.retry.delays() if self.retry is not None else None
        last_exc: BaseException | None = None
        for attempt in range(1, attempts + 1):
            try:
                if self._socket is None:
                    self._connect(deadline)
                return self._exchange(request, deadline)
            except DeadlineError:
                self.close()
                raise
            except (ConnectionError, OSError) as exc:
                self.close()
                last_exc = exc
                if attempt >= attempts:
                    break
                pause = next(delays)
                if deadline is not None:
                    left = deadline.remaining()
                    if left <= 0:
                        break
                    pause = min(pause, left)
                time.sleep(pause)
        assert last_exc is not None
        raise last_exc

    def _exchange(self, request: dict, deadline: Deadline | None) -> dict:
        """One request/response round trip on the current connection."""
        self._next_id += 1
        request = {"id": self._next_id, **request}
        if deadline is not None:
            left = deadline.remaining()
            if left <= 0:
                raise DeadlineError(
                    f"call exceeded its {deadline.budget:g}s deadline before sending"
                )
            self._socket.settimeout(
                left if self.timeout is None else min(self.timeout, left)
            )
        try:
            self._stream.write(json.dumps(request).encode("utf-8") + b"\n")
            self._stream.flush()
            line = self._stream.readline()
        except socket.timeout as exc:
            if deadline is not None and deadline.expired():
                raise DeadlineError(
                    f"call exceeded its {deadline.budget:g}s deadline waiting "
                    "for the server"
                ) from exc
            raise  # a plain socket timeout stays an OSError (retryable)
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"malformed response from server: {exc}") from exc
        if not isinstance(response, dict) or response.get("id") != self._next_id:
            got = response.get("id") if isinstance(response, dict) else response
            raise ConnectionError(
                f"response id {got!r} does not match request id {self._next_id}"
            )
        if not response.get("ok"):
            raise ServerError(response.get("error", "unknown server error"),
                              response=response)
        return response

    # ------------------------------------------------------------------ requests
    def evaluate(self, outputs: Mapping[str, "Expr | dict"]) -> dict[str, Any]:
        """Evaluate named reductions server-side; returns ``{name: value}``.

        ``outputs`` maps names to reduction expressions over catalog-name
        sources, or to already serialized wire dicts (passed through).
        """
        response = self.evaluate_full(outputs)
        return response["results"]

    def evaluate_full(self, outputs: Mapping[str, "Expr | dict"]) -> dict:
        """Like :meth:`evaluate` but returns the whole response — results plus
        the batch the request rode in (``batch.requests``/``plans``/``passes``)
        and the server-side latency in seconds."""
        live = {name: node for name, node in outputs.items()
                if isinstance(node, Expr)}
        wired = dict(request_to_wire(live)) if live else {}
        for name, node in outputs.items():
            if name not in wired:
                wired[name] = node  # already a wire dict
        return self._call({"kind": "evaluate", "outputs": wired})

    def stats(self) -> dict:
        """The server's metrics snapshot (requests, plans, latency, cache)."""
        return self._call({"kind": "stats"})["stats"]

    def catalog(self) -> dict:
        """The server's catalog listing (name → path and geometry if open)."""
        return self._call({"kind": "catalog"})["catalog"]

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close the stream and socket; safe to call more than once."""
        stream, sock = self._stream, self._socket
        self._stream = None
        self._socket = None
        try:
            if stream is not None:
                stream.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        finally:
            if sock is not None:
                sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
