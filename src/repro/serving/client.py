"""Small synchronous client for the query service's line protocol.

:class:`QueryClient` speaks the newline-delimited JSON protocol of
:class:`repro.serving.QueryService` over one TCP connection.  It accepts
either ready-made wire dicts or live :class:`repro.engine.expr` nodes (which
it serializes with :func:`repro.engine.wire.request_to_wire` — sources must
wrap catalog *names*, since the stores live server-side).

One connection answers requests in order, so a single client is a sequential
caller; run several clients (threads or processes) to exercise the server's
request coalescing, as ``benchmarks/bench_serving.py`` does.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

from ..engine.expr import Expr
from ..engine.wire import request_to_wire

__all__ = ["QueryClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered ``ok: false``; the message is the server's error."""


class QueryClient:
    """One TCP connection to a :class:`repro.serving.QueryService`.

    ::

        with QueryClient(host, port) as client:
            values = client.evaluate({"m": expr.mean(expr.source("temps"))})

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------ transport
    def _call(self, request: dict) -> dict:
        """Send one request line, read one response line, check ``ok``."""
        self._next_id += 1
        request = {"id": self._next_id, **request}
        self._stream.write(json.dumps(request).encode("utf-8") + b"\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            raise ServerError(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------------ requests
    def evaluate(self, outputs: Mapping[str, "Expr | dict"]) -> dict[str, Any]:
        """Evaluate named reductions server-side; returns ``{name: value}``.

        ``outputs`` maps names to reduction expressions over catalog-name
        sources, or to already serialized wire dicts (passed through).
        """
        response = self.evaluate_full(outputs)
        return response["results"]

    def evaluate_full(self, outputs: Mapping[str, "Expr | dict"]) -> dict:
        """Like :meth:`evaluate` but returns the whole response — results plus
        the batch the request rode in (``batch.requests``/``plans``/``passes``)
        and the server-side latency in seconds."""
        live = {name: node for name, node in outputs.items()
                if isinstance(node, Expr)}
        wired = dict(request_to_wire(live)) if live else {}
        for name, node in outputs.items():
            if name not in wired:
                wired[name] = node  # already a wire dict
        return self._call({"kind": "evaluate", "outputs": wired})

    def stats(self) -> dict:
        """The server's metrics snapshot (requests, plans, latency, cache)."""
        return self._call({"kind": "stats"})["stats"]

    def catalog(self) -> dict:
        """The server's catalog listing (name → path and geometry if open)."""
        return self._call({"kind": "catalog"})["catalog"]

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close the stream and socket; safe to call more than once."""
        try:
            self._stream.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
