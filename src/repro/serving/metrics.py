"""Request, latency and coalescing metrics for the query service.

One :class:`ServiceMetrics` instance per server aggregates everything the
stats endpoint reports: request counts, per-request latency quantiles over a
sliding window, and the *coalescing ledger* — how many fused plans were
executed for how many requests, which is the observable proof that N
concurrent users shared sweeps (``plans.executed`` ≪ ``requests.served``
under overlapping load).  Cache counters are pulled live from the attached
:class:`repro.serving.ChunkCache` at snapshot time.

All record methods are thread-safe (the scheduler and every connection handler
may touch them concurrently through the executor thread).
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

from .cache import ChunkCache

__all__ = ["ServiceMetrics"]

#: Sliding latency window: enough samples for stable p99 at bench scale
#: without unbounded memory in a long-lived server.
_LATENCY_WINDOW = 8192


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already sorted, non-empty sample."""
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters + latency reservoir behind the stats endpoint."""

    def __init__(self, cache: ChunkCache | None = None,
                 latency_window: int = _LATENCY_WINDOW, catalog=None):
        self.cache = cache
        self.catalog = catalog
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self.requests_received = 0
        self.requests_served = 0
        self.requests_failed = 0
        self.requests_overloaded = 0
        self.requests_deadline_exceeded = 0
        self.plans_executed = 0
        self.plan_passes_total = 0
        self.plan_seconds_total = 0.0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.plans_by_backend: Counter = Counter()
        self.degradations: Counter = Counter()
        self.prefetch_batches = 0
        self.prefetch_chunks = 0

    # ------------------------------------------------------------------ recording
    def record_received(self) -> None:
        """An evaluate request arrived (before validation)."""
        with self._lock:
            self.requests_received += 1

    def record_failed(self) -> None:
        """An evaluate request ended in an error response."""
        with self._lock:
            self.requests_failed += 1

    def record_overloaded(self) -> None:
        """An evaluate request was rejected by max-in-flight backpressure."""
        with self._lock:
            self.requests_failed += 1
            self.requests_overloaded += 1

    def record_deadline_exceeded(self) -> None:
        """An evaluate request timed out waiting for its batch's results."""
        with self._lock:
            self.requests_failed += 1
            self.requests_deadline_exceeded += 1

    def record_degradation(self, kind: str) -> None:
        """One plan degraded instead of failing (the degradation ladder).

        ``kind`` names the rung taken: ``"compiled_to_interpreted"`` (a
        compiled kernel failed at runtime, the interpreter finished the sweep)
        or ``"process_to_serial"`` (the process pool crashed, the plan re-ran
        serially).  Surfaced by :meth:`snapshot` under ``reliability`` — the
        observable proof that serving degraded rather than erroring.
        """
        with self._lock:
            self.degradations[kind] += 1

    def record_served(self, latency_seconds: float) -> None:
        """An evaluate request got its results; latency measured at the server."""
        with self._lock:
            self.requests_served += 1
            self._latencies.append(float(latency_seconds))

    def record_batch(self, n_requests: int, n_plans: int, passes: int,
                     seconds: float, backend: str | None = None) -> None:
        """One scheduler tick executed ``n_plans`` plan(s) for ``n_requests``.

        ``backend`` is the kernel backend the batch's plans *actually* ran
        under (post any availability fallback); ``None`` counts as
        ``reference``.  The per-backend plan counts surface in
        :meth:`snapshot` as the proof that compiled serving is active.
        """
        with self._lock:
            self.batches += 1
            self.batched_requests += n_requests
            self.max_batch = max(self.max_batch, n_requests)
            self.plans_executed += n_plans
            self.plan_passes_total += passes
            self.plan_seconds_total += float(seconds)
            self.plans_by_backend[backend or "reference"] += n_plans

    def record_prefetch(self, n_chunks: int) -> None:
        """One scheduler tick warmed ``n_chunks`` chunks ahead of its batch.

        The cache-side effectiveness split (issued/used/wasted) lives in the
        :class:`ChunkCache` snapshot; this counts the warm-path *activity* the
        scheduler drove, so an idle prefetcher is visible as zero here even
        when the cache is busy from sweep-side fills.
        """
        with self._lock:
            self.prefetch_batches += 1
            self.prefetch_chunks += n_chunks

    # ------------------------------------------------------------------ reporting
    def snapshot(self) -> dict:
        """Everything the stats endpoint returns, as one JSON-ready dict."""
        with self._lock:
            ordered = sorted(self._latencies)
            latency = {
                "count": len(ordered),
                "p50": _quantile(ordered, 0.50) if ordered else None,
                "p99": _quantile(ordered, 0.99) if ordered else None,
                "mean": (sum(ordered) / len(ordered)) if ordered else None,
            }
            batches = self.batches
            snapshot = {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": {
                    "received": self.requests_received,
                    "served": self.requests_served,
                    "failed": self.requests_failed,
                },
                "plans": {
                    "executed": self.plans_executed,
                    "passes_total": self.plan_passes_total,
                    "seconds_total": self.plan_seconds_total,
                    "batches": batches,
                    "batched_requests": self.batched_requests,
                    "max_batch": self.max_batch,
                    "mean_batch": (self.batched_requests / batches) if batches else 0.0,
                    "by_backend": dict(self.plans_by_backend),
                },
                "latency_seconds": latency,
                "prefetch": {
                    "batches": self.prefetch_batches,
                    "chunks_warmed": self.prefetch_chunks,
                },
                "reliability": {
                    "overloaded": self.requests_overloaded,
                    "deadline_exceeded": self.requests_deadline_exceeded,
                    "degradations": dict(self.degradations),
                },
            }
        if self.catalog is not None:
            snapshot["reliability"]["store_read_retries"] = sum(
                store.read_retries for store in self.catalog.open_stores()
            )
        if self.cache is not None:
            snapshot["cache"] = self.cache.snapshot()
        return snapshot
