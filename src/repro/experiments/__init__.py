"""Experiment harnesses: one module per table/figure of the paper's evaluation.

Each module exposes a configuration dataclass with small-but-representative default
parameters, a ``run(config)`` function returning a structured result, and a
``format_result(result)`` function that renders the same rows/series the paper
reports.  The pytest-benchmark suites under ``benchmarks/`` and the command line
interface (``python -m repro``) are thin wrappers around these functions, and
``EXPERIMENTS.md`` records their outputs next to the paper's numbers.

=====================  =====================================================
Module                 Reproduces
=====================  =====================================================
``table1_operations``  Table I — operation list and error classification
``compression_ratio``  §IV-C — compression-ratio formula and worked examples
``fig2_blaz``          Fig 2 — PyBlaz vs Blaz operation time
``fig3_zfp``           Fig 3 — PyBlaz vs ZFP compression/decompression time
``fig4_shallow_water`` Fig 4 — precision-difference capture in compressed space
``fig5_lgg``           Fig 5 — error of compressed-space statistics vs settings
``fig6_fission``       Fig 6 — scission detection: L2 vs Wasserstein
``fig7_op_times``      Fig 7 — operation time across settings (3-D arrays)
``error_bounds``       §IV-D — binning/pruning error bounds
``ablations``          DESIGN.md §4 — design-choice ablations
=====================  =====================================================
"""

from . import (
    ablations,
    compression_ratio,
    error_bounds,
    fig2_blaz,
    fig3_zfp,
    fig4_shallow_water,
    fig5_lgg,
    fig6_fission,
    fig7_op_times,
    table1_operations,
)
from .common import ExperimentResult, Timer, format_table, smooth_field

__all__ = [
    "table1_operations",
    "compression_ratio",
    "fig2_blaz",
    "fig3_zfp",
    "fig4_shallow_water",
    "fig5_lgg",
    "fig6_fission",
    "fig7_op_times",
    "error_bounds",
    "ablations",
    "ExperimentResult",
    "Timer",
    "format_table",
    "smooth_field",
]
