"""Fig 7 — PyBlaz operation time on 3-dimensional arrays across compression settings.

Appendix VI-B of the paper times eleven operations — compress, decompress, negate,
add, multiply (by a scalar), dot product, L2 norm, cosine similarity, mean, variance
and SSIM — on cubic 3-D arrays from 4 to 1024 elements per side, with block size 4
and every combination of float type (bfloat16/float16/float32/float64) and bin index
type (int8/int16/int32).  The qualitative observations to reproduce:

* array-restructuring operations (compress, decompress) scale with array size;
* negate and multiply are nearly constant-time (they touch only the stored indices
  and maxima, not the coefficient space);
* the scalar reductions (dot, L2, mean, variance, cosine, SSIM) scale with the
  number of stored coefficients;
* the float/index type combinations shift the curves but not their shapes.

The default sweep uses a subset of sizes and setting combinations so the harness
finishes quickly; the full grid is a configuration away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CompressionSettings, Compressor
from ..core import ops
from .common import ExperimentResult, median_time

__all__ = ["Fig7Config", "run", "format_result", "OPERATIONS"]

#: The operations Fig 7 times, in the paper's panel order.
OPERATIONS: tuple[str, ...] = (
    "compress",
    "decompress",
    "negate",
    "add",
    "multiply",
    "dot",
    "l2_norm",
    "cosine_similarity",
    "mean",
    "variance",
    "ssim",
)


@dataclass(frozen=True)
class Fig7Config:
    """Configuration of the Fig 7 timing sweep."""

    sizes: tuple[int, ...] = (4, 8, 16, 32, 64)
    float_formats: tuple[str, ...] = ("float32", "float64")
    index_dtypes: tuple[str, ...] = ("int8", "int16", "int32")
    block_size: int = 4
    repeats: int = 3
    seed: int = 3


def run(config: Fig7Config = Fig7Config()) -> ExperimentResult:
    """Time every Fig 7 operation across sizes and setting combinations."""
    rng = np.random.default_rng(config.seed)
    rows: list[tuple] = []
    for float_format in config.float_formats:
        for index_dtype in config.index_dtypes:
            settings = CompressionSettings(
                block_shape=(config.block_size,) * 3,
                float_format=float_format,
                index_dtype=index_dtype,
            )
            compressor = Compressor(settings)
            for size in config.sizes:
                a = rng.random((size, size, size))
                b = rng.random((size, size, size))
                ca, cb = compressor.compress(a), compressor.compress(b)

                timed = {
                    "compress": lambda: compressor.compress(a),
                    "decompress": lambda: compressor.decompress(ca),
                    "negate": lambda: ops.negate(ca),
                    "add": lambda: ops.add(ca, cb),
                    "multiply": lambda: ops.multiply_scalar(ca, 1.5),
                    "dot": lambda: ops.dot(ca, cb),
                    "l2_norm": lambda: ops.l2_norm(ca),
                    "cosine_similarity": lambda: ops.cosine_similarity(ca, cb),
                    "mean": lambda: ops.mean(ca),
                    "variance": lambda: ops.variance(ca),
                    "ssim": lambda: ops.structural_similarity(ca, cb),
                }
                for operation in OPERATIONS:
                    seconds = median_time(timed[operation], config.repeats)
                    rows.append((size, float_format, index_dtype, operation, seconds))

    return ExperimentResult(
        name="Fig 7 — PyBlaz operation time (3-D arrays, block size 4)",
        columns=("array size", "float", "index", "operation", "seconds"),
        rows=rows,
        metadata={"block_size": config.block_size, "sizes": config.sizes},
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
