"""Fig 7 — PyBlaz operation time on 3-dimensional arrays across compression settings.

Appendix VI-B of the paper times eleven operations — compress, decompress, negate,
add, multiply (by a scalar), dot product, L2 norm, cosine similarity, mean, variance
and SSIM — on cubic 3-D arrays from 4 to 1024 elements per side, with block size 4
and every combination of float type (bfloat16/float16/float32/float64) and bin index
type (int8/int16/int32).  The qualitative observations to reproduce:

* array-restructuring operations (compress, decompress) scale with array size;
* negate and multiply are nearly constant-time (they touch only the stored indices
  and maxima, not the coefficient space);
* the scalar reductions (dot, L2, mean, variance, cosine, SSIM) scale with the
  number of stored coefficients;
* the float/index type combinations shift the curves but not their shapes.

The default sweep uses a subset of sizes and setting combinations so the harness
finishes quickly; the full grid is a configuration away.

Beyond the paper, the sweep also times the **out-of-core** rows: the same
reductions (plus a structural add) evaluated by :mod:`repro.streaming.ops`
over chunked on-disk stores, so the table quantifies what chunk-at-a-time
evaluation costs relative to the in-memory compressed-space operations.  These
rows carry a ``store_`` prefix in the operation column and can be disabled with
``Fig7Config(out_of_core=False)``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core import CompressionSettings, Compressor
from ..core import ops
from .common import ExperimentResult, median_time

__all__ = ["Fig7Config", "run", "format_result", "OPERATIONS", "STORE_OPERATIONS"]

#: The operations Fig 7 times, in the paper's panel order.
OPERATIONS: tuple[str, ...] = (
    "compress",
    "decompress",
    "negate",
    "add",
    "multiply",
    "dot",
    "l2_norm",
    "cosine_similarity",
    "mean",
    "variance",
    "ssim",
)

#: The out-of-core ablation rows: store-level counterparts via streaming.ops,
#: plus the fused-vs-sequential engine comparison on the six-reduction workload
#: (mean, variance, l2_norm, dot, covariance, cosine_similarity): the
#: ``store_6op_sequential`` row times six independent ``streaming.ops`` calls
#: (12 decode sweeps across the two stores), ``store_6op_fused`` times one
#: :mod:`repro.engine` plan (2 fused sweeps per store) producing bit-identical
#: scalars.  The per-store decode-pass counts land in the result metadata.
STORE_OPERATIONS: tuple[str, ...] = (
    "store_dot",
    "store_l2_norm",
    "store_cosine_similarity",
    "store_mean",
    "store_variance",
    "store_add",
    "store_6op_sequential",
    "store_6op_fused",
)


@dataclass(frozen=True)
class Fig7Config:
    """Configuration of the Fig 7 timing sweep."""

    sizes: tuple[int, ...] = (4, 8, 16, 32, 64)
    float_formats: tuple[str, ...] = ("float32", "float64")
    index_dtypes: tuple[str, ...] = ("int8", "int16", "int32")
    block_size: int = 4
    repeats: int = 3
    seed: int = 3
    #: Also time the store-level operations (the out-of-core ablation rows).
    out_of_core: bool = True
    #: Store slab height in rows; the default keeps several chunks per store.
    slab_rows: int = 16


def _six_op_expressions(store_a, store_b) -> dict:
    """The fused-benchmark workload: the six Table I reductions over two stores."""
    from ..engine import expr

    x, y = expr.source(store_a), expr.source(store_b)
    return {
        "mean": expr.mean(x),
        "variance": expr.variance(x),
        "l2_norm": expr.l2_norm(x),
        "dot": expr.dot(x, y),
        "covariance": expr.covariance(x, y),
        "cosine_similarity": expr.cosine_similarity(x, y),
    }


def _store_timings(store_a, store_b, out_path) -> dict:
    """The timed store-level operation closures over two open chunked stores."""
    from .. import engine
    from ..streaming import ops as stream_ops

    def timed_add():
        """One store-level add, closing (and then overwriting) the output store."""
        stream_ops.add(store_a, store_b, out_path).close()

    def timed_six_sequential():
        """The six-reduction workload as independent sweeps (one per op call)."""
        stream_ops.mean(store_a)
        stream_ops.variance(store_a)
        stream_ops.l2_norm(store_a)
        stream_ops.dot(store_a, store_b)
        stream_ops.covariance(store_a, store_b)
        stream_ops.cosine_similarity(store_a, store_b)

    def timed_six_fused():
        """The same six reductions through one fused engine plan (2 sweeps)."""
        engine.evaluate(_six_op_expressions(store_a, store_b))

    return {
        "store_dot": lambda: stream_ops.dot(store_a, store_b),
        "store_l2_norm": lambda: stream_ops.l2_norm(store_a),
        "store_cosine_similarity": lambda: stream_ops.cosine_similarity(store_a, store_b),
        "store_mean": lambda: stream_ops.mean(store_a),
        "store_variance": lambda: stream_ops.variance(store_a),
        "store_add": timed_add,
        "store_6op_sequential": timed_six_sequential,
        "store_6op_fused": timed_six_fused,
    }


def _six_op_decode_passes(store_a, store_b) -> dict:
    """Measured decode sweeps per store for the six-op workload, both schedules."""
    from .. import engine
    from ..streaming import ops as stream_ops

    counts = {}
    before = (store_a.chunks_read, store_b.chunks_read)
    stream_ops.mean(store_a)
    stream_ops.variance(store_a)
    stream_ops.l2_norm(store_a)
    stream_ops.dot(store_a, store_b)
    stream_ops.covariance(store_a, store_b)
    stream_ops.cosine_similarity(store_a, store_b)
    counts["sequential"] = {
        "store_a": (store_a.chunks_read - before[0]) // store_a.n_chunks,
        "store_b": (store_b.chunks_read - before[1]) // store_b.n_chunks,
    }
    before = (store_a.chunks_read, store_b.chunks_read)
    engine.evaluate(_six_op_expressions(store_a, store_b))
    counts["fused"] = {
        "store_a": (store_a.chunks_read - before[0]) // store_a.n_chunks,
        "store_b": (store_b.chunks_read - before[1]) // store_b.n_chunks,
    }
    return counts


def run(config: Fig7Config = Fig7Config()) -> ExperimentResult:
    """Time every Fig 7 operation across sizes and setting combinations."""
    rng = np.random.default_rng(config.seed)
    rows: list[tuple] = []
    six_op_passes: dict | None = None
    with tempfile.TemporaryDirectory(prefix="fig7_stores_") as tmp:
        workdir = Path(tmp)
        for float_format in config.float_formats:
            for index_dtype in config.index_dtypes:
                settings = CompressionSettings(
                    block_shape=(config.block_size,) * 3,
                    float_format=float_format,
                    index_dtype=index_dtype,
                )
                compressor = Compressor(settings)
                for size in config.sizes:
                    a = rng.random((size, size, size))
                    b = rng.random((size, size, size))
                    ca, cb = compressor.compress(a), compressor.compress(b)

                    timed = {
                        "compress": lambda: compressor.compress(a),
                        "decompress": lambda: compressor.decompress(ca),
                        "negate": lambda: ops.negate(ca),
                        "add": lambda: ops.add(ca, cb),
                        "multiply": lambda: ops.multiply_scalar(ca, 1.5),
                        "dot": lambda: ops.dot(ca, cb),
                        "l2_norm": lambda: ops.l2_norm(ca),
                        "cosine_similarity": lambda: ops.cosine_similarity(ca, cb),
                        "mean": lambda: ops.mean(ca),
                        "variance": lambda: ops.variance(ca),
                        "ssim": lambda: ops.structural_similarity(ca, cb),
                    }
                    stores = []
                    if config.out_of_core:
                        from ..streaming import ChunkedCompressor

                        chunked = ChunkedCompressor(
                            settings, slab_rows=config.slab_rows
                        )
                        stores = [
                            chunked.compress_to_store(a, workdir / "a.pblzc"),
                            chunked.compress_to_store(b, workdir / "b.pblzc"),
                        ]
                        timed.update(
                            _store_timings(*stores, workdir / "out.pblzc")
                        )
                        if six_op_passes is None:
                            six_op_passes = _six_op_decode_passes(*stores)
                    try:
                        for operation, function in timed.items():
                            seconds = median_time(function, config.repeats)
                            rows.append(
                                (size, float_format, index_dtype, operation, seconds)
                            )
                    finally:
                        for store in stores:
                            store.close()

    return ExperimentResult(
        name="Fig 7 — PyBlaz operation time (3-D arrays, block size 4)",
        columns=("array size", "float", "index", "operation", "seconds"),
        rows=rows,
        metadata={
            "block_size": config.block_size,
            "sizes": config.sizes,
            "out_of_core": config.out_of_core,
            "slab_rows": config.slab_rows,
            # measured decode sweeps per store for the six-reduction workload:
            # sequential op-by-op calls vs one fused engine plan
            "six_op_decode_passes": six_op_passes,
        },
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
