"""§IV-C — compression-ratio accounting and the paper's worked examples.

The paper derives the asymptotic compression ratio

    u · Πs / ((f + i · ΣP) · Π⌈s ⊘ i⌉)

and gives two worked examples for a (3, 224, 224) FP64 input with block shape
(4, 4, 4) and FP32 working precision: ≈ 2.91 with int16 indices and no pruning, and
≈ 10.66 with int8 indices and half the indices pruned.  This experiment reproduces
both numbers exactly, reports the exact (finite-array) ratios alongside the
asymptotic formula, and sweeps the settings that §IV-C says matter most — the bin
index type and the pruning mask — plus block shape, to show how the ratio responds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CompressionSettings
from ..core.codec import asymptotic_compression_ratio, compression_ratio
from ..core.pruning import low_frequency_mask
from .common import ExperimentResult

__all__ = ["RatioConfig", "run", "format_result", "paper_examples"]


@dataclass(frozen=True)
class RatioConfig:
    """Configuration of the compression-ratio study."""

    shape: tuple[int, ...] = (3, 224, 224)
    input_bits: int = 64
    float_format: str = "float32"
    block_shapes: tuple[tuple[int, ...], ...] = ((4, 4, 4), (8, 8, 8), (4, 16, 16))
    index_dtypes: tuple[str, ...] = ("int8", "int16", "int32")
    keep_fractions: tuple[float, ...] = (1.0, 0.5, 0.25)


def paper_examples() -> list[tuple[str, float, float]]:
    """The two §IV-C worked examples: (description, paper value, our asymptotic value)."""
    shape = (3, 224, 224)
    no_pruning = CompressionSettings(
        block_shape=(4, 4, 4), float_format="float32", index_dtype="int16"
    )
    half_pruned = CompressionSettings(
        block_shape=(4, 4, 4),
        float_format="float32",
        index_dtype="int8",
        pruning_mask=low_frequency_mask((4, 4, 4), 0.5),
    )
    return [
        (
            "int16, no pruning",
            2.91,
            asymptotic_compression_ratio(no_pruning, shape, input_bits_per_element=64),
        ),
        (
            "int8, half the indices pruned",
            10.66,
            asymptotic_compression_ratio(half_pruned, shape, input_bits_per_element=64),
        ),
    ]


def run(config: RatioConfig = RatioConfig()) -> ExperimentResult:
    """Sweep block shape × index type × pruning fraction and report ratios."""
    rows: list[tuple] = []
    for block_shape in config.block_shapes:
        for index_dtype in config.index_dtypes:
            for keep in config.keep_fractions:
                mask = None if keep >= 1.0 else low_frequency_mask(block_shape, keep)
                settings = CompressionSettings(
                    block_shape=block_shape,
                    float_format=config.float_format,
                    index_dtype=index_dtype,
                    pruning_mask=mask,
                )
                exact = compression_ratio(settings, config.shape, config.input_bits)
                asymptotic = asymptotic_compression_ratio(
                    settings, config.shape, config.input_bits
                )
                rows.append(
                    (
                        "x".join(map(str, block_shape)),
                        index_dtype,
                        keep,
                        round(exact, 4),
                        round(asymptotic, 4),
                    )
                )
    examples = paper_examples()
    metadata = {
        "paper_example_int16_no_pruning": f"paper ≈ {examples[0][1]}, ours = {examples[0][2]:.4f}",
        "paper_example_int8_half_pruned": f"paper ≈ {examples[1][1]}, ours = {examples[1][2]:.4f}",
        "input_shape": config.shape,
        "input_bits_per_element": config.input_bits,
    }
    return ExperimentResult(
        name="§IV-C — compression ratios",
        columns=("block shape", "index type", "kept fraction", "exact ratio", "asymptotic ratio"),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
