"""Table I — the supported operations and their error classification.

The paper's Table I lists every compressed-space operation, its result type, and the
source of additional error ("none", "rebinning", or "function of block size").  This
experiment validates that classification empirically: it compresses structured test
arrays, runs every operation in the compressed space, compares against the reference
operation applied to the *decompressed* arrays (so that compression error common to
both sides cancels), and reports the observed additional error.

Expected outcome (which the integration tests assert):

* negation, multiplication by a scalar — additional error exactly zero;
* dot product, mean, covariance, variance, L2 norm, cosine similarity, SSIM —
  additional error at floating-point-rounding level;
* element-wise addition, addition of a scalar — additional error bounded by the
  rebinning half-bin width;
* approximate Wasserstein distance — error relative to the element-wise reference
  decreases as the block size shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import reference as ref
from ..core import CompressionSettings, Compressor
from ..core import ops
from ..core.binning import index_radius
from .common import ExperimentResult

__all__ = ["Table1Config", "run", "format_result"]


@dataclass(frozen=True)
class Table1Config:
    """Configuration of the Table I validation experiment."""

    shape: tuple[int, ...] = (32, 32, 32)
    block_shape: tuple[int, ...] = (4, 4, 4)
    float_format: str = "float32"
    index_dtype: str = "int16"
    seed: int = 7
    scalar: float = 0.75  #: scalar used for the scalar add/multiply rows
    wasserstein_order: float = 2.0


def _structured_array(shape: tuple[int, ...], seed: int, phase: float) -> np.ndarray:
    """Smooth multi-frequency test field plus small noise (compresses realistically)."""
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(
        *[np.linspace(0.0, 1.0, extent) for extent in shape], indexing="ij"
    )
    field_values = np.zeros(shape)
    for harmonic, grid in enumerate(grids, start=1):
        field_values += np.sin(2 * np.pi * harmonic * grid + phase)
    field_values += 0.05 * rng.standard_normal(shape)
    return field_values


def run(config: Table1Config = Table1Config()) -> ExperimentResult:
    """Run every Table I operation and measure its additional error."""
    settings = CompressionSettings(
        block_shape=config.block_shape,
        float_format=config.float_format,
        index_dtype=config.index_dtype,
    )
    compressor = Compressor(settings)
    a = _structured_array(config.shape, config.seed, phase=0.0)
    b = _structured_array(config.shape, config.seed + 1, phase=0.9)
    ca, cb = compressor.compress(a), compressor.compress(b)
    da, db = compressor.decompress(ca), compressor.decompress(cb)

    rows: list[tuple] = []

    def array_row(name: str, compressed_result, reference_array, claimed: str):
        measured = compressor.decompress(compressed_result)
        additional = float(np.max(np.abs(measured - reference_array)))
        rows.append((name, "array", claimed, additional))

    def scalar_row(name: str, value: float, reference_value: float, claimed: str):
        rows.append((name, "scalar", claimed, float(abs(value - reference_value))))

    # ---- array-valued operations (reference = same op on decompressed data) ----
    array_row("negation", ops.negate(ca), -da, "none")
    array_row("multiplication by scalar", ops.multiply_scalar(ca, config.scalar), config.scalar * da, "none")
    array_row("element-wise addition", ops.add(ca, cb), da + db, "rebinning")
    array_row("addition of scalar", ops.add_scalar(ca, config.scalar), da + config.scalar, "rebinning")

    # ---- scalar-valued operations ----
    scalar_row("dot product", ops.dot(ca, cb), ref.reference_dot(da, db), "none")
    scalar_row("mean", ops.mean(ca), ref.reference_mean(da), "none")
    scalar_row("covariance", ops.covariance(ca, cb), ref.reference_covariance(da, db), "none")
    scalar_row("variance", ops.variance(ca), ref.reference_variance(da), "none")
    scalar_row("L2 norm", ops.l2_norm(ca), ref.reference_l2_norm(da), "none")
    scalar_row(
        "cosine similarity",
        ops.cosine_similarity(ca, cb),
        ref.reference_cosine_similarity(da, db),
        "none",
    )
    scalar_row(
        "SSIM",
        ops.structural_similarity(ca, cb),
        ref.reference_ssim(da, db),
        "none",
    )
    scalar_row(
        "approx. Wasserstein",
        ops.wasserstein_distance(ca, cb, order=config.wasserstein_order),
        ref.reference_wasserstein(da, db, order=config.wasserstein_order),
        "block size",
    )

    radius = index_radius(settings.index_dtype)
    metadata = {
        "settings": settings.describe(),
        "rebinning_half_bin_bound": float(np.max(ca.maxima + cb.maxima) / (2 * radius + 1)),
        "shape": config.shape,
    }
    return ExperimentResult(
        name="Table I — compressed-space operations and their additional error",
        columns=("operation", "result type", "claimed error source", "measured additional error"),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    """Plain-text rendering of the experiment result."""
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
