"""Fig 4 — capturing precision-change perturbations in the compressed space (§V-A).

The paper runs the same shallow-water simulation at FP16 and FP32, takes the water
surface height at one time step from each run, and shows that

* the two surfaces differ visibly in certain regions (panels a, b),
* the element-wise difference of the uncompressed surfaces localises those
  perturbations (panel c), and
* the *compressed-space* difference — negation plus element-wise addition of the two
  compressed surfaces, with an aggressive 16×16-block / int8 configuration — captures
  the same perturbation pattern without decompressing (panel d).

This harness runs the two simulations (on the numpy shallow-water substrate), forms
both difference fields, and reports quantitative versions of the figure's visual
claim: the correlation between the uncompressed and compressed-space difference maps,
the overlap of their high-perturbation regions, and the relative L2 discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CompressionSettings, Compressor
from ..core import ops
from ..simulators import ShallowWaterConfig, ShallowWaterSimulator
from .common import ExperimentResult

__all__ = ["Fig4Config", "run", "format_result"]


@dataclass(frozen=True)
class Fig4Config:
    """Configuration of the shallow-water precision study."""

    grid_nx: int = 64  #: paper: 200 (first dimension of the 200×400 domain)
    grid_ny: int = 128  #: paper: 400
    n_steps: int = 10000  #: paper: 500 days of simulation; the FP16/FP32 divergence
    #: accumulates with the number of steps, so the run must be long enough for the
    #: perturbation to rise above the int8 re-quantisation noise of the compressor
    low_precision: str = "float16"
    high_precision: str = "float32"
    block_shape: tuple[int, int] = (16, 16)
    index_dtype: str = "int8"
    float_format: str = "float32"
    perturbation_quantile: float = 0.9  #: threshold defining "high-perturbation" regions


def run(config: Fig4Config = Fig4Config()) -> ExperimentResult:
    """Run both precisions, difference them raw and in compressed space, compare."""
    sim = ShallowWaterSimulator(ShallowWaterConfig(nx=config.grid_nx, ny=config.grid_ny))
    low = sim.run(config.n_steps, precision=config.low_precision)
    high = sim.run(config.n_steps, precision=config.high_precision)
    surface_low = low.final_height
    surface_high = high.final_height

    # Panel (c): uncompressed element-wise difference.
    uncompressed_diff = surface_low - surface_high

    # Panel (d): compressed-space difference (negation + element-wise addition).
    settings = CompressionSettings(
        block_shape=config.block_shape,
        float_format=config.float_format,
        index_dtype=config.index_dtype,
    )
    compressor = Compressor(settings)
    c_low = compressor.compress(surface_low)
    c_high = compressor.compress(surface_high)
    compressed_diff = compressor.decompress(ops.add(c_low, ops.negate(c_high)))

    # Quantitative versions of the figure's visual claims.
    flat_u = uncompressed_diff.ravel()
    flat_c = compressed_diff.ravel()
    if np.std(flat_u) > 0 and np.std(flat_c) > 0:
        correlation = float(np.corrcoef(flat_u, flat_c)[0, 1])
    else:  # pragma: no cover - degenerate identical runs
        correlation = float("nan")
    threshold_u = np.quantile(np.abs(flat_u), config.perturbation_quantile)
    threshold_c = np.quantile(np.abs(flat_c), config.perturbation_quantile)
    region_u = np.abs(uncompressed_diff) >= threshold_u
    region_c = np.abs(compressed_diff) >= threshold_c
    union = np.logical_or(region_u, region_c).sum()
    overlap = float(np.logical_and(region_u, region_c).sum() / union) if union else 1.0
    rel_l2 = float(
        np.linalg.norm(flat_c - flat_u) / max(np.linalg.norm(flat_u), 1e-30)
    )

    rows = [
        ("max |FP16 − FP32| (uncompressed)", float(np.abs(uncompressed_diff).max())),
        ("max |FP16 − FP32| (compressed-space)", float(np.abs(compressed_diff).max())),
        ("surface amplitude (max |FP32 surface|)", float(np.abs(surface_high).max())),
        ("correlation(uncompressed diff, compressed diff)", correlation),
        (f"high-perturbation region overlap (q={config.perturbation_quantile})", overlap),
        ("relative L2 discrepancy between the two difference maps", rel_l2),
    ]
    metadata = {
        "grid": (config.grid_nx, config.grid_ny),
        "steps": config.n_steps,
        "precisions": (config.low_precision, config.high_precision),
        "compressor": settings.describe(),
    }
    return ExperimentResult(
        name="Fig 4 — precision-change perturbations via compressed-space difference",
        columns=("quantity", "value"),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
