"""Shared infrastructure for the experiment harnesses.

Provides a tiny timing helper (median-of-repeats wall-clock timing, adequate for the
scaling-shape comparisons the paper makes), a generic result container, and plain-text
table formatting so every experiment can print the rows/series its figure reports
without any plotting dependency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Timer", "ExperimentResult", "format_table", "median_time", "smooth_field"]


def smooth_field(shape: tuple[int, ...], seed: int = 2023, noise: float = 0.02) -> np.ndarray:
    """The standard smooth probe field: multi-frequency waves plus small noise.

    Both Blaz and PyBlaz are designed for smooth structured data; this single
    generator is shared by the ablation harnesses and the CLI ``codecs`` probe
    so "the standard probe" means exactly one thing everywhere.
    """
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 1, s) for s in shape], indexing="ij")
    values = np.zeros(shape)
    for k, grid in enumerate(grids, start=1):
        values += np.sin(2 * np.pi * k * grid) + 0.5 * np.cos(3 * np.pi * k * grid)
    if noise:
        values += noise * rng.standard_normal(shape)
    return values


class Timer:
    """Context manager measuring wall-clock time in seconds."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start


def median_time(func: Callable[[], Any], repeats: int = 3, warmup: int = 1) -> float:
    """Median wall-clock time of ``func()`` over ``repeats`` runs after ``warmup`` calls.

    The paper's timing figures compare scaling shapes across decades of array size;
    a median of a few repeats is enough to place each point on the right curve while
    keeping the whole sweep fast.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    for _ in range(max(0, warmup)):
        func()
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        func()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


@dataclass
class ExperimentResult:
    """Generic experiment output: named columns plus free-form metadata.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig2"``).
    columns:
        Column headers of :attr:`rows`.
    rows:
        The data rows the figure/table reports.
    metadata:
        Anything else worth recording (configuration echoes, derived summaries).
    """

    name: str
    columns: tuple[str, ...]
    rows: list[tuple]
    metadata: dict[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render the result as a plain-text table with its metadata footer."""
        text = format_table(self.columns, self.rows, title=self.name)
        if self.metadata:
            lines = [f"  {key}: {value}" for key, value in self.metadata.items()]
            text += "\nmetadata:\n" + "\n".join(lines)
        return text


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.5g}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None
) -> str:
    """Format rows as a fixed-width text table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
