"""§IV-D — empirical validation of the compression-error bounds.

The paper's error analysis gives three statements this experiment checks on random
and structured blocks, across bin-index types:

1. **Binning bound** — every kept coefficient's error is at most half a bin width,
   ``N_k / (2r + 1)`` where ``N_k`` is the block's biggest coefficient magnitude and
   ``r`` the index radius.
2. **Loose L∞ bound** — every element of the decompressed array differs from the
   lowered-precision original by at most ``‖C_k‖∞ · Π i`` within its block.
3. **Exact L2 identity** — the L2 error of each decompressed block equals the L2 norm
   of that block's coefficient errors (orthonormal transforms preserve 2-norms).

The report shows, per index type, the observed maximum ratio of actual error to each
bound (≤ 1 for the bounds, ≈ 1 for the identity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CompressionSettings, Compressor
from ..core.blocking import block_array
from ..core.errors import binning_error_bound, block_l2_error, coefficient_errors, linf_error_bound
from ..numerics import round_to_format
from .common import ExperimentResult

__all__ = ["ErrorBoundsConfig", "run", "format_result"]


@dataclass(frozen=True)
class ErrorBoundsConfig:
    """Configuration of the error-bound validation."""

    shape: tuple[int, ...] = (32, 32, 32)
    block_shape: tuple[int, ...] = (4, 4, 4)
    float_format: str = "float64"
    index_dtypes: tuple[str, ...] = ("int8", "int16", "int32")
    keep_fraction: float = 1.0
    seed: int = 5


def run(config: ErrorBoundsConfig = ErrorBoundsConfig()) -> ExperimentResult:
    """Measure actual errors against the three §IV-D statements."""
    from ..core.pruning import low_frequency_mask

    rng = np.random.default_rng(config.seed)
    array = rng.standard_normal(config.shape)
    rows: list[tuple] = []

    for index_dtype in config.index_dtypes:
        mask = (
            None
            if config.keep_fraction >= 1.0
            else low_frequency_mask(config.block_shape, config.keep_fraction)
        )
        settings = CompressionSettings(
            block_shape=config.block_shape,
            float_format=config.float_format,
            index_dtype=index_dtype,
            pruning_mask=mask,
        )
        compressor = Compressor(settings)
        compressed = compressor.compress(array)

        # 1. binning bound on kept coefficients (pruned slots are excluded: their
        # error is the coefficient itself, covered by statement 2)
        errors = coefficient_errors(compressed, array)
        kept_errors = np.abs(errors) * settings.mask
        bound = binning_error_bound(compressed.maxima, settings.index_dtype, exact=True)
        bound_expanded = bound.reshape(bound.shape + (1,) * settings.ndim)
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(bound_expanded > 0, kept_errors / bound_expanded, 0.0)
        binning_ratio = float(np.max(ratio))

        # 2. loose L-infinity bound on decompressed elements (vs the lowered-precision input)
        lowered = round_to_format(array, settings.float_format)
        decompressed = compressor.decompress(compressed)
        elementwise = np.abs(decompressed - lowered)
        blocked_error = block_array(elementwise, settings.block_shape)
        block_axes = tuple(range(blocked_error.ndim - settings.ndim, blocked_error.ndim))
        per_block_max = blocked_error.max(axis=block_axes)
        linf_bound = linf_error_bound(compressed)
        with np.errstate(invalid="ignore", divide="ignore"):
            linf_ratio = float(np.max(np.where(linf_bound > 0, per_block_max / linf_bound, 0.0)))

        # 3. exact L2 identity per block
        actual_l2 = np.sqrt((blocked_error**2).sum(axis=block_axes))
        predicted_l2 = block_l2_error(compressed, array)
        with np.errstate(invalid="ignore", divide="ignore"):
            l2_ratio = np.where(predicted_l2 > 0, actual_l2 / predicted_l2, 1.0)
        rows.append(
            (
                index_dtype,
                binning_ratio,
                linf_ratio,
                float(np.min(l2_ratio)),
                float(np.max(l2_ratio)),
            )
        )

    return ExperimentResult(
        name="§IV-D — error bounds: observed error / bound (<= 1) and L2 identity (≈ 1)",
        columns=(
            "index type",
            "max binning error / exact half-step bound",
            "max element error / loose Linf bound",
            "min actual/predicted block L2",
            "max actual/predicted block L2",
        ),
        rows=rows,
        metadata={"shape": config.shape, "block_shape": config.block_shape,
                  "keep_fraction": config.keep_fraction},
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
