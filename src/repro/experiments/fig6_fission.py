"""Fig 6 — detecting nuclear scission in compressed space: L2 vs Wasserstein (§V-C).

The paper compresses each time step of a plutonium neutron-density series
(negative-log-transformed, 40×40×66, block 16³, int16, FP32) and compares adjacent
time steps two ways:

* **Fig 6a** — the L2 norm of the difference between adjacent steps, computed three
  ways: on uncompressed data, on decompressed data, and directly in compressed space.
  All three curves coincide up to a small error (the paper reports a maximum
  deviation of ≈ 1.68 against a mean L2 of ≈ 619), and all three show the scission
  peak at 690→692 *plus* misleading noise peaks (685→686 and 695→699).
* **Fig 6b** — the approximate compressed-space Wasserstein distance for increasing
  order p.  As p grows the noise peaks are suppressed relative to the scission peak;
  at p = 68 a single dominant peak remains, and with the naive evaluation the paper
  used, all peaks vanish for p ≥ 80 (a float64 underflow this implementation can
  reproduce with ``stable=False``).

The density series comes from :mod:`repro.simulators.fission` (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CompressionSettings, Compressor
from ..core import ops
from ..simulators.fission import FissionSeries, generate_fission_series
from .common import ExperimentResult

__all__ = ["Fig6Config", "run", "format_result"]


@dataclass(frozen=True)
class Fig6Config:
    """Configuration of the fission scission-detection study."""

    grid_shape: tuple[int, int, int] = (40, 40, 66)
    block_shape: tuple[int, int, int] = (16, 16, 16)
    float_format: str = "float32"
    index_dtype: str = "int16"
    wasserstein_orders: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 68, 80)
    stable_wasserstein: bool = True
    seed: int = 235


def run(config: Fig6Config = Fig6Config()) -> ExperimentResult:
    """Compute Fig 6a and Fig 6b series on a generated fission density series."""
    series: FissionSeries = generate_fission_series(
        grid_shape=config.grid_shape, seed=config.seed
    )
    settings = CompressionSettings(
        block_shape=config.block_shape,
        float_format=config.float_format,
        index_dtype=config.index_dtype,
    )
    compressor = Compressor(settings)

    log_steps = [series.log_densities[i] for i in range(series.n_steps)]
    compressed = [compressor.compress(step) for step in log_steps]
    decompressed = [compressor.decompress(c) for c in compressed]

    rows: list[tuple] = []
    l2_uncompressed: list[float] = []
    l2_compressed: list[float] = []

    for i, (t0, t1) in enumerate(series.adjacent_pairs()):
        # Fig 6a: the three L2 curves
        l2_raw = float(np.linalg.norm(log_steps[i + 1] - log_steps[i]))
        l2_decompressed = float(np.linalg.norm(decompressed[i + 1] - decompressed[i]))
        diff_compressed = ops.subtract(compressed[i + 1], compressed[i])
        l2_comp = ops.l2_norm(diff_compressed)
        l2_uncompressed.append(l2_raw)
        l2_compressed.append(l2_comp)
        rows.append((f"{t0}->{t1}", "L2 uncompressed", l2_raw))
        rows.append((f"{t0}->{t1}", "L2 (de)compressed", l2_decompressed))
        rows.append((f"{t0}->{t1}", "L2 compressed-space", l2_comp))

        # Fig 6b: Wasserstein distance sweep over the order p
        for order in config.wasserstein_orders:
            distance = ops.wasserstein_distance(
                compressed[i], compressed[i + 1], order=order,
                stable=config.stable_wasserstein,
            )
            rows.append((f"{t0}->{t1}", f"Wasserstein p={order:g}", distance))

    l2_uncompressed_arr = np.asarray(l2_uncompressed)
    l2_compressed_arr = np.asarray(l2_compressed)
    scission_pair = series.adjacent_pairs()[series.scission_index]
    detected_pair_l2 = series.adjacent_pairs()[int(np.argmax(l2_compressed_arr))]

    # which pair the highest-order Wasserstein sweep points to
    top_order = max(config.wasserstein_orders)
    wasserstein_top = [
        ops.wasserstein_distance(compressed[i], compressed[i + 1], order=top_order,
                                 stable=config.stable_wasserstein)
        for i in range(series.n_steps - 1)
    ]
    detected_pair_w = series.adjacent_pairs()[int(np.argmax(wasserstein_top))]

    metadata = {
        "settings": settings.describe(),
        "known_scission_pair": scission_pair,
        "L2_detected_pair": detected_pair_l2,
        f"Wasserstein_p{top_order:g}_detected_pair": detected_pair_w,
        "max_L2_deviation_compressed_vs_uncompressed": float(
            np.max(np.abs(l2_compressed_arr - l2_uncompressed_arr))
        ),
        "mean_L2_uncompressed": float(np.mean(l2_uncompressed_arr)),
        "noise_pairs": [series.adjacent_pairs()[i] for i in series.noise_indices],
    }
    return ExperimentResult(
        name="Fig 6 — scission detection: adjacent-step L2 and Wasserstein distances",
        columns=("time-step pair", "measure", "value"),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
