"""Fig 2 — PyBlaz vs Blaz operation time on 2-dimensional arrays.

The paper times compress, decompress, compressed-space add and compressed-space
multiply for both compressors on square 2-D float64 arrays from 8 to 8192 elements
per side, with Blaz-comparable settings (8×8 blocks, int8 bin indices).  The headline
observation is the *shape* of the curves: PyBlaz's bulk (GPU there, vectorized numpy
here) execution is flat until the hardware saturates and then grows polynomially,
while the single-threaded, block-at-a-time Blaz grows polynomially from the start —
so PyBlaz wins by orders of magnitude at large sizes.

The default sweep stops at 512 so the harness runs in seconds; pass a larger
``sizes`` tuple to extend the curves (the Blaz points dominate the cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs import get_codec
from ..core import CompressionSettings, Compressor
from ..core import ops
from .common import ExperimentResult, median_time

__all__ = ["Fig2Config", "run", "format_result"]


@dataclass(frozen=True)
class Fig2Config:
    """Configuration of the Fig 2 timing sweep."""

    sizes: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512)
    repeats: int = 3
    seed: int = 11
    scalar: float = 1.5


def run(config: Fig2Config = Fig2Config()) -> ExperimentResult:
    """Time compress/decompress/add/multiply for PyBlaz and Blaz across sizes."""
    settings = CompressionSettings(
        block_shape=(8, 8), float_format="float64", index_dtype="int8"
    )
    pyblaz = Compressor(settings)
    blaz = get_codec("blaz")  # exposes compress/decompress/add/multiply_scalar
    rng = np.random.default_rng(config.seed)
    rows: list[tuple] = []

    for size in config.sizes:
        a = rng.random((size, size))
        b = rng.random((size, size))

        pa, pb = pyblaz.compress(a), pyblaz.compress(b)
        ba, bb = blaz.compress(a), blaz.compress(b)

        timings = {
            ("pyblaz", "compress"): median_time(lambda: pyblaz.compress(a), config.repeats),
            ("pyblaz", "decompress"): median_time(lambda: pyblaz.decompress(pa), config.repeats),
            ("pyblaz", "add"): median_time(lambda: ops.add(pa, pb), config.repeats),
            ("pyblaz", "multiply"): median_time(
                lambda: ops.multiply_scalar(pa, config.scalar), config.repeats
            ),
            ("blaz", "compress"): median_time(lambda: blaz.compress(a), config.repeats),
            ("blaz", "decompress"): median_time(lambda: blaz.decompress(ba), config.repeats),
            ("blaz", "add"): median_time(lambda: blaz.add(ba, bb), config.repeats),
            ("blaz", "multiply"): median_time(
                lambda: blaz.multiply_scalar(ba, config.scalar), config.repeats
            ),
        }
        for (system, operation), seconds in timings.items():
            rows.append((size, system, operation, seconds))

    # summarize the headline comparison: speedup at the largest size
    largest = config.sizes[-1]
    speedups = {}
    for operation in ("compress", "decompress", "add", "multiply"):
        blaz_time = next(r[3] for r in rows if r[:3] == (largest, "blaz", operation))
        py_time = next(r[3] for r in rows if r[:3] == (largest, "pyblaz", operation))
        speedups[operation] = blaz_time / py_time if py_time > 0 else float("inf")
    metadata = {
        "settings": settings.describe(),
        "speedup_at_largest_size": {k: round(v, 1) for k, v in speedups.items()},
    }
    return ExperimentResult(
        name="Fig 2 — PyBlaz vs Blaz operation time (2-D, block 8x8, int8)",
        columns=("array size", "system", "operation", "seconds"),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
