"""Design-choice ablations called out in DESIGN.md §4.

Four studies quantify the design decisions the paper makes (or inherits and changes
relative to Blaz):

* **Differentiation ablation** — PyBlaz deliberately *skips* Blaz's differentiation
  ("normalization") step because operating on differentiated coefficients breaks the
  linear relationship compressed-space addition/dot/mean rely on (Fig 1 caption,
  §IV-A).  The study compares PyBlaz's compressed-space addition error against a
  Blaz-style add (which must re-bin differentiated coefficients) and against the
  decompress→add→recompress upper bound.
* **Transform ablation** — DCT vs Haar vs identity: round-trip error and the error of
  the compressed-space mean/L2 under each transform at equal storage cost.
* **Backend ablation** — vectorized bulk execution vs a per-block Python loop vs a
  thread pool (identical outputs), plus the registered kernel backends
  (``gemm``/``numba``, verified against their documented parity bound),
  measuring the speedup (the CPU analogue of the paper's GPU-vs-single-thread
  argument).  ``benchmarks/bench_backends.py`` records the full shape×backend
  throughput trajectory as machine-readable ``BENCH_backends.json``.
* **Index-width ablation** — int8/int16/int32/int64 vs round-trip error and ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs import available_codecs, get_codec
from ..core import CompressionSettings, Compressor
from ..core import ops
from ..core.codec import asymptotic_compression_ratio
from ..kernels import available_backends, backend_is_available, get_backend, parity_bound
from ..parallel import LoopExecutor, SerialExecutor, ThreadedExecutor
from .common import ExperimentResult, median_time, smooth_field

__all__ = [
    "AblationConfig",
    "run_differentiation",
    "run_transforms",
    "run_backends",
    "run_index_width",
    "run_codecs",
    "format_result",
]


@dataclass(frozen=True)
class AblationConfig:
    """Shared configuration of the ablation studies."""

    shape_2d: tuple[int, int] = (128, 128)
    shape_3d: tuple[int, int, int] = (32, 32, 32)
    seed: int = 17
    repeats: int = 3


# the shared probe generator (what both Blaz and PyBlaz are designed for)
_smooth_field = smooth_field


def run_differentiation(config: AblationConfig = AblationConfig()) -> ExperimentResult:
    """Compressed-space addition error: PyBlaz (no differentiation) vs Blaz (with)."""
    a = _smooth_field(config.shape_2d, config.seed)
    b = _smooth_field(config.shape_2d, config.seed + 1)
    truth = a + b

    settings = CompressionSettings(block_shape=(8, 8), float_format="float64", index_dtype="int8")
    pyblaz = Compressor(settings)
    pa, pb = pyblaz.compress(a), pyblaz.compress(b)
    pyblaz_add = pyblaz.decompress(ops.add(pa, pb))
    pyblaz_roundtrip = pyblaz.decompress(pyblaz.compress(truth))

    blaz = get_codec("blaz")
    ba, bb = blaz.compress(a), blaz.compress(b)
    blaz_add = blaz.decompress(blaz.add(ba, bb))
    blaz_roundtrip = blaz.decompress(blaz.compress(truth))

    def mae(x):
        return float(np.mean(np.abs(x - truth)))

    rows = [
        ("pyblaz compressed-space add", mae(pyblaz_add)),
        ("pyblaz recompress(a+b) reference", mae(pyblaz_roundtrip)),
        ("blaz compressed-space add", mae(blaz_add)),
        ("blaz recompress(a+b) reference", mae(blaz_roundtrip)),
    ]
    return ExperimentResult(
        name="Ablation — differentiation step vs compressed-space addition error (MAE)",
        columns=("pipeline", "mean abs error of a+b"),
        rows=rows,
        metadata={"shape": config.shape_2d, "block": "8x8", "index": "int8"},
    )


def run_transforms(config: AblationConfig = AblationConfig()) -> ExperimentResult:
    """Round-trip and compressed-space statistic error per transform."""
    array = _smooth_field(config.shape_3d, config.seed)
    rows: list[tuple] = []
    for transform in ("dct", "haar", "identity"):
        settings = CompressionSettings(
            block_shape=(4, 4, 4), float_format="float32", index_dtype="int16",
            transform=transform,
        )
        compressor = Compressor(settings)
        compressed = compressor.compress(array)
        decompressed = compressor.decompress(compressed)
        roundtrip_mae = float(np.mean(np.abs(decompressed - array)))
        l2_error = abs(ops.l2_norm(compressed) - float(np.linalg.norm(array)))
        if transform == "identity":
            mean_error = float("nan")  # identity has no DC-coefficient property
        else:
            mean_error = abs(ops.mean(compressed) - float(array.mean()))
        rows.append((transform, roundtrip_mae, l2_error, mean_error))
    return ExperimentResult(
        name="Ablation — orthonormal transform choice",
        columns=("transform", "round-trip MAE", "L2-norm abs error", "mean abs error"),
        rows=rows,
        metadata={"shape": config.shape_3d, "block": "4x4x4", "index": "int16"},
    )


def run_backends(config: AblationConfig = AblationConfig()) -> ExperimentResult:
    """Execution-backend ablation: schedulers and kernel backends vs wall-clock.

    Two families share the table.  The *executor* rows vary the scheduling
    strategy under the bit-exact ``reference`` kernel, so "matches reference"
    means bit-identical.  The *kernel backend* rows vary the numeric strategy
    (see :mod:`repro.kernels`); they are not bit-exact, so the same column
    asserts the documented parity bound
    (:func:`repro.kernels.parity_bound`) instead.  Unavailable backends (e.g.
    ``numba`` without numba installed) are listed in the metadata, not the rows.
    """
    array = _smooth_field(config.shape_3d, config.seed)
    settings = CompressionSettings(block_shape=(4, 4, 4), float_format="float32",
                                   index_dtype="int16")
    rows: list[tuple] = []
    reference = Compressor(settings).compress(array)
    for name, executor in (
        ("vectorized (default)", None),
        ("serial executor", SerialExecutor()),
        ("thread pool (4 workers)", ThreadedExecutor(4)),
        ("per-block Python loop", LoopExecutor()),
    ):
        compressor = Compressor(settings, executor=executor)
        compressed = compressor.compress(array)
        identical = compressed.allclose(reference)
        seconds = median_time(lambda: compressor.compress(array), config.repeats)
        rows.append((name, identical, seconds))

    reference_decompressed = Compressor(settings).decompress(reference)
    skipped: list[str] = []
    for backend_name in available_backends():
        if backend_name == "reference":
            continue  # the "vectorized (default)" row above is the reference kernel
        if not backend_is_available(backend_name):
            skipped.append(backend_name)
            continue
        compressor = Compressor(settings, backend=backend_name)
        compressed = compressor.compress(array)
        bound = parity_bound(get_backend(backend_name), settings, reference.maxima)
        error = float(np.max(np.abs(compressor.decompress(compressed) - reference_decompressed)))
        seconds = median_time(lambda: compressor.compress(array), config.repeats)
        rows.append((f"kernel backend: {backend_name}", error <= bound, seconds))
    return ExperimentResult(
        name="Ablation — execution backend (the GPU-vs-single-thread analogue)",
        columns=("backend", "matches reference", "compress seconds"),
        rows=rows,
        metadata={"shape": config.shape_3d, "skipped_backends": skipped},
    )


def run_index_width(config: AblationConfig = AblationConfig()) -> ExperimentResult:
    """Bin-index width vs round-trip error and asymptotic ratio."""
    array = _smooth_field(config.shape_3d, config.seed)
    rows: list[tuple] = []
    for index_dtype in ("int8", "int16", "int32", "int64"):
        settings = CompressionSettings(
            block_shape=(4, 4, 4), float_format="float64", index_dtype=index_dtype
        )
        compressor = Compressor(settings)
        decompressed = compressor.decompress(compressor.compress(array))
        rows.append(
            (
                index_dtype,
                float(np.max(np.abs(decompressed - array))),
                asymptotic_compression_ratio(settings, config.shape_3d),
            )
        )
    return ExperimentResult(
        name="Ablation — bin-index width vs error and ratio",
        columns=("index type", "round-trip max error", "asymptotic ratio"),
        rows=rows,
        metadata={"shape": config.shape_3d, "block": "4x4x4", "float": "float64"},
    )


def run_codecs(config: AblationConfig = AblationConfig()) -> ExperimentResult:
    """Cross-codec sweep through the registry: ratio, error, throughput.

    Iterates :func:`repro.codecs.available_codecs` (so third-party registrations
    are swept automatically) on one 2-D probe field, and measures for each codec
    the serialized (``to_bytes``) ratio, the bytes-round-trip L∞ error against
    the codec's documented bound, and compression/decompression wall-clock.
    Replaces the hand-written per-baseline loops this table used to need.
    """
    array = _smooth_field(config.shape_2d, config.seed)
    rows: list[tuple] = []
    for name in available_codecs():
        codec = get_codec(name)
        if 2 not in codec.capabilities.ndims:  # pragma: no cover - all built-ins do 2-D
            continue
        compressed = codec.compress(array)
        blob = codec.to_bytes(compressed)
        decompressed = codec.decompress(codec.from_bytes(blob))
        rows.append(
            (
                name,
                array.nbytes / len(blob),
                float(np.max(np.abs(decompressed - array))),
                codec.roundtrip_bound(array),
                median_time(lambda: codec.compress(array), config.repeats),
                median_time(lambda: codec.decompress(compressed), config.repeats),
            )
        )
    return ExperimentResult(
        name="Ablation — cross-codec sweep (every registered codec, one probe)",
        columns=(
            "codec", "serialized ratio", "round-trip max error", "documented bound",
            "compress seconds", "decompress seconds",
        ),
        rows=rows,
        metadata={"shape": config.shape_2d, "codecs": list(available_codecs())},
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    for runner in (
        run_differentiation, run_transforms, run_backends, run_index_width, run_codecs
    ):
        print(format_result(runner()))
        print()
