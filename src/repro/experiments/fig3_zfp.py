"""Fig 3 — PyBlaz vs ZFP compression and decompression time (2-D and 3-D).

The paper compresses and decompresses constant-gradient hypercubic arrays (§IV-E)
with ZFP in fixed-rate mode at ratios ≈ 8, 4 and 2 (8, 16 and 32 bits per scalar) and
with PyBlaz at ratios ≈ 8 and 4 (int8 and int16 bin indices), for 2- and 3-dimensional
arrays from 8 to 512 elements per side.  The observation to reproduce is again the
scaling shape: both systems' times grow polynomially with array size, with PyBlaz's
bulk execution competitive at larger sizes, and decompression cheaper than
compression for PyBlaz.

The ZFP stand-in here is :class:`repro.baselines.zfp_like.ZFPCompressor`
(see DESIGN.md §1 for the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codecs import get_codec
from ..core import CompressionSettings, Compressor
from ..simulators import gradient_array
from .common import ExperimentResult, median_time

__all__ = ["Fig3Config", "run", "format_result"]


@dataclass(frozen=True)
class Fig3Config:
    """Configuration of the Fig 3 timing sweep."""

    sizes_2d: tuple[int, ...] = (8, 16, 32, 64, 128, 256)
    sizes_3d: tuple[int, ...] = (8, 16, 32, 64)
    zfp_bits: tuple[int, ...] = (8, 16, 32)  #: fixed rates → ratios 8, 4, 2
    pyblaz_index_dtypes: tuple[str, ...] = ("int8", "int16")  #: → ratios ≈ 8, 4
    repeats: int = 3


def _pyblaz_settings(ndim: int, index_dtype: str) -> CompressionSettings:
    return CompressionSettings(
        block_shape=(4,) * ndim, float_format="float32", index_dtype=index_dtype
    )


def run(config: Fig3Config = Fig3Config()) -> ExperimentResult:
    """Time compression and decompression for the ZFP-like codec and PyBlaz."""
    rows: list[tuple] = []
    for ndim, sizes in ((2, config.sizes_2d), (3, config.sizes_3d)):
        for size in sizes:
            array = gradient_array((size,) * ndim)

            for bits in config.zfp_bits:
                codec = get_codec("zfp", bits_per_value=bits)
                compressed = codec.compress(array)
                rows.append(
                    (
                        ndim,
                        size,
                        f"zfp ratio {64 // bits}",
                        "compress",
                        median_time(lambda: codec.compress(array), config.repeats),
                    )
                )
                rows.append(
                    (
                        ndim,
                        size,
                        f"zfp ratio {64 // bits}",
                        "decompress",
                        median_time(lambda: codec.decompress(compressed), config.repeats),
                    )
                )

            for index_dtype in config.pyblaz_index_dtypes:
                ratio = 8 if index_dtype == "int8" else 4
                compressor = Compressor(_pyblaz_settings(ndim, index_dtype))
                compressed = compressor.compress(array)
                rows.append(
                    (
                        ndim,
                        size,
                        f"pyblaz ratio {ratio}",
                        "compress",
                        median_time(lambda: compressor.compress(array), config.repeats),
                    )
                )
                rows.append(
                    (
                        ndim,
                        size,
                        f"pyblaz ratio {ratio}",
                        "decompress",
                        median_time(lambda: compressor.decompress(compressed), config.repeats),
                    )
                )

    return ExperimentResult(
        name="Fig 3 — PyBlaz vs ZFP compression/decompression time",
        columns=("ndim", "array size", "system", "operation", "seconds"),
        rows=rows,
        metadata={
            "workload": "constant-gradient arrays (§IV-E)",
            "zfp_rates_bits_per_value": config.zfp_bits,
            "pyblaz_index_dtypes": config.pyblaz_index_dtypes,
        },
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
