"""Fig 5 — error of compressed-space scalar functions vs compression settings (§V-B).

The paper compresses the FLAIR channel of the LGG MRI dataset (normalised to [0, 1])
under a grid of settings — float type ∈ {bfloat16, float16, float32, float64}, bin
index type ∈ {int8, int16}, block shape ∈ {4³, 8³, 16³, 4×8×8, 4×16×16, 8×16×16},
no pruning — and reports, for the mean, variance, L2 norm and SSIM:

* the mean absolute error against the uncompressed function,
* the mean relative error (relative to the dataset FLAIR mean of 0.0870), and
* the mean compression ratio of each setting.

Key qualitative findings to reproduce: float32/float64 behave identically; 16-bit
float types are much worse (float16 better than bfloat16 on error, bfloat16 immune to
NaN overflow); the smallest blocks with int16 give the lowest error; non-hypercubic
blocks (4×16×16) both compress better *and* err less than 8×8×8 on this
asymmetric-resolution data because they waste less padding on the short first axis.

The MRI volumes come from :mod:`repro.simulators.mri` (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import reference as ref
from ..analysis.metrics import mean_absolute_error, mean_relative_error
from ..core import CompressionSettings, Compressor
from ..core import ops
from ..core.codec import compression_ratio
from ..simulators.mri import LGG_FLAIR_MEAN, generate_mri_dataset
from .common import ExperimentResult

__all__ = ["Fig5Config", "run", "format_result", "DEFAULT_BLOCK_SHAPES"]

DEFAULT_BLOCK_SHAPES: tuple[tuple[int, int, int], ...] = (
    (4, 4, 4),
    (8, 8, 8),
    (16, 16, 16),
    (4, 8, 8),
    (4, 16, 16),
    (8, 16, 16),
)


@dataclass(frozen=True)
class Fig5Config:
    """Configuration of the Fig 5 error characterisation."""

    n_volumes: int = 4  #: paper: 110 LGG volumes; the shape of the figure needs only a few
    plane_size: int = 64  #: paper: 256; reduce for a fast harness, raise to 256 to match
    float_formats: tuple[str, ...] = ("bfloat16", "float16", "float32", "float64")
    index_dtypes: tuple[str, ...] = ("int8", "int16")
    block_shapes: tuple[tuple[int, int, int], ...] = DEFAULT_BLOCK_SHAPES
    operations: tuple[str, ...] = ("mean", "variance", "l2_norm", "ssim")
    seed: int = 2023


def _compressed_scalar(operation: str, compressor, compressed, other=None) -> float:
    if operation == "mean":
        return ops.mean(compressed)
    if operation == "variance":
        return ops.variance(compressed)
    if operation == "l2_norm":
        return ops.l2_norm(compressed)
    if operation == "ssim":
        return ops.structural_similarity(compressed, other)
    raise ValueError(f"unknown operation {operation!r}")


def _reference_scalar(operation: str, volume: np.ndarray, block_shape, other=None) -> float:
    if operation == "mean":
        return ref.reference_mean(volume, pad_to=block_shape)
    if operation == "variance":
        return ref.reference_variance(volume, pad_to=block_shape)
    if operation == "l2_norm":
        return ref.reference_l2_norm(volume)
    if operation == "ssim":
        return ref.reference_ssim(volume, other, pad_to=block_shape)
    raise ValueError(f"unknown operation {operation!r}")


def run(config: Fig5Config = Fig5Config()) -> ExperimentResult:
    """Sweep compression settings over MRI-like volumes and report error statistics."""
    volumes = [
        v.data for v in generate_mri_dataset(
            n_volumes=config.n_volumes, plane_size=config.plane_size, seed=config.seed
        )
    ]
    rows: list[tuple] = []

    for block_shape in config.block_shapes:
        for float_format in config.float_formats:
            for index_dtype in config.index_dtypes:
                settings = CompressionSettings(
                    block_shape=block_shape,
                    float_format=float_format,
                    index_dtype=index_dtype,
                )
                compressor = Compressor(settings)
                compressed = [compressor.compress(v) for v in volumes]
                ratios = [
                    compression_ratio(settings, v.shape, input_bits_per_element=64)
                    for v in volumes
                ]

                for operation in config.operations:
                    measured: list[float] = []
                    reference: list[float] = []
                    nan_count = 0
                    if operation == "ssim":
                        # SSIM compares pairs of images; pair each volume with the next
                        # (cropping/padding to a common shape like the paper does).
                        for i in range(len(volumes) - 1):
                            a, b = volumes[i], volumes[i + 1]
                            common = tuple(min(sa, sb) for sa, sb in zip(a.shape, b.shape))
                            a_c = a[tuple(slice(0, c) for c in common)]
                            b_c = b[tuple(slice(0, c) for c in common)]
                            ca = compressor.compress(a_c)
                            cb = compressor.compress(b_c)
                            value = _compressed_scalar(operation, compressor, ca, cb)
                            truth = _reference_scalar(operation, a_c, block_shape, b_c)
                            if np.isnan(value):
                                nan_count += 1
                                continue
                            measured.append(value)
                            reference.append(truth)
                    else:
                        for volume, comp in zip(volumes, compressed):
                            value = _compressed_scalar(operation, compressor, comp)
                            truth = _reference_scalar(operation, volume, block_shape)
                            if np.isnan(value):
                                nan_count += 1
                                continue
                            measured.append(value)
                            reference.append(truth)

                    if measured:
                        measured_arr = np.asarray(measured)
                        reference_arr = np.asarray(reference)
                        mae = mean_absolute_error(measured_arr, reference_arr)
                        # SSIM is an index in [0, 1]; the paper omits its relative axis
                        rel = (
                            float("nan")
                            if operation == "ssim"
                            else mean_relative_error(
                                measured_arr, reference_arr, reference_scale=LGG_FLAIR_MEAN
                            )
                        )
                    else:  # every example produced NaN (e.g. float16 overflow)
                        mae, rel = float("nan"), float("nan")

                    rows.append(
                        (
                            operation,
                            "x".join(map(str, block_shape)),
                            float_format,
                            index_dtype,
                            mae,
                            rel,
                            float(np.mean(ratios)),
                            nan_count,
                        )
                    )

    metadata = {
        "n_volumes": config.n_volumes,
        "plane_size": config.plane_size,
        "relative_error_scale": LGG_FLAIR_MEAN,
        "volume_shapes": [v.shape for v in volumes],
    }
    return ExperimentResult(
        name="Fig 5 — compressed-space scalar-function error vs compression settings",
        columns=(
            "operation",
            "block shape",
            "float",
            "index",
            "mean abs error",
            "mean rel error",
            "mean compression ratio",
            "nan examples",
        ),
        rows=rows,
        metadata=metadata,
    )


def format_result(result: ExperimentResult) -> str:
    return result.to_text()


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(format_result(run()))
