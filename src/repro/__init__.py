"""repro — reproduction of "What Operations can be Performed Directly on Compressed
Arrays, and with What Error?" (SC 2023 / DRBSD workshop; the PyBlaz compressor).

The package is organised as:

* :mod:`repro.core` — the PyBlaz-style compressor, compressed form, compressed-space
  operations, codec and error analysis (the paper's contribution).
* :mod:`repro.numerics` — reduced-precision floating-point emulation.
* :mod:`repro.codecs` — the uniform :class:`Codec` protocol + string-keyed
  registry every compressor (core and baselines alike) is reachable through.
* :mod:`repro.kernels` — the kernel-backend registry selecting how the
  transform+binning hot loop executes: bit-exact ``reference``, BLAS ``gemm``,
  or JIT ``numba``.
* :mod:`repro.baselines` — Blaz, ZFP-like and SZ-like comparison compressors.
* :mod:`repro.simulators` — shallow-water, MRI-like and fission-like data generators.
* :mod:`repro.analysis` — uncompressed reference operations and error metrics.
* :mod:`repro.parallel` — block-chunked (thread/process-parallel) execution backends.
* :mod:`repro.streaming` — out-of-core slab streaming: :class:`ChunkedCompressor`,
  the chunk-table :class:`CompressedStore` format, and :mod:`repro.streaming.ops`,
  the compressed-domain operations that fold every Table I reduction (and
  the structural add/subtract/scale/negate) chunk-by-chunk over stores.
* :mod:`repro.engine` — the lazy expression/plan engine: build reductions as
  expressions (``engine.expr``) and fuse any number of them into shared decode
  sweeps (one decode per chunk per pass, bit-identical to the sequential
  calls) — see ``docs/engine.md``.
* :mod:`repro.serving` — the asyncio query service over a named catalog of
  stores: wire-form requests (``engine.wire``), per-tick request coalescing
  into one fused plan, a byte-budgeted decoded-chunk cache and a stats
  endpoint — see ``docs/serving.md``.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    import numpy as np
    from repro import CompressionSettings, Compressor, ops

    settings = CompressionSettings(block_shape=(4, 4), float_format="float32",
                                   index_dtype="int16")
    compressor = Compressor(settings)
    x = compressor.compress(np.random.rand(64, 64))
    y = compressor.compress(np.random.rand(64, 64))
    print(ops.dot(x, y), ops.mean(x), ops.l2_norm(y))
"""

from .core import (
    CompressedArray,
    CompressionSettings,
    Compressor,
    asymptotic_compression_ratio,
    compression_ratio,
    deserialize,
    serialize,
)
from .core import ops
from .codecs import (
    Codec,
    CodecCapabilities,
    available_codecs,
    get_codec,
    register_codec,
)
from .core.exceptions import CodecError
from .kernels import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .streaming import ChunkedCompressor, CompressedStore

__version__ = "1.4.0"

__all__ = [
    "CompressionSettings",
    "Compressor",
    "CompressedArray",
    "ChunkedCompressor",
    "CompressedStore",
    "Codec",
    "CodecCapabilities",
    "CodecError",
    "register_codec",
    "get_codec",
    "available_codecs",
    "KernelBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "ops",
    "serialize",
    "deserialize",
    "compression_ratio",
    "asymptotic_compression_ratio",
    "__version__",
]
