"""Deterministic fault injection at the storage / executor boundaries.

A :class:`FaultPlan` is a seedable list of :class:`FaultRule`\\ s installed
process-wide (via :func:`install` or the :func:`inject` context manager).
Production code calls the cheap module-level hooks at well-defined seams —
:meth:`repro.streaming.CompressedStore` before and after every record read,
:class:`repro.parallel.ProcessExecutor` when wrapping pooled jobs,
:mod:`repro.engine.plan` before running a compiled kernel — and each hook is a
no-op unless a plan is active, so the hot path pays one global read.

The supported fault kinds (the "fault matrix" in ``docs/reliability.md``):

============== =================================================================
kind            effect at the seam
============== =================================================================
``bit_flip``    one byte of the chunk record is XOR-flipped after the read
``short_read``  the chunk record is truncated to half its length
``os_error``    the read raises ``OSError(EIO)`` before touching the bytes
``latency``     the read sleeps ``delay_seconds`` first
``worker_crash`` the pooled job calls ``os._exit`` — a hard worker death
``compiled_kernel`` the compiled fused-pass kernel raises ``RuntimeError``
============== =================================================================

Every rule fires a bounded number of ``times`` (default 1), optionally gated
by a ``probability`` drawn from the plan's seeded RNG, so chaos tests are
bit-for-bit reproducible: with the same seed and the same workload, the same
reads fail on the same attempt.
"""

from __future__ import annotations

import contextlib
import errno
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FAULT_KINDS",
    "install",
    "uninstall",
    "active_plan",
    "inject",
]

FAULT_KINDS = (
    "bit_flip",
    "short_read",
    "os_error",
    "latency",
    "worker_crash",
    "compiled_kernel",
)


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject: what kind, where, how often.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    path:
        For read faults, a substring the store path must contain (``None``
        matches every store).
    chunk_index:
        For read faults, the chunk record to hit (``None`` matches any).
    job_index:
        For ``worker_crash``, the pooled job index to kill (``None`` matches
        any).
    times:
        How many times this rule fires before becoming inert.  The default of
        1 models a transient fault: the retry after it sees good bytes.
    probability:
        Chance each matching event actually fires, drawn from the plan's
        seeded RNG.  1.0 = always.
    delay_seconds:
        Sleep duration for ``latency`` faults.
    """

    kind: str
    path: Optional[str] = None
    chunk_index: Optional[int] = None
    job_index: Optional[int] = None
    times: int = 1
    probability: float = 1.0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")


class FaultPlan:
    """A seeded, thread-safe set of fault rules plus a record of what fired.

    ``plan.fired`` is a :class:`collections.Counter` keyed by fault kind —
    chaos tests assert on it to prove the fault actually happened (a test that
    "passes" because its fault never triggered proves nothing).
    """

    def __init__(self, *rules: FaultRule, seed: int = 0):
        import random

        self._rules = [(rule, rule.times) for rule in rules]
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.fired: Counter = Counter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = [rule.kind for rule, _ in self._rules]
        return f"FaultPlan(rules={kinds}, fired={dict(self.fired)})"

    def _take(self, kind: str, *, path: Optional[str] = None,
              chunk_index: Optional[int] = None,
              job_index: Optional[int] = None) -> Optional[FaultRule]:
        """Consume and return one firing rule matching the event, if any."""
        with self._lock:
            for i, (rule, remaining) in enumerate(self._rules):
                if rule.kind != kind or remaining <= 0:
                    continue
                if rule.path is not None and (path is None or rule.path not in path):
                    continue
                if rule.chunk_index is not None and rule.chunk_index != chunk_index:
                    continue
                if rule.job_index is not None and rule.job_index != job_index:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._rules[i] = (rule, remaining - 1)
                self.fired[kind] += 1
                return rule
            return None

    # -- hooks called from production seams ---------------------------------

    def before_chunk_read(self, path: str, chunk_index: int) -> None:
        """Called before a store record read: may sleep or raise ``OSError``."""
        rule = self._take("latency", path=path, chunk_index=chunk_index)
        if rule is not None:
            time.sleep(rule.delay_seconds)
        if self._take("os_error", path=path, chunk_index=chunk_index) is not None:
            raise OSError(errno.EIO, f"injected I/O error reading chunk {chunk_index}", path)

    def corrupt_record(self, path: str, chunk_index: int, data: bytes) -> bytes:
        """Called on the bytes of a record read: may flip a bit or truncate."""
        if self._take("bit_flip", path=path, chunk_index=chunk_index) is not None and data:
            middle = len(data) // 2
            data = data[:middle] + bytes([data[middle] ^ 0x01]) + data[middle + 1:]
        if self._take("short_read", path=path, chunk_index=chunk_index) is not None:
            data = data[: len(data) // 2]
        return data

    def take_worker_crash(self, job_index: int) -> bool:
        """True when pooled job ``job_index`` should hard-exit its worker."""
        return self._take("worker_crash", job_index=job_index) is not None

    def check_compiled_kernel(self) -> None:
        """Called before a compiled fused-pass kernel runs: may raise."""
        if self._take("compiled_kernel") is not None:
            raise RuntimeError("injected compiled-kernel runtime failure")


_active: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active fault plan."""
    global _active
    _active = plan


def uninstall() -> None:
    """Remove any active fault plan."""
    global _active
    _active = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None`` (the normal state)."""
    return _active


@contextlib.contextmanager
def inject(*rules: FaultRule, seed: int = 0) -> Iterator[FaultPlan]:
    """Install a fresh :class:`FaultPlan` for the duration of a ``with`` block.

    >>> from repro.reliability import faults
    >>> with faults.inject(faults.FaultRule("os_error", chunk_index=0)) as plan:
    ...     ...  # one read of chunk 0 raises OSError, retries see good bytes
    """
    plan = FaultPlan(*rules, seed=seed)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
