"""Typed errors for the reliability layer.

:class:`IntegrityError` itself lives in :mod:`repro.core.exceptions` (a leaf
module) so that :mod:`repro.streaming.store` can raise it without importing
this package; it is re-exported here because "reliability" is where users are
documented to look for the fault-handling surface.

The two new types deliberately do **not** subclass :class:`CodecError`:

* :class:`WorkerCrashError` — a process worker died mid-job.  The *inputs*
  were fine; the environment failed.  Retrying (or degrading to serial
  execution, as :class:`repro.serving.QueryService` does) is legitimate,
  whereas a :class:`CodecError` means retrying the same bytes cannot help.
* :class:`DeadlineError` — a time budget ran out.  Also not a data problem.
"""

from __future__ import annotations

from ..core.exceptions import CodecError, IntegrityError

__all__ = ["CodecError", "IntegrityError", "WorkerCrashError", "DeadlineError"]


class WorkerCrashError(RuntimeError):
    """A process-pool worker died (or its payload failed to pickle) mid-job.

    Raised by :meth:`repro.parallel.ProcessExecutor.map_jobs` /
    :meth:`~repro.parallel.ProcessExecutor.imap_jobs` in place of the raw
    ``concurrent.futures.process.BrokenProcessPool`` / ``PicklingError`` so
    callers can react with one documented type.  When a pool breaks, *every*
    outstanding future fails at once, so :attr:`job_index` names the first job
    whose failure was observed — the crash itself may have happened in any
    concurrently running job.

    Attributes
    ----------
    job_index:
        Index (into the submitted job list) of the first job observed to
        fail, or ``None`` when submission itself failed.
    n_jobs:
        Total number of jobs in the submitted batch.
    """

    def __init__(self, message: str, *, job_index: int | None = None,
                 n_jobs: int | None = None):
        super().__init__(message)
        self.job_index = job_index
        self.n_jobs = n_jobs


class DeadlineError(RuntimeError):
    """An operation exceeded its deadline budget.

    Raised by :func:`repro.reliability.retry_call` when the next retry would
    start after the deadline, and by :class:`repro.serving.QueryClient` when a
    per-call deadline elapses while waiting on the server.
    """
