"""Retry with decorrelated-jitter backoff under a deadline budget.

The policy follows the "decorrelated jitter" scheme (each delay is drawn
uniformly from ``[base_delay, 3 * previous_delay]``, capped at ``max_delay``):
it spreads retry storms as well as full jitter while still growing
exponentially in expectation.  A :class:`RetryPolicy` carries an optional
``seed`` so chaos tests can pin the exact delay sequence; production callers
leave it ``None`` for OS entropy.

Two budget knobs compose:

* ``attempts`` — a hard cap on how many times the function is called.
* ``deadline`` — a wall-clock budget in seconds.  A retry never *starts*
  after the deadline; sleeps are truncated to the remaining budget.  When the
  budget is exhausted the *original* exception is re-raised (not a
  :class:`DeadlineError`) so callers see the real failure; ``DeadlineError``
  is reserved for operations that time out without an underlying exception.

Used by :class:`repro.streaming.CompressedStore` (transient ``OSError`` on
record reads) and :class:`repro.serving.QueryClient` (connect/call retries).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from .errors import DeadlineError

__all__ = ["RetryPolicy", "Deadline", "retry_call", "DEFAULT_READ_RETRY"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between tries.

    Parameters
    ----------
    attempts:
        Total number of calls allowed (1 = no retries).  Must be >= 1.
    base_delay:
        Lower bound of every jittered sleep, in seconds.
    max_delay:
        Upper cap on any single sleep, in seconds.
    deadline:
        Optional wall-clock budget for the whole retry loop, in seconds.
    seed:
        Optional RNG seed.  With a seed, the delay sequence is deterministic
        (chaos tests rely on this); without, OS entropy is used.
    """

    attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    deadline: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"base_delay={self.base_delay}, max_delay={self.max_delay}"
            )

    def delays(self) -> "_DelaySequence":
        """A fresh iterator of jittered sleep durations for one retry loop."""
        return _DelaySequence(self)


class _DelaySequence:
    """Stateful decorrelated-jitter generator: next ~ U(base, 3 * previous)."""

    def __init__(self, policy: RetryPolicy):
        self._policy = policy
        self._rng = random.Random(policy.seed)
        self._previous = policy.base_delay

    def __iter__(self) -> "_DelaySequence":
        return self

    def __next__(self) -> float:
        policy = self._policy
        delay = min(
            policy.max_delay,
            self._rng.uniform(policy.base_delay, max(policy.base_delay, self._previous * 3)),
        )
        self._previous = delay
        return delay


class Deadline:
    """A wall-clock budget that many operations can draw down together.

    Created once per logical call (e.g. one :meth:`QueryClient.evaluate`) and
    consulted by every stage: ``remaining()`` truncates socket timeouts and
    retry sleeps, ``expired()`` short-circuits work that cannot finish.
    """

    __slots__ = ("_expires_at", "budget")

    def __init__(self, budget: float, *, _now: Optional[float] = None):
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget}")
        self.budget = float(budget)
        start = time.monotonic() if _now is None else _now
        self._expires_at = start + self.budget

    @classmethod
    def after(cls, budget: Optional[float]) -> Optional["Deadline"]:
        """``Deadline(budget)``, or ``None`` when no budget was requested."""
        return None if budget is None else cls(budget)

    def remaining(self) -> float:
        """Seconds left, never negative."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        """True once the budget is fully spent."""
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineError` if the budget is spent."""
        if self.expired():
            raise DeadlineError(
                f"{what} exceeded its {self.budget:g}s deadline"
            )


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    deadline: Optional[Deadline] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with retries per ``policy``; return its first success.

    Only exceptions matching ``retry_on`` are retried; anything else (a
    :class:`CodecError`, say) propagates immediately — retrying the same bad
    bytes cannot help.  ``on_retry(attempt_number, exc)`` is invoked before
    each re-attempt, which is how the store counts its read retries.  When
    ``policy.deadline`` (or an explicit ``deadline``) runs out, the last
    exception from ``fn`` is re-raised.
    """
    if deadline is None:
        deadline = Deadline.after(policy.deadline)
    delays = policy.delays()
    last_exc: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last_exc = exc
            if attempt >= policy.attempts:
                break
            pause = next(delays)
            if deadline is not None:
                left = deadline.remaining()
                if left <= 0:
                    break
                pause = min(pause, left)
            if on_retry is not None:
                on_retry(attempt, exc)
            if pause > 0:
                sleep(pause)
    assert last_exc is not None
    raise last_exc


#: Default policy for transient OSError on store record reads: three quick
#: tries well under any request deadline.
DEFAULT_READ_RETRY = RetryPolicy(attempts=3, base_delay=0.005, max_delay=0.1)
