"""Store scanning and repair: the engine behind ``repro verify-store``.

:func:`verify_store` walks every chunk record of a store — reading, checksum-
verifying (format v3) and decoding each — and returns a :class:`StoreReport`
naming exactly which chunks are corrupt.  :func:`repair_store` rebuilds a
store by splicing, chunk by chunk, the first good record found in the target
or a mirror replica, publishing the result atomically as a version-3 file.

Imported lazily from :mod:`repro.reliability` (these functions need
:mod:`repro.streaming`, which itself imports the retry/fault modules — a cycle
if this module loaded eagerly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..core.exceptions import CodecError, IntegrityError

__all__ = ["ChunkReport", "StoreReport", "verify_store", "repair_store"]


@dataclass
class ChunkReport:
    """Verification outcome for one chunk record."""

    index: int
    n_rows: int
    status: str  # "ok" or "corrupt"
    error: Optional[str] = None
    #: set by repair: where the good bytes came from ("store" or "mirror")
    source: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when this chunk read, checksum-verified and decoded."""
        return self.status == "ok"

    def describe(self) -> str:
        """One greppable report line, e.g. ``chunk 1: CORRUPT — ...``."""
        line = f"chunk {self.index}: {'OK' if self.ok else 'CORRUPT'}"
        if self.source == "mirror":
            line += " (repaired from mirror)"
        if self.error:
            line += f" — {self.error}"
        return line


@dataclass
class StoreReport:
    """Verification outcome for a whole store file."""

    path: str
    version: int
    codec_name: str
    shape: tuple
    chunks: List[ChunkReport] = field(default_factory=list)
    #: non-None when the header/table itself failed verification
    table_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the table and every chunk verified."""
        return self.table_error is None and all(chunk.ok for chunk in self.chunks)

    @property
    def corrupt_chunks(self) -> List[int]:
        """Indices of every chunk that failed verification, in file order."""
        return [chunk.index for chunk in self.chunks if not chunk.ok]

    def describe(self) -> str:
        """The multi-line human report ``repro verify-store`` prints."""
        lines = [
            f"{self.path}: store format v{self.version}, codec {self.codec_name}, "
            f"shape {self.shape}, {len(self.chunks)} chunks"
        ]
        if self.table_error:
            lines.append(f"chunk table: CORRUPT — {self.table_error}")
        lines.extend(chunk.describe() for chunk in self.chunks)
        n_bad = len(self.corrupt_chunks)
        lines.append(
            "store OK" if self.ok else f"store CORRUPT ({n_bad} bad chunk(s))"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON-ready form behind ``repro verify-store --json``."""
        return {
            "path": self.path,
            "version": self.version,
            "codec": self.codec_name,
            "shape": list(self.shape),
            "ok": self.ok,
            "table_error": self.table_error,
            "chunks": [
                {
                    "index": chunk.index,
                    "n_rows": chunk.n_rows,
                    "status": chunk.status,
                    "error": chunk.error,
                    "source": chunk.source,
                }
                for chunk in self.chunks
            ],
        }


def _open_unretried(path):
    """Open a store with retries off: a scan must see every failure, once."""
    from ..streaming.store import CompressedStore

    return CompressedStore(path, retry_policy=None)


def verify_store(path) -> StoreReport:
    """Scan every chunk of the store at ``path`` and report per-chunk status.

    Each chunk record is read, checksum-verified (v3) and decoded; a failure
    of any stage marks that chunk corrupt with the error message, and the
    scan continues so the report names *all* bad chunks.  A corrupt header or
    chunk table is reported as ``table_error`` with no per-chunk entries
    (nothing after it can be trusted).
    """
    path = Path(path)
    try:
        store = _open_unretried(path)
    except (CodecError, OSError) as exc:
        return StoreReport(
            path=str(path), version=0, codec_name="?", shape=(),
            table_error=str(exc),
        )
    with store:
        report = StoreReport(
            path=str(path), version=store.version,
            codec_name=store.codec_name, shape=tuple(store.shape),
        )
        for index, n_rows in enumerate(store.chunk_rows):
            try:
                chunk = store._decode_chunk(index)
                store.decompress_chunk(chunk)
                report.chunks.append(ChunkReport(index=index, n_rows=n_rows, status="ok"))
            except (CodecError, OSError) as exc:
                report.chunks.append(
                    ChunkReport(index=index, n_rows=n_rows, status="corrupt", error=str(exc))
                )
    return report


def _good_payload(store, index: int) -> bytes:
    """Chunk ``index``'s raw record bytes, decode-verified (raises on corrupt)."""
    from ..codecs.registry import get_codec_class

    payload = store.read_payload(index)  # v3: checksum-verified
    get_codec_class(store.codec_name).from_bytes(payload)  # decode-verified
    return payload


def repair_store(path, mirror) -> StoreReport:
    """Rebuild the store at ``path``, taking bad chunks from ``mirror``.

    For every chunk the first good record wins: the target's own bytes when
    they verify, the mirror replica's otherwise.  The result is written as a
    format-v3 store and atomically replaces ``path``; the mirror is never
    modified.  Raises :class:`CodecError` when a chunk is corrupt in *both*
    copies (nothing trustworthy to splice), or when the two stores are not
    replicas of the same array (codec, shape or chunking differ).

    Both stores must be format v2 or v3 — their records are self-describing
    codec streams that can be copied verbatim.  Version-1 records are raw
    settings-dependent blobs in an incompatible table layout; rewrite those
    stores with the current writer instead.
    """
    from ..codecs.registry import get_codec
    from ..streaming.store import CompressedStoreWriter

    path = Path(path)
    with _open_unretried(path) as store, _open_unretried(mirror) as replica:
        if store.version < 2 or replica.version < 2:
            raise CodecError(
                "repair needs format v2+ stores (self-describing chunk records); "
                f"got v{store.version} target and v{replica.version} mirror"
            )
        if store.codec_name != replica.codec_name:
            raise CodecError(
                f"mirror holds {replica.codec_name!r} chunks, store holds "
                f"{store.codec_name!r}; not replicas"
            )
        if tuple(store.shape) != tuple(replica.shape) or (
            store.chunk_rows != replica.chunk_rows
        ):
            raise CodecError(
                f"mirror shape/chunking {replica.shape}/{replica.chunk_rows} does "
                f"not match store {store.shape}/{store.chunk_rows}; not replicas"
            )
        report = StoreReport(
            path=str(path), version=3, codec_name=store.codec_name,
            shape=tuple(store.shape),
        )
        records: list[tuple[bytes, int]] = []
        for index, n_rows in enumerate(store.chunk_rows):
            try:
                payload = _good_payload(store, index)
                source, error = "store", None
            except (CodecError, OSError) as first:
                try:
                    payload = _good_payload(replica, index)
                    source, error = "mirror", str(first)
                except (CodecError, OSError) as second:
                    raise CodecError(
                        f"chunk {index} is corrupt in both the store "
                        f"({first}) and the mirror ({second}); cannot repair"
                    ) from second
            records.append((payload, n_rows))
            report.chunks.append(
                ChunkReport(index=index, n_rows=n_rows, status="ok",
                            error=error, source=source)
            )
        tail_shape = tuple(store.shape[1:])
        codec = get_codec(store.codec_name)
    with CompressedStoreWriter(path, codec) as writer:
        for payload, n_rows in records:
            writer.append_record(payload, n_rows, tail_shape=tail_shape)
    return report
