"""Store scanning and repair: the engine behind ``repro verify-store``.

:func:`verify_store` walks every chunk record of a store — reading, checksum-
verifying (format v3) and decoding each — and returns a :class:`StoreReport`
naming exactly which chunks are corrupt.  :func:`repair_store` rebuilds a
store by splicing, chunk by chunk, the first good record found in the target
or a mirror replica, publishing the result atomically as a version-3 file.

Imported lazily from :mod:`repro.reliability` (these functions need
:mod:`repro.streaming`, which itself imports the retry/fault modules — a cycle
if this module loaded eagerly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..core.exceptions import CodecError, IntegrityError

__all__ = [
    "ChunkReport",
    "StoreReport",
    "ShardReport",
    "ShardedStoreReport",
    "verify_store",
    "repair_store",
    "verify_sharded_store",
    "repair_sharded_store",
]


@dataclass
class ChunkReport:
    """Verification outcome for one chunk record."""

    index: int
    n_rows: int
    status: str  # "ok" or "corrupt"
    error: Optional[str] = None
    #: set by repair: where the good bytes came from ("store" or "mirror")
    source: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when this chunk read, checksum-verified and decoded."""
        return self.status == "ok"

    def describe(self) -> str:
        """One greppable report line, e.g. ``chunk 1: CORRUPT — ...``."""
        line = f"chunk {self.index}: {'OK' if self.ok else 'CORRUPT'}"
        if self.source == "mirror":
            line += " (repaired from mirror)"
        if self.error:
            line += f" — {self.error}"
        return line


@dataclass
class StoreReport:
    """Verification outcome for a whole store file."""

    path: str
    version: int
    codec_name: str
    shape: tuple
    chunks: List[ChunkReport] = field(default_factory=list)
    #: non-None when the header/table itself failed verification
    table_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the table and every chunk verified."""
        return self.table_error is None and all(chunk.ok for chunk in self.chunks)

    @property
    def corrupt_chunks(self) -> List[int]:
        """Indices of every chunk that failed verification, in file order."""
        return [chunk.index for chunk in self.chunks if not chunk.ok]

    def describe(self) -> str:
        """The multi-line human report ``repro verify-store`` prints."""
        lines = [
            f"{self.path}: store format v{self.version}, codec {self.codec_name}, "
            f"shape {self.shape}, {len(self.chunks)} chunks"
        ]
        if self.table_error:
            lines.append(f"chunk table: CORRUPT — {self.table_error}")
        lines.extend(chunk.describe() for chunk in self.chunks)
        n_bad = len(self.corrupt_chunks)
        lines.append(
            "store OK" if self.ok else f"store CORRUPT ({n_bad} bad chunk(s))"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON-ready form behind ``repro verify-store --json``."""
        return {
            "path": self.path,
            "version": self.version,
            "codec": self.codec_name,
            "shape": list(self.shape),
            "ok": self.ok,
            "table_error": self.table_error,
            "chunks": [
                {
                    "index": chunk.index,
                    "n_rows": chunk.n_rows,
                    "status": chunk.status,
                    "error": chunk.error,
                    "source": chunk.source,
                }
                for chunk in self.chunks
            ],
        }


def _open_unretried(path):
    """Open a store with retries off: a scan must see every failure, once."""
    from ..streaming.store import CompressedStore

    return CompressedStore(path, retry_policy=None)


def verify_store(path) -> StoreReport:
    """Scan every chunk of the store at ``path`` and report per-chunk status.

    Each chunk record is read, checksum-verified (v3) and decoded; a failure
    of any stage marks that chunk corrupt with the error message, and the
    scan continues so the report names *all* bad chunks.  A corrupt header or
    chunk table is reported as ``table_error`` with no per-chunk entries
    (nothing after it can be trusted).
    """
    path = Path(path)
    try:
        store = _open_unretried(path)
    except (CodecError, OSError) as exc:
        return StoreReport(
            path=str(path), version=0, codec_name="?", shape=(),
            table_error=str(exc),
        )
    with store:
        report = StoreReport(
            path=str(path), version=store.version,
            codec_name=store.codec_name, shape=tuple(store.shape),
        )
        for index, n_rows in enumerate(store.chunk_rows):
            try:
                chunk = store._decode_chunk(index)
                store.decompress_chunk(chunk)
                report.chunks.append(ChunkReport(index=index, n_rows=n_rows, status="ok"))
            except (CodecError, OSError) as exc:
                report.chunks.append(
                    ChunkReport(index=index, n_rows=n_rows, status="corrupt", error=str(exc))
                )
    return report


def _good_payload(store, index: int) -> bytes:
    """Chunk ``index``'s raw record bytes, decode-verified (raises on corrupt)."""
    from ..codecs.registry import get_codec_class

    payload = store.read_payload(index)  # v3: checksum-verified
    get_codec_class(store.codec_name).from_bytes(payload)  # decode-verified
    return payload


def repair_store(path, mirror) -> StoreReport:
    """Rebuild the store at ``path``, taking bad chunks from ``mirror``.

    For every chunk the first good record wins: the target's own bytes when
    they verify, the mirror replica's otherwise.  The result is written as a
    format-v3 store and atomically replaces ``path``; the mirror is never
    modified.  Raises :class:`CodecError` when a chunk is corrupt in *both*
    copies (nothing trustworthy to splice), or when the two stores are not
    replicas of the same array (codec, shape or chunking differ).

    Both stores must be format v2 or v3 — their records are self-describing
    codec streams that can be copied verbatim.  Version-1 records are raw
    settings-dependent blobs in an incompatible table layout; rewrite those
    stores with the current writer instead.
    """
    from ..codecs.registry import get_codec
    from ..streaming.store import CompressedStoreWriter

    path = Path(path)
    with _open_unretried(path) as store, _open_unretried(mirror) as replica:
        if store.version < 2 or replica.version < 2:
            raise CodecError(
                "repair needs format v2+ stores (self-describing chunk records); "
                f"got v{store.version} target and v{replica.version} mirror"
            )
        if store.codec_name != replica.codec_name:
            raise CodecError(
                f"mirror holds {replica.codec_name!r} chunks, store holds "
                f"{store.codec_name!r}; not replicas"
            )
        if tuple(store.shape) != tuple(replica.shape) or (
            store.chunk_rows != replica.chunk_rows
        ):
            raise CodecError(
                f"mirror shape/chunking {replica.shape}/{replica.chunk_rows} does "
                f"not match store {store.shape}/{store.chunk_rows}; not replicas"
            )
        report = StoreReport(
            path=str(path), version=3, codec_name=store.codec_name,
            shape=tuple(store.shape),
        )
        records: list[tuple[bytes, int]] = []
        for index, n_rows in enumerate(store.chunk_rows):
            try:
                payload = _good_payload(store, index)
                source, error = "store", None
            except (CodecError, OSError) as first:
                try:
                    payload = _good_payload(replica, index)
                    source, error = "mirror", str(first)
                except (CodecError, OSError) as second:
                    raise CodecError(
                        f"chunk {index} is corrupt in both the store "
                        f"({first}) and the mirror ({second}); cannot repair"
                    ) from second
            records.append((payload, n_rows))
            report.chunks.append(
                ChunkReport(index=index, n_rows=n_rows, status="ok",
                            error=error, source=source)
            )
        tail_shape = tuple(store.shape[1:])
        codec = get_codec(store.codec_name)
    with CompressedStoreWriter(path, codec) as writer:
        for payload, n_rows in records:
            writer.append_record(payload, n_rows, tail_shape=tail_shape)
    return report


# ------------------------------------------------------------------ sharded
@dataclass
class ShardReport:
    """Verification outcome for one shard of a sharded store."""

    index: int
    file: str
    #: the shard's chunk-level report (None only when the file is missing)
    report: Optional[StoreReport] = None
    #: manifest-level failure: missing file, or size/CRC drift vs the manifest
    manifest_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the manifest entry and every chunk of the shard verified."""
        return (self.manifest_error is None
                and self.report is not None and self.report.ok)

    def describe(self) -> str:
        """Greppable per-shard lines: each names the shard *and* the chunk."""
        prefix = f"shard {self.index} ({self.file})"
        lines = []
        if self.manifest_error:
            lines.append(f"{prefix}: MANIFEST MISMATCH — {self.manifest_error}")
        if self.report is not None:
            if self.report.table_error:
                lines.append(
                    f"{prefix} chunk table: CORRUPT — {self.report.table_error}"
                )
            lines.extend(f"{prefix} {chunk.describe()}"
                         for chunk in self.report.chunks)
        if not lines:
            lines.append(f"{prefix}: MISSING")
        return "\n".join(lines)


@dataclass
class ShardedStoreReport:
    """Verification outcome for a whole sharded store directory."""

    path: str
    version: int
    codec_name: str
    shape: tuple
    shards: List[ShardReport] = field(default_factory=list)
    #: non-None when the manifest itself failed to load/validate
    manifest_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the manifest and every shard verified."""
        return self.manifest_error is None and all(s.ok for s in self.shards)

    @property
    def corrupt_shards(self) -> List[int]:
        """Indices of every shard that failed verification, in shard order."""
        return [shard.index for shard in self.shards if not shard.ok]

    def describe(self) -> str:
        """The multi-line human report ``repro verify-store`` prints."""
        lines = [
            f"{self.path}: sharded store v{self.version}, codec "
            f"{self.codec_name}, shape {self.shape}, {len(self.shards)} shard(s)"
        ]
        if self.manifest_error:
            lines.append(f"manifest: CORRUPT — {self.manifest_error}")
        lines.extend(shard.describe() for shard in self.shards)
        n_bad = len(self.corrupt_shards)
        lines.append(
            "store OK" if self.ok else f"store CORRUPT ({n_bad} bad shard(s))"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON-ready form behind ``repro verify-store --json``."""
        return {
            "path": self.path,
            "sharded": True,
            "version": self.version,
            "codec": self.codec_name,
            "shape": list(self.shape),
            "ok": self.ok,
            "manifest_error": self.manifest_error,
            "shards": [
                {
                    "index": shard.index,
                    "file": shard.file,
                    "ok": shard.ok,
                    "manifest_error": shard.manifest_error,
                    "report": (shard.report.to_dict()
                               if shard.report is not None else None),
                }
                for shard in self.shards
            ],
        }


def _check_shard_entry(directory: Path, entry: dict) -> Optional[str]:
    """Compare one shard file against its manifest record (size, CRC-32)."""
    import zlib

    shard_path = directory / entry["file"]
    if not shard_path.is_file():
        return "shard file is missing"
    actual = shard_path.stat().st_size
    if actual != int(entry["n_bytes"]):
        return f"size {actual} != manifest {entry['n_bytes']}"
    crc = 0
    with open(shard_path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    if crc != int(entry["crc32"]):
        return f"CRC-32 {crc:#010x} != manifest {int(entry['crc32']):#010x}"
    return None


def verify_sharded_store(path) -> ShardedStoreReport:
    """Recursively verify a sharded store: manifest entries, then every chunk.

    Each shard is first checked against its manifest record (existence, byte
    size, whole-file CRC-32) and then scanned chunk by chunk with
    :func:`verify_store`, so the report names the corrupt *shard and chunk*.
    A missing or garbled manifest short-circuits into ``manifest_error``.
    """
    from ..streaming.sharded import load_manifest

    path = Path(path)
    try:
        manifest = load_manifest(path)
    except CodecError as exc:
        return ShardedStoreReport(
            path=str(path), version=0, codec_name="?", shape=(),
            manifest_error=str(exc),
        )
    report = ShardedStoreReport(
        path=str(path), version=int(manifest["version"]),
        codec_name=str(manifest["codec"]),
        shape=tuple(int(extent) for extent in manifest["shape"]),
    )
    for index, entry in enumerate(manifest["shards"]):
        shard = ShardReport(index=index, file=entry["file"],
                            manifest_error=_check_shard_entry(path, entry))
        if (path / entry["file"]).is_file():
            shard.report = verify_store(path / entry["file"])
        report.shards.append(shard)
    return report


def repair_sharded_store(path, mirror) -> ShardedStoreReport:
    """Repair every corrupt shard of a sharded store from a mirror directory.

    The mirror must be a sharded store replica (same shard layout); each shard
    that fails verification is rebuilt in place with :func:`repair_store`
    against the mirror's same-named shard, and the manifest's size/CRC entries
    are refreshed to the repaired bytes — the ``revision`` is *not* bumped,
    because the logical chunk contents (and hence any persisted fold partials)
    are unchanged.  Returns the post-repair :func:`verify_sharded_store`
    report, with per-chunk ``source`` markers merged in from the repairs.
    Raises :class:`CodecError` when any chunk is corrupt in both copies.
    """
    import zlib

    from ..streaming.sharded import load_manifest, save_manifest

    path = Path(path)
    mirror = Path(mirror)
    before = verify_sharded_store(path)
    if before.manifest_error is not None:
        raise CodecError(
            f"cannot repair {path}: manifest unreadable "
            f"({before.manifest_error}); restore the manifest first"
        )
    repaired: dict[int, StoreReport] = {}
    manifest = load_manifest(path)
    for shard in before.shards:
        if shard.ok:
            continue
        entry = manifest["shards"][shard.index]
        repaired[shard.index] = repair_store(
            path / entry["file"], mirror / entry["file"]
        )
        shard_path = path / entry["file"]
        entry["n_bytes"] = shard_path.stat().st_size
        crc = 0
        with open(shard_path, "rb") as handle:
            while True:
                block = handle.read(1 << 20)
                if not block:
                    break
                crc = zlib.crc32(block, crc)
        entry["crc32"] = crc
    if repaired:
        save_manifest(path, manifest)
    after = verify_sharded_store(path)
    for shard in after.shards:
        fixed = repaired.get(shard.index)
        if fixed is None or shard.report is None:
            continue
        for chunk, spliced in zip(shard.report.chunks, fixed.chunks):
            chunk.source = spliced.source
            chunk.error = spliced.error
    return after
