"""Fault tolerance: integrity checks, retries/deadlines, fault injection.

This package holds the reliability contract for the storage and serving
layers (``docs/reliability.md``):

* :mod:`~repro.reliability.errors` — the typed failure vocabulary
  (:class:`IntegrityError`, :class:`WorkerCrashError`, :class:`DeadlineError`).
* :mod:`~repro.reliability.retry` — decorrelated-jitter backoff under a
  deadline budget (:class:`RetryPolicy`, :class:`Deadline`,
  :func:`retry_call`), wired into store record reads and the query client.
* :mod:`~repro.reliability.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan`) the chaos test suite drives.
* :mod:`~repro.reliability.verify` — store scanning and chunk-level repair
  (:func:`verify_store`, :func:`repair_store`), behind ``repro verify-store``,
  plus the sharded-store recursion (:func:`verify_sharded_store`,
  :func:`repair_sharded_store`) that names the corrupt shard *and* chunk.

``verify`` is imported lazily: it needs :mod:`repro.streaming`, which itself
imports the retry and fault modules, and an eager import here would close
that cycle mid-initialisation.
"""

from __future__ import annotations

from .errors import CodecError, DeadlineError, IntegrityError, WorkerCrashError
from .faults import FaultPlan, FaultRule, active_plan, inject, install, uninstall
from .retry import DEFAULT_READ_RETRY, Deadline, RetryPolicy, retry_call

__all__ = [
    "CodecError",
    "IntegrityError",
    "WorkerCrashError",
    "DeadlineError",
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "DEFAULT_READ_RETRY",
    "FaultPlan",
    "FaultRule",
    "install",
    "uninstall",
    "active_plan",
    "inject",
    "ChunkReport",
    "StoreReport",
    "ShardReport",
    "ShardedStoreReport",
    "verify_store",
    "repair_store",
    "verify_sharded_store",
    "repair_sharded_store",
]

_LAZY = (
    "ChunkReport",
    "StoreReport",
    "ShardReport",
    "ShardedStoreReport",
    "verify_store",
    "repair_store",
    "verify_sharded_store",
    "repair_sharded_store",
)


def __getattr__(name: str):
    if name in _LAZY:
        from . import verify

        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
