"""Shared chunk-source plumbing for the out-of-core operation layers.

Both :mod:`repro.streaming.ops` (one-op sweeps, structural store writers) and
the lazy plan engine (:mod:`repro.engine.plan`) consume the same two source
kinds — an open :class:`CompressedStore` of a pyblaz-family codec, or any
iterable of chunk :class:`repro.core.CompressedArray` objects — and need the
same guarantees about them: pyblaz-ness, aligned chunking across sources, and
matching store geometry.  Those checks live here, in the streaming layer, so
the engine depends downward on streaming (never the reverse).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.compressed import CompressedArray
from ..core.exceptions import CodecError
from .sharded import ShardedStore
from .store import CompressedStore

__all__ = [
    "STORE_TYPES",
    "require_pyblaz",
    "source_chunks",
    "aligned_chunks",
    "check_stores",
]

#: The open-store source kinds every layer treats interchangeably: a single
#: chunked store file, or a sharded store directory presenting the same
#: surface.  ``isinstance(source, STORE_TYPES)`` is the one idiom for "this
#: source is a reopenable on-disk store" across ops, engine and serving.
STORE_TYPES = (CompressedStore, ShardedStore)


def require_pyblaz(store) -> None:
    """Reject stores whose chunks are not pyblaz-family compressed arrays."""
    if store.settings is None:
        raise CodecError(
            f"compressed-domain ops fold pyblaz chunks via core.ops; this "
            f"store holds {store.codec_name!r} streams"
        )


def source_chunks(source, *, prefetch: int | None = None) -> Iterator[CompressedArray]:
    """Iterate a source's chunks: a store's records or an iterable's items.

    ``prefetch`` passes through to :meth:`CompressedStore.iter_chunks
    <repro.streaming.CompressedStore.iter_chunks>` for store sources (``None``
    auto-enables readahead, ``0`` keeps the serial loop); in-memory iterables
    ignore it.
    """
    if isinstance(source, STORE_TYPES):
        require_pyblaz(source)
        return source.iter_chunks(prefetch=prefetch)
    return iter(source)


def aligned_chunks(sources: tuple, *, prefetch: int | None = None) -> Iterator[tuple]:
    """Yield aligned chunk tuples across sources, enforcing identical chunking.

    With ``prefetch`` enabled (the default auto mode), every store source
    reads ahead through its own :class:`~repro.streaming.ChunkPrefetcher`;
    the lockstep zip below consumes them jointly, so multi-source sweeps
    (dot, covariance, structural binaries) pipeline all their inputs at once.
    Abandoning or closing this generator closes every source iterator, which
    shuts the prefetchers' fetch pools down promptly.
    """
    iterators = [source_chunks(source, prefetch=prefetch) for source in sources]
    sentinel = object()
    try:
        while True:
            chunks = tuple(next(iterator, sentinel) for iterator in iterators)
            if all(chunk is sentinel for chunk in chunks):
                return
            if any(chunk is sentinel for chunk in chunks):
                raise ValueError(
                    "binary compressed-domain ops require identically chunked "
                    "sources (one ran out of chunks early)"
                )
            shapes = {tuple(chunk.shape) for chunk in chunks}
            if len(shapes) > 1:
                raise ValueError(
                    f"chunk shapes differ ({' vs '.join(map(str, shapes))}); "
                    "recompress with matching slab_rows"
                )
            yield chunks
            chunks = None  # release the previous chunk tuple before decoding the next
    finally:
        for iterator in iterators:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()


def check_stores(sources: Sequence) -> None:
    """Cheap upfront geometry checks across every open-store source."""
    stores = [source for source in sources if isinstance(source, STORE_TYPES)]
    if len(stores) < 2:
        return
    first = stores[0]
    for other in stores[1:]:
        if other.shape != first.shape:
            raise ValueError(
                f"stores have different shapes ({first.shape} vs {other.shape})"
            )
        if other.chunk_rows != first.chunk_rows:
            raise ValueError(
                f"stores are chunked differently (chunk rows {first.chunk_rows} "
                f"vs {other.chunk_rows}); recompress with matching slab_rows"
            )
