"""Out-of-core compressed-domain operations over chunked stores.

This module closes the gap between the in-memory operation set of
:mod:`repro.core.ops` (which needs a fully materialised
:class:`repro.core.CompressedArray`) and the chunk-table
:class:`repro.streaming.CompressedStore`: every Table I scalar reduction and
the linear structural operations run here **chunk at a time**, so a store of
any size is reduced — or rewritten — in chunk-sized memory.

Since the lazy engine landed, every scalar reduction here (:func:`mean`,
:func:`variance`, :func:`standard_deviation`, :func:`covariance`, :func:`dot`,
:func:`l2_norm`, :func:`euclidean_distance`, :func:`cosine_similarity`) is a
**thin one-op plan** over :mod:`repro.engine`: the function builds the matching
expression node and executes it.  The bit-identity contract is unchanged —
because the engine folds the same declarative
:data:`repro.core.ops.folds.FOLD_SPECS` partials in the same chunk order with
the same exact (``fsum``) combine, a store-level reduction equals its in-memory
counterpart on the assembled array **bit for bit** whenever the chunks assemble
bit-identically (stores written under the ``reference`` kernel backend); under
the fast backends the two agree within the backend's documented
``accumulation_tolerance`` (see ``docs/ops.md``).  Callers that want several
reductions should hand them to :func:`repro.engine.plan` directly and pay one
fused sweep instead of one sweep per call (``docs/engine.md``).

Every scalar reduction also takes ``backend=`` and forwards it to
:meth:`repro.engine.Plan.execute`: the default ``None`` keeps the bit-exact
``reference`` sweep above; a fast backend name (``"gemm"``, ``"numba"``) runs
the fold through one compiled fused-pass kernel within the backend's
``fused_fold_tolerance`` (``docs/engine.md``, "Compiled plans"), falling back
to ``reference`` when unavailable.

Structural operations (:func:`add`, :func:`subtract`, :func:`scale`,
:func:`negate`) map :mod:`repro.core.ops` over the chunks and append each
result to a new store immediately — lazy, bounded memory, and bit-identical to
running the in-memory operation on the assembled array *and serializing the
result* (rebinning is per-block; persisting rounds the per-block maxima to the
working float format, exactly as ``serialize`` does for the in-memory result).
With an ``executor`` and store sources, per-chunk transforms fan out through
the bounded-window ordered :meth:`BlockExecutor.imap_jobs
<repro.parallel.BlockExecutor.imap_jobs>`, so workers decode and transform
concurrently while the writer appends in deterministic chunk order.

Memory contract: the serial path holds at most **one chunk (pair) of
coefficients** at a time; partial states are one float64 per block per tracked
quantity.  With an ``executor`` (any :class:`repro.parallel.BlockExecutor`),
per-chunk work fans out through the executor's job hooks — up to ``n_workers``
chunks decode concurrently (each worker reopens the store, so process pools
work too), and combine/append order is fixed by chunk order, keeping results
deterministic.

Sources may be a :class:`CompressedStore` (of a pyblaz-family codec) or any
iterable of chunk :class:`CompressedArray` objects.  Two-pass reductions
(:func:`variance`, :func:`covariance`) and the structural operations must be
able to re-iterate their source, so they reject single-shot generators.
"""

from __future__ import annotations

import math

from .. import engine
from ..core import ops as core_ops
from ..engine import expr
from .sharded import open_store
from .sources import STORE_TYPES, aligned_chunks, check_stores, require_pyblaz
from .store import CompressedStore, CompressedStoreWriter

__all__ = [
    "mean",
    "variance",
    "standard_deviation",
    "covariance",
    "dot",
    "l2_norm",
    "euclidean_distance",
    "cosine_similarity",
    "add",
    "subtract",
    "scale",
    "negate",
]


# ---------------------------------------------------------------------- scalar ops
def mean(source, *, padded: bool = True, executor=None, backend=None,
         prefetch=None) -> float:
    """Store-level mean (Algorithm 7), folded chunk-by-chunk.

    Matches :func:`repro.core.ops.mean` of the assembled array bit for bit
    (chunking-invariant fold; no error beyond compression).  ``padded`` selects
    the zero-padded (paper) or original-element-count domain.
    """
    return engine.evaluate(expr.mean(source, padded=padded), executor=executor,
                           backend=backend, prefetch=prefetch)


def l2_norm(source, *, executor=None, backend=None, prefetch=None) -> float:
    """Store-level L2 norm (Algorithm 10), folded chunk-by-chunk.

    Matches :func:`repro.core.ops.l2_norm` of the assembled array bit for bit;
    one square root at the end, so no per-chunk rounding is reintroduced.
    """
    return engine.evaluate(expr.l2_norm(source), executor=executor,
                           backend=backend, prefetch=prefetch)


def dot(a, b, *, executor=None, backend=None, prefetch=None) -> float:
    """Store-level dot product (Algorithm 6) of two identically chunked sources.

    Matches :func:`repro.core.ops.dot` of the assembled arrays bit for bit.
    The sources must agree chunk-by-chunk in shape and settings; two stores
    written with the same ``slab_rows`` satisfy this.
    """
    return engine.evaluate(expr.dot(a, b), executor=executor,
                           backend=backend, prefetch=prefetch)


def euclidean_distance(a, b, *, executor=None, backend=None,
                       prefetch=None) -> float:
    """Store-level Euclidean distance ``‖a − b‖₂`` without writing a difference.

    Matches :func:`repro.core.ops.euclidean_distance` of the assembled arrays
    bit for bit — the difference is taken in coefficient space per chunk, so no
    rebinning error and no intermediate store.
    """
    return engine.evaluate(expr.euclidean_distance(a, b), executor=executor,
                           backend=backend, prefetch=prefetch)


def cosine_similarity(a, b, *, executor=None, backend=None,
                      prefetch=None) -> float:
    """Store-level cosine similarity (Algorithm 11) in one pass over the chunks.

    Matches :func:`repro.core.ops.cosine_similarity` of the assembled arrays
    bit for bit; raises ``ZeroDivisionError`` for zero-norm operands.
    """
    return engine.evaluate(expr.cosine_similarity(a, b), executor=executor,
                           backend=backend, prefetch=prefetch)


def variance(source, *, executor=None, backend=None, prefetch=None) -> float:
    """Store-level variance (Algorithm 9), two exact passes over the chunks.

    Pass 1 folds the global DC mean, pass 2 folds the squared centered
    coefficients — the same two passes :func:`repro.core.ops.variance` runs
    in-memory, so the results match bit for bit.  The source must be
    re-iterable (a store, or a sequence of chunks).
    """
    return engine.evaluate(expr.variance(source), executor=executor,
                           backend=backend, prefetch=prefetch)


def standard_deviation(source, *, executor=None, backend=None,
                       prefetch=None) -> float:
    """Store-level standard deviation: the square root of :func:`variance`."""
    return engine.evaluate(expr.standard_deviation(source), executor=executor,
                           backend=backend, prefetch=prefetch)


def covariance(a, b, *, executor=None, backend=None, prefetch=None) -> float:
    """Store-level covariance (Algorithm 8), two exact passes over the chunks.

    Pass 1 folds each source's global DC mean, pass 2 folds the centered
    products — matching :func:`repro.core.ops.covariance` of the assembled
    arrays bit for bit.  Sources must be identically chunked and re-iterable.
    """
    return engine.evaluate(expr.covariance(a, b), executor=executor,
                           backend=backend, prefetch=prefetch)


# ---------------------------------------------------------------------- structural ops
#: Chunk transforms addressable by name, so executor jobs stay picklable.
_STRUCTURAL_OPS = {
    "add": core_ops.add,
    "subtract": core_ops.subtract,
    "scale": core_ops.multiply_scalar,
    "negate": core_ops.negate,
}


def _structural_chunk_job(operation: str, paths: tuple, index: int, extra: tuple):
    """Picklable per-chunk work unit for the structural fan-out.

    Reopens each store by path (workers may live in other processes), decodes
    only chunk ``index`` of each, and returns the transformed result chunk.
    """
    chunks = []
    for path in paths:
        with open_store(path) as store:
            chunks.append(store.read_chunk(index))
    return _STRUCTURAL_OPS[operation](*chunks, *extra)


def _map_to_store(operation: str, sources: tuple, path, executor=None,
                  extra: tuple = (), prefetch=None) -> CompressedStore:
    """Apply an in-memory chunk operation chunk-by-chunk into a new store.

    The result store mirrors the source chunking; only one input chunk (pair)
    and its result chunk are alive at a time (with an ``executor``, at most
    the bounded ``imap_jobs`` window of results).  Writing serializes each
    result chunk, which rounds its per-block maxima to the working float
    format — so the output store equals ``deserialize(serialize(op(assembled)))``
    bit for bit (indices are bit-identical outright; maxima after that one
    rounding, the same rounding any persisted in-memory result undergoes).
    Returns the store reopened for reading.

    With an ``executor`` and store-only sources, per-chunk transforms fan out
    through the executor's ordered bounded-window ``imap_jobs`` — workers
    decode and transform concurrently, and the writer appends strictly in
    chunk order, so the output is bit-identical to the serial path.

    On the serial path, ``prefetch`` (default auto) pipelines the input
    store's record reads ahead of the transform-and-append loop, so the
    writer never waits on the disk between chunks; ``prefetch=0`` restores
    the strict serial loop (``docs/performance.md``).
    """
    transform = _STRUCTURAL_OPS[operation]
    if executor is not None and sources and all(
        isinstance(source, STORE_TYPES) for source in sources
    ):
        for source in sources:
            require_pyblaz(source)
        check_stores(sources)
        paths = tuple(str(source.path) for source in sources)
        jobs = [(operation, paths, index, extra)
                for index in range(sources[0].n_chunks)]
        results = executor.imap_jobs(_structural_chunk_job, jobs)
        first = next(iter(results))
        with CompressedStoreWriter(path, first.settings) as writer:
            writer.append(first)
            first = None
            for chunk in results:
                writer.append(chunk)
        return CompressedStore(path)

    iterator = aligned_chunks(sources, prefetch=prefetch)
    try:
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot operate on an empty chunk stream") from None
        result = transform(*first, *extra)
        first = None
        with CompressedStoreWriter(path, result.settings) as writer:
            writer.append(result)
            result = None
            for chunks in iterator:
                writer.append(transform(*chunks, *extra))
                chunks = None
    finally:
        iterator.close()
    return CompressedStore(path)


def negate(source, path, *, executor=None, prefetch=None) -> CompressedStore:
    """Write the negated array to ``path`` chunk-by-chunk (Algorithm 1; exact).

    Bit-identical to :func:`repro.core.ops.negate` of the assembled array —
    negation touches only indices, so no rebinning occurs.
    """
    return _map_to_store("negate", (source,), path, executor, prefetch=prefetch)


def scale(source, factor: float, path, *, executor=None,
          prefetch=None) -> CompressedStore:
    """Write ``factor · source`` to ``path`` chunk-by-chunk (Algorithm 5; exact).

    Scaling touches only the per-block maxima (and index signs); the result
    equals the serialized in-memory :func:`repro.core.ops.multiply_scalar` of
    the assembled array bit for bit (persisting rounds the scaled maxima to
    the working float format).  Raises ``ValueError`` for non-finite factors
    before any chunk is written.
    """
    factor = float(factor)
    if not math.isfinite(factor):
        raise ValueError("scalar must be finite")
    return _map_to_store("scale", (source,), path, executor, extra=(factor,),
                         prefetch=prefetch)


def add(a, b, path, *, executor=None, prefetch=None) -> CompressedStore:
    """Write the element-wise sum to ``path`` chunk-by-chunk (Algorithm 2).

    Error contract: rebinning only (half a bin width of the new per-block
    maxima), exactly as in-memory — rebinning is per-block, so the result
    equals the serialized in-memory :func:`repro.core.ops.add` of the
    assembled arrays bit for bit.
    """
    return _map_to_store("add", (a, b), path, executor, prefetch=prefetch)


def subtract(a, b, path, *, executor=None, prefetch=None) -> CompressedStore:
    """Write the element-wise difference ``a − b`` to ``path`` chunk-by-chunk.

    Same rebinning-only contract (and serialized bit-identity to
    :func:`repro.core.ops.subtract`) as :func:`add`.
    """
    return _map_to_store("subtract", (a, b), path, executor, prefetch=prefetch)
