"""Out-of-core compressed-domain operations over chunked stores.

This module closes the gap between the in-memory operation set of
:mod:`repro.core.ops` (which needs a fully materialised
:class:`repro.core.CompressedArray`) and the chunk-table
:class:`repro.streaming.CompressedStore`: every Table I scalar reduction and
the linear structural operations run here **chunk at a time**, so a store of
any size is reduced — or rewritten — in chunk-sized memory.

Scalar reductions (:func:`mean`, :func:`variance`, :func:`standard_deviation`,
:func:`covariance`, :func:`dot`, :func:`l2_norm`, :func:`euclidean_distance`,
:func:`cosine_similarity`) evaluate the partial-fold forms from
:mod:`repro.core.ops.folds`: each chunk contributes a per-block partial state,
states merge associatively, and one finalize produces the scalar.  Because the
folds are chunking-invariant to the last bit, a store-level reduction equals
its in-memory counterpart on the assembled array **bit for bit** whenever the
chunks assemble bit-identically (stores written under the ``reference`` kernel
backend); under the fast backends the two agree within the backend's documented
``accumulation_tolerance`` (see ``docs/ops.md``).

Structural operations (:func:`add`, :func:`subtract`, :func:`scale`,
:func:`negate`) map :mod:`repro.core.ops` over the chunks and append each
result to a new store immediately — lazy, bounded memory, and bit-identical to
running the in-memory operation on the assembled array *and serializing the
result* (rebinning is per-block; persisting rounds the per-block maxima to the
working float format, exactly as ``serialize`` does for the in-memory result).

Memory contract: the serial path holds at most **one chunk (pair) of
coefficients** at a time; partial states are one float64 per block per tracked
quantity.  With an ``executor`` (any :class:`repro.parallel.BlockExecutor`),
per-chunk partials fan out through :meth:`BlockExecutor.map_jobs
<repro.parallel.BlockExecutor.map_jobs>` — up to ``n_workers`` chunks decode
concurrently (each worker reopens the store, so process pools work too), and
the combine order is fixed by chunk order, keeping results deterministic.

Sources may be a :class:`CompressedStore` (of a pyblaz-family codec) or any
iterable of chunk :class:`CompressedArray` objects.  Two-pass reductions
(:func:`variance`, :func:`covariance`) and the structural operations must be
able to re-iterate their source, so they reject single-shot generators.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from ..core import ops as core_ops
from ..core.compressed import CompressedArray
from ..core.exceptions import CodecError
from ..core.ops import folds
from .store import CompressedStore, CompressedStoreWriter

__all__ = [
    "mean",
    "variance",
    "standard_deviation",
    "covariance",
    "dot",
    "l2_norm",
    "euclidean_distance",
    "cosine_similarity",
    "add",
    "subtract",
    "scale",
    "negate",
]

#: Fold partials addressable by name, so executor jobs stay picklable.
_PARTIALS = {
    "product": folds.product_partial,
    "square": folds.square_partial,
    "diff_square": folds.difference_square_partial,
    "dc": folds.dc_partial,
    "similarity": folds.similarity_partial,
    "centered_product": folds.centered_product_partial,
    "centered_square": folds.centered_square_partial,
}


# ---------------------------------------------------------------------- sources
def _require_pyblaz(store: CompressedStore) -> None:
    """Reject stores whose chunks are not pyblaz-family compressed arrays."""
    if store.settings is None:
        raise CodecError(
            f"compressed-domain ops fold pyblaz chunks via core.ops; this "
            f"store holds {store.codec_name!r} streams"
        )


def _chunks(source) -> Iterator[CompressedArray]:
    """Iterate a source's chunks: a store's records or an iterable's items."""
    if isinstance(source, CompressedStore):
        _require_pyblaz(source)
        return source.iter_chunks()
    return iter(source)


def _chunk_tuples(sources: tuple) -> Iterator[tuple]:
    """Yield aligned chunk tuples across sources, enforcing identical chunking."""
    iterators = [_chunks(source) for source in sources]
    sentinel = object()
    while True:
        chunks = tuple(next(iterator, sentinel) for iterator in iterators)
        if all(chunk is sentinel for chunk in chunks):
            return
        if any(chunk is sentinel for chunk in chunks):
            raise ValueError(
                "binary compressed-domain ops require identically chunked "
                "sources (one ran out of chunks early)"
            )
        shapes = {tuple(chunk.shape) for chunk in chunks}
        if len(shapes) > 1:
            raise ValueError(
                f"chunk shapes differ ({' vs '.join(map(str, shapes))}); "
                "recompress with matching slab_rows"
            )
        yield chunks
        chunks = None  # release the previous chunk pair before decoding the next


def _check_stores(sources: tuple) -> None:
    """Cheap upfront geometry checks when every source is an open store."""
    stores = [source for source in sources if isinstance(source, CompressedStore)]
    if len(stores) < 2:
        return
    first = stores[0]
    for other in stores[1:]:
        if other.shape != first.shape:
            raise ValueError(
                f"stores have different shapes ({first.shape} vs {other.shape})"
            )
        if other.chunk_rows != first.chunk_rows:
            raise ValueError(
                f"stores are chunked differently (chunk rows {first.chunk_rows} "
                f"vs {other.chunk_rows}); recompress with matching slab_rows"
            )


def _require_reiterable(sources: tuple, operation: str) -> None:
    """Reject single-shot generators for operations that fold twice."""
    for source in sources:
        if not isinstance(source, CompressedStore) and iter(source) is source:
            raise ValueError(
                f"{operation} folds over its source twice (mean pass + centered "
                "pass); pass a CompressedStore or a re-iterable sequence of "
                "chunks, not a single-shot generator"
            )


# ---------------------------------------------------------------------- engine
def _store_partial_job(partial_name: str, paths: tuple, index: int, extra: tuple):
    """Picklable per-chunk work unit for the executor fan-out.

    Reopens each store by path (workers may live in other processes), decodes
    only chunk ``index``, and returns its fold partial — a per-block state,
    orders of magnitude smaller than the chunk itself.
    """
    chunks = []
    for path in paths:
        with CompressedStore(path) as store:
            chunks.append(store.read_chunk(index))
    return _PARTIALS[partial_name](*chunks, *extra)


def _run_fold(partial_name: str, sources: tuple, executor, extra: tuple = ()):
    """Fold one partial over the sources' chunks; return the combined state.

    Serial (``executor=None``): chunks stream through one (pair) at a time, so
    peak memory is a single chunk's coefficients.  With an executor and
    store-only sources, one job per chunk fans out via ``map_jobs`` and the
    partial states combine in chunk order (deterministic, and bit-identical to
    the serial path because :func:`repro.core.ops.folds.combine` is exact).
    """
    _check_stores(sources)
    partial = _PARTIALS[partial_name]
    if executor is not None and all(
        isinstance(source, CompressedStore) for source in sources
    ):
        for source in sources:
            _require_pyblaz(source)
        paths = tuple(str(source.path) for source in sources)
        jobs = [
            (partial_name, paths, index, extra)
            for index in range(sources[0].n_chunks)
        ]
        state = folds.combine_all(executor.map_jobs(_store_partial_job, jobs))
    else:

        def pieces():
            """Yield per-chunk partial states, releasing each chunk promptly."""
            for chunks in _chunk_tuples(sources):
                piece = partial(*chunks, *extra)
                chunks = None  # drop the coefficients before the next decode
                yield piece

        state = folds.combine_all(pieces())
    if state is None:
        raise ValueError("cannot reduce an empty chunk stream")
    return state


# ---------------------------------------------------------------------- scalar ops
def mean(source, *, padded: bool = True, executor=None) -> float:
    """Store-level mean (Algorithm 7), folded chunk-by-chunk.

    Matches :func:`repro.core.ops.mean` of the assembled array bit for bit
    (chunking-invariant fold; no error beyond compression).  ``padded`` selects
    the zero-padded (paper) or original-element-count domain.
    """
    return folds.finalize_mean(_run_fold("dc", (source,), executor), padded=padded)


def l2_norm(source, *, executor=None) -> float:
    """Store-level L2 norm (Algorithm 10), folded chunk-by-chunk.

    Matches :func:`repro.core.ops.l2_norm` of the assembled array bit for bit;
    one square root at the end, so no per-chunk rounding is reintroduced.
    """
    return folds.finalize_l2_norm(_run_fold("square", (source,), executor))


def dot(a, b, *, executor=None) -> float:
    """Store-level dot product (Algorithm 6) of two identically chunked sources.

    Matches :func:`repro.core.ops.dot` of the assembled arrays bit for bit.
    The sources must agree chunk-by-chunk in shape and settings; two stores
    written with the same ``slab_rows`` satisfy this.
    """
    return folds.finalize_dot(_run_fold("product", (a, b), executor))


def euclidean_distance(a, b, *, executor=None) -> float:
    """Store-level Euclidean distance ``‖a − b‖₂`` without writing a difference.

    Matches :func:`repro.core.ops.euclidean_distance` of the assembled arrays
    bit for bit — the difference is taken in coefficient space per chunk, so no
    rebinning error and no intermediate store.
    """
    return folds.finalize_euclidean_distance(
        _run_fold("diff_square", (a, b), executor)
    )


def cosine_similarity(a, b, *, executor=None) -> float:
    """Store-level cosine similarity (Algorithm 11) in one pass over the chunks.

    Matches :func:`repro.core.ops.cosine_similarity` of the assembled arrays
    bit for bit; raises ``ZeroDivisionError`` for zero-norm operands.
    """
    return folds.finalize_cosine_similarity(
        _run_fold("similarity", (a, b), executor)
    )


def variance(source, *, executor=None) -> float:
    """Store-level variance (Algorithm 9), two exact passes over the chunks.

    Pass 1 folds the global DC mean, pass 2 folds the squared centered
    coefficients — the same two passes :func:`repro.core.ops.variance` runs
    in-memory, so the results match bit for bit.  The source must be
    re-iterable (a store, or a sequence of chunks).
    """
    _require_reiterable((source,), "variance")
    mean_dc = folds.dc_grand_mean(_run_fold("dc", (source,), executor))
    return folds.finalize_variance(
        _run_fold("centered_square", (source,), executor, extra=(mean_dc,))
    )


def standard_deviation(source, *, executor=None) -> float:
    """Store-level standard deviation: the square root of :func:`variance`."""
    return float(math.sqrt(variance(source, executor=executor)))


def covariance(a, b, *, executor=None) -> float:
    """Store-level covariance (Algorithm 8), two exact passes over the chunks.

    Pass 1 folds each source's global DC mean, pass 2 folds the centered
    products — matching :func:`repro.core.ops.covariance` of the assembled
    arrays bit for bit.  Sources must be identically chunked and re-iterable.
    """
    _require_reiterable((a, b), "covariance")
    _check_stores((a, b))
    mean_a = folds.dc_grand_mean(_run_fold("dc", (a,), executor))
    mean_b = folds.dc_grand_mean(_run_fold("dc", (b,), executor))
    return folds.finalize_covariance(
        _run_fold("centered_product", (a, b), executor, extra=(mean_a, mean_b))
    )


# ---------------------------------------------------------------------- structural ops
def _map_to_store(operation, sources: tuple, path) -> CompressedStore:
    """Apply an in-memory chunk operation chunk-by-chunk into a new store.

    The result store mirrors the source chunking; only one input chunk (pair)
    and its result chunk are alive at a time.  Writing serializes each result
    chunk, which rounds its per-block maxima to the working float format — so
    the output store equals ``deserialize(serialize(op(assembled)))`` bit for
    bit (indices are bit-identical outright; maxima after that one rounding,
    the same rounding any persisted in-memory result undergoes).  Returns the
    store reopened for reading.
    """
    iterator = _chunk_tuples(sources)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("cannot operate on an empty chunk stream") from None
    result = operation(*first)
    first = None
    with CompressedStoreWriter(path, result.settings) as writer:
        writer.append(result)
        result = None
        for chunks in iterator:
            writer.append(operation(*chunks))
            chunks = None
    return CompressedStore(path)


def negate(source, path) -> CompressedStore:
    """Write the negated array to ``path`` chunk-by-chunk (Algorithm 1; exact).

    Bit-identical to :func:`repro.core.ops.negate` of the assembled array —
    negation touches only indices, so no rebinning occurs.
    """
    return _map_to_store(core_ops.negate, (source,), path)


def scale(source, factor: float, path) -> CompressedStore:
    """Write ``factor · source`` to ``path`` chunk-by-chunk (Algorithm 5; exact).

    Scaling touches only the per-block maxima (and index signs); the result
    equals the serialized in-memory :func:`repro.core.ops.multiply_scalar` of
    the assembled array bit for bit (persisting rounds the scaled maxima to
    the working float format).
    """
    factor = float(factor)

    def _scale_chunk(chunk: CompressedArray) -> CompressedArray:
        """Scale one chunk (closure pinning the factor)."""
        return core_ops.multiply_scalar(chunk, factor)

    return _map_to_store(_scale_chunk, (source,), path)


def add(a, b, path) -> CompressedStore:
    """Write the element-wise sum to ``path`` chunk-by-chunk (Algorithm 2).

    Error contract: rebinning only (half a bin width of the new per-block
    maxima), exactly as in-memory — rebinning is per-block, so the result
    equals the serialized in-memory :func:`repro.core.ops.add` of the
    assembled arrays bit for bit.
    """
    return _map_to_store(core_ops.add, (a, b), path)


def subtract(a, b, path) -> CompressedStore:
    """Write the element-wise difference ``a − b`` to ``path`` chunk-by-chunk.

    Same rebinning-only contract (and serialized bit-identity to
    :func:`repro.core.ops.subtract`) as :func:`add`.
    """
    return _map_to_store(core_ops.subtract, (a, b), path)
