"""Pipelined chunk readahead: coalesced record fetches ahead of the consumer.

Every sweep in the repo — fused plan passes, streaming structural ops, sharded
incremental folds, coalesced serving batches — walks chunks in a strict
``pread → decode → fold`` loop, so the CPU idles during I/O and the disk idles
during decode/fold.  :class:`ChunkPrefetcher` overlaps the two: a small thread
pool fetches **payload spans** (adjacent chunk records coalesced into one
``os.pread`` and split in memory) a bounded window ahead of the consumer,
while the consumer thread decodes and yields chunks **in deterministic index
order** — so every fold result stays bit-identical to the serial path.

Division of labour, chosen by measurement rather than symmetry:

* **Workers fetch, the consumer decodes.**  Record reads release the GIL
  (``os.pread``, CRC-32), so fetching in threads overlaps genuinely with
  decode/fold work.  Chunk *decoding* is dominated by GIL-held Python-object
  work (stream parsing, settings reconstruction), so decoding in workers just
  contends with the consumer — measured slower than serial.  Keeping decode on
  the consumer thread also preserves the strict single-decode discipline the
  engine's memory contract relies on.
* **Spans, not single chunks.**  Submitting one future per chunk costs more
  handoff than a small read saves; adjacent records within
  :data:`DEFAULT_SPAN_BYTES` (capped at :data:`DEFAULT_SPAN_CHUNKS`) merge
  into one positional read and one future.

Fault tolerance matches the synchronous path exactly: span fetches run through
:meth:`repro.streaming.CompressedStore.read_payload_span`, where the
fault-injection hooks fire per chunk, version-3 CRCs are verified per chunk,
and any failure falls back to the per-chunk
:meth:`~repro.streaming.CompressedStore.read_payload` seam with its full retry
policy.  Exceptions surface at the failing chunk's position in the yielded
order, exactly as a serial reader would see them.

Accounting: payload fetches count into ``chunks_prefetched`` as the worker
completes them; ``chunks_read`` still counts only chunks actually *consumed*
(yielded or cache-served), so an aborted pipeline leaves
``chunks_prefetched > chunks_read`` instead of silently inflating the read
counters that pass-count tests assert on.
"""

from __future__ import annotations

import weakref
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ChunkPrefetcher",
    "coalesce_spans",
    "resolve_depth",
    "warm_store_cache",
    "DEFAULT_PREFETCH_WORKERS",
    "DEFAULT_SPAN_BYTES",
    "DEFAULT_SPAN_CHUNKS",
]

#: Fetch threads per prefetcher.  Two is enough to hide one read behind one
#: decode on the measured workloads; more threads add GIL handoffs, not speed.
DEFAULT_PREFETCH_WORKERS = 2

#: Coalescing budget: adjacent chunk records are merged into one positional
#: read while their combined size stays under this many bytes.
DEFAULT_SPAN_BYTES = 1 << 20

#: Cap on records per coalesced span, so tiny-chunk stores still pipeline at a
#: useful granularity instead of fetching everything in one giant span.
DEFAULT_SPAN_CHUNKS = 8

#: Auto mode leaves stores with fewer chunks than this on the serial path —
#: the pool spin-up would cost more than the overlap saves.
_MIN_AUTO_CHUNKS = 4


def resolve_depth(prefetch: int | None, *, n_chunks: int | None = None,
                  workers: int = DEFAULT_PREFETCH_WORKERS) -> int:
    """Resolve a user-facing ``prefetch`` setting into an in-flight span depth.

    ``None`` selects auto: ~2× the fetch-worker count, except for stores of
    fewer than a handful of chunks (when ``n_chunks`` is known) where the
    serial path wins.  ``0`` disables prefetching outright; a positive integer
    is used verbatim as the bounded window of span fetches in flight.
    Negative values raise ``ValueError``.
    """
    if prefetch is None:
        if n_chunks is not None and n_chunks < _MIN_AUTO_CHUNKS:
            return 0
        return 2 * max(1, int(workers))
    depth = int(prefetch)
    if depth < 0:
        raise ValueError(f"prefetch depth must be >= 0, got {prefetch!r}")
    return depth


def coalesce_spans(extents: Sequence[tuple[int, int, int]], *,
                   max_bytes: int = DEFAULT_SPAN_BYTES,
                   max_chunks: int = DEFAULT_SPAN_CHUNKS,
                   ) -> list[list[tuple[int, int, int]]]:
    """Group ``(index, offset, n_bytes)`` records into contiguous read spans.

    A span extends while the next record starts exactly where the previous one
    ended (chunk records are written back to back, so any gap means the caller
    skipped a chunk), the span stays within ``max_bytes``, and it holds at
    most ``max_chunks`` records.  Every record lands in exactly one span, in
    input order; a single record larger than ``max_bytes`` gets its own span.
    """
    spans: list[list[tuple[int, int, int]]] = []
    current: list[tuple[int, int, int]] = []
    current_bytes = 0
    for record in extents:
        _, offset, n_bytes = record
        if current:
            last_index, last_offset, last_bytes = current[-1]
            contiguous = offset == last_offset + last_bytes
            fits = (current_bytes + n_bytes <= max_bytes
                    and len(current) < max_chunks)
            if not (contiguous and fits):
                spans.append(current)
                current = []
                current_bytes = 0
        current.append(record)
        current_bytes += n_bytes
    if current:
        spans.append(current)
    return spans


def _segment_tasks(store, indices: Iterable[int]) -> Iterator[tuple[object, list[int]]]:
    """Split global chunk ``indices`` into per-underlying-store runs.

    Plain :class:`~repro.streaming.CompressedStore` sources yield one segment.
    Sharded stores yield one segment per run of consecutive indices living in
    the same shard — shards are opened lazily, only when their segment is
    consumed, preserving the sharded store's lazy-open contract.
    """
    locate = getattr(store, "locate", None)
    if locate is None:
        run = list(indices)
        if run:
            yield store, run
        return
    run_shard: int | None = None
    run: list[int] = []
    for index in indices:
        shard_index, local = locate(index)
        if run and shard_index != run_shard:
            yield store.shard(run_shard), run
            run = []
        run_shard = shard_index
        run.append(local)
    if run:
        yield store.shard(run_shard), run


def _shutdown_pool(pool: ThreadPoolExecutor) -> None:
    """Finalizer body: stop the fetch pool, dropping any queued spans."""
    pool.shutdown(wait=True, cancel_futures=True)


def _absorb_exception(future: Future) -> None:
    """Retrieve an abandoned future's exception so it is never logged as lost.

    Consumed futures re-raise through ``result()`` regardless; this only
    silences the interpreter's "exception was never retrieved" warning for
    spans dropped by an aborted pipeline.
    """
    if not future.cancelled():
        future.exception()


class ChunkPrefetcher:
    """Bounded-window pipelined reader over a store's chunks.

    Iterating a prefetcher yields the same decoded chunk objects, in the same
    order, as ``store.read_chunk(i) for i in indices`` — but record fetches
    run up to ``depth`` coalesced spans ahead on a small thread pool, so the
    consumer's decode/fold work overlaps the I/O.

    Parameters
    ----------
    store:
        An open :class:`~repro.streaming.CompressedStore` or
        :class:`~repro.streaming.ShardedStore`.
    indices:
        Global chunk indices to yield, in order (default: every chunk).
    depth:
        Maximum coalesced span fetches in flight (``None`` → auto, ~2× the
        worker count).  ``0`` degenerates to the serial read path.
    workers:
        Fetch threads (default :data:`DEFAULT_PREFETCH_WORKERS`).
    span_bytes, span_chunks:
        Coalescing budget per span (see :func:`coalesce_spans`).

    A prefetcher is **single-use**: iterate it once, then :meth:`close` it
    (closing is automatic when the iteration ends, is abandoned, or the
    prefetcher is garbage-collected — a ``weakref.finalize`` guarantees the
    pool's threads are joined, so aborted pipelines leak nothing).
    """

    def __init__(self, store, indices: Iterable[int] | None = None, *,
                 depth: int | None = None,
                 workers: int = DEFAULT_PREFETCH_WORKERS,
                 span_bytes: int = DEFAULT_SPAN_BYTES,
                 span_chunks: int = DEFAULT_SPAN_CHUNKS):
        self.store = store
        self.indices = (list(range(store.n_chunks)) if indices is None
                        else [int(index) for index in indices])
        self.workers = max(1, int(workers))
        self.depth = resolve_depth(depth, workers=self.workers)
        self.span_bytes = int(span_bytes)
        self.span_chunks = int(span_chunks)
        self._pool: ThreadPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------ pipeline
    def _spans(self) -> Iterator[tuple[object, list[int]]]:
        """Yield ``(underlying store, local indices)`` fetch units lazily."""
        for real, locals_ in _segment_tasks(self.store, self.indices):
            extents = [(local, *real._record_extent(local)[:2])
                       for local in locals_]
            for span in coalesce_spans(extents, max_bytes=self.span_bytes,
                                       max_chunks=self.span_chunks):
                yield real, [index for index, _, _ in span]

    @staticmethod
    def _fetch_span(real, locals_: list[int]) -> list[tuple[str, object]]:
        """Worker body: resolve one span's chunks from cache or disk.

        Returns one ``("chunk", decoded)`` or ``("payload", bytes)`` item per
        local index.  The single cache lookup per chunk here replaces (not
        duplicates) the lookup ``read_chunk`` would have done, so cache
        hit/miss counters stay identical to the serial path.  Fetched payloads
        count into ``chunks_prefetched`` as soon as the span completes.
        """
        cache = real.chunk_cache
        path = str(real.path)
        items: list[tuple[str, object] | None] = []
        misses: list[int] = []
        for local in locals_:
            chunk = cache.get((path, local)) if cache is not None else None
            if chunk is not None:
                items.append(("chunk", chunk))
            else:
                items.append(None)
                misses.append(local)
        if misses:
            payloads = real.read_payload_span(misses)
            real._note_prefetched(len(misses))
            for position, local in enumerate(locals_):
                if items[position] is None:
                    items[position] = ("payload", payloads[local])
        return items

    def _consume(self, real, local: int, item: tuple[str, object]):
        """Consumer body: decode one fetched item and count the logical read."""
        kind, value = item
        if kind == "payload":
            chunk = real._chunk_from_payload(local, value)
            cache = real.chunk_cache
            if cache is not None:
                cache.put((str(real.path), local), chunk)
        else:
            chunk = value
        real._note_read()
        return chunk

    def __iter__(self) -> Iterator:
        """Yield decoded chunks in request order, fetching ahead in spans."""
        if self.depth == 0 or len(self.indices) <= 1:
            for index in self.indices:
                yield self.store.read_chunk(index)
            return
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-prefetch"
            )
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        spans = self._spans()
        window: deque[tuple[object, list[int], Future]] = deque()

        def submit_next() -> bool:
            """Move one span from the plan into the in-flight window."""
            try:
                real, locals_ = next(spans)
            except StopIteration:
                return False
            future = self._pool.submit(self._fetch_span, real, locals_)
            future.add_done_callback(_absorb_exception)
            window.append((real, locals_, future))
            return True

        try:
            for _ in range(self.depth):
                if not submit_next():
                    break
            while window:
                real, locals_, future = window.popleft()
                submit_next()  # keep the window full before blocking
                items = future.result()
                for local, item in zip(locals_, items):
                    yield self._consume(real, local, item)
        finally:
            self.close()

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop the fetch pool and join its threads (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "ChunkPrefetcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChunkPrefetcher(chunks={len(self.indices)}, "
                f"depth={self.depth}, workers={self.workers})")


def warm_store_cache(store, indices: Iterable[int] | None = None) -> int:
    """Decode ``store``'s uncached chunks into its attached chunk cache.

    The serving scheduler's warm path: span-reads every chunk of ``indices``
    (default: all) that is not already cached, decodes it, and inserts it with
    ``prefetched=True`` so the cache's prefetch effectiveness counters track
    whether warmed entries were later used or evicted unused.  Warming counts
    into ``chunks_prefetched`` but **not** ``chunks_read`` — no logical read
    happened yet.  Returns the number of chunks warmed; a store without a
    cache warms nothing.
    """
    if store.chunk_cache is None:
        return 0
    chunk_indices = range(store.n_chunks) if indices is None else indices
    warmed = 0
    for real, locals_ in _segment_tasks(store, chunk_indices):
        cache = real.chunk_cache
        if cache is None:  # pragma: no cover - shards share the parent cache
            continue
        path = str(real.path)
        misses = [local for local in locals_ if (path, local) not in cache]
        if not misses:
            continue
        payloads = real.read_payload_span(misses)
        real._note_prefetched(len(misses))
        for local in misses:
            chunk = real._chunk_from_payload(local, payloads[local])
            cache.put((path, local), chunk, prefetched=True)
            warmed += 1
    return warmed
