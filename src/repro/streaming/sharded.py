"""Sharded append-mode stores with persisted incremental fold partials.

A *sharded store* is a directory holding a versioned JSON ``manifest.json``
over N immutable :class:`~repro.streaming.store.CompressedStore` shard files::

    my_data/
        manifest.json          per-shard geometry, sizes, CRC-32s, revision
        shard-000000.pblzc     ordinary chunked store (rows 0..r0)
        partials-000000.npz    persisted fold partials for shard 0
        shard-000001.pblzc     appended later (rows r0..r0+r1)
        partials-000001.npz

:class:`ShardedStore` presents the same geometry / ``read_chunk`` /
``load_region`` / ``chunks_read`` surface as a single store — the global chunk
index is the concatenation of every shard's chunks in shard order — so the
source plumbing (:mod:`repro.streaming.sources`), the plan engine and the
serving catalog accept one interchangeably with a :class:`CompressedStore`
(open either via :func:`open_store`).  Shards open lazily: reading a region
touches only the shards whose rows intersect it.

**Append** (:func:`append_shard`) never rewrites published bytes: each append
compresses the new rows into a *new* shard file, computes that shard's fold
partials, and atomically republishes the manifest with a bumped ``revision``.
Recorded per-shard CRCs therefore stay valid forever, and a reader holding the
previous manifest simply keeps its (consistent) older view.

**Incremental fold maintenance.**  For pyblaz-family shards the append path
persists, per shard, the concatenated per-chunk per-block partial vectors of
the uncentered folds (``dc`` and ``square`` — ``square`` also serves
``product(x, x)``, whose per-block arithmetic is identical) plus the counts a
:class:`~repro.core.ops.folds.FoldState` carries.  :meth:`ShardedStore.fold_state`
reassembles the accumulated state without decoding any chunk, and the plan
engine serves ``mean`` / ``l2_norm`` / ``dot(x, x)`` (and pass 1 of
``variance``) straight from it — so a query over a growing store costs O(new
chunks) at append time and O(shards) at query time.  The result is **bit
identical** to a cold sweep: ``math.fsum`` in :func:`repro.core.ops.folds.total`
visits the same float64 per-block values in the same chunk order whether they
come from a live sweep's per-chunk vectors or from the persisted per-shard
concatenations of those same vectors.

**Staleness detection** is deliberately cheap: a shard entry whose partials
were never written (``append_shard(..., update_partials=False)``), whose
sidecar file is missing, or whose shard file size no longer matches the
manifest makes :meth:`ShardedStore.fold_state` return ``None``, and callers
fall back to a full sweep.  Deep integrity (per-chunk checksums) remains
``repro verify-store``'s job, which recurses into shards.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..codecs.base import Codec
from ..codecs.registry import get_codec
from ..codecs.serialization import DECODE_ERRORS
from ..core.compressed import CompressedArray
from ..core.exceptions import CodecError
from ..core.ops import folds
from ..core.settings import CompressionSettings
from ..reliability.retry import DEFAULT_READ_RETRY, RetryPolicy
from .chunked import stream_compress
from .store import CompressedStore

__all__ = [
    "ShardedStore",
    "init_sharded_store",
    "append_shard",
    "refresh_partials",
    "open_store",
    "is_sharded_store",
    "load_manifest",
    "save_manifest",
    "shard_filename",
    "partials_filename",
    "MANIFEST_NAME",
    "PARTIAL_FOLDS",
]

#: Name of the manifest file inside a sharded-store directory.
MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-sharded-store"
_MANIFEST_VERSION = 1
#: Folds whose per-shard partial vectors are persisted at append time.  The
#: ``square`` vectors double as ``product(x, x)`` (bitwise-identical per-block
#: arithmetic), so dot-with-self and cosine-with-self are incremental too.
PARTIAL_FOLDS = ("dc", "square")


# ------------------------------------------------------------------ layout
def shard_filename(index: int) -> str:
    """File name of shard ``index`` inside the store directory."""
    return f"shard-{index:06d}.pblzc"


def partials_filename(index: int) -> str:
    """File name of shard ``index``'s fold-partial sidecar."""
    return f"partials-{index:06d}.npz"


def is_sharded_store(path) -> bool:
    """True when ``path`` is a directory holding a sharded-store manifest."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def load_manifest(path) -> dict:
    """Read and validate the manifest of the sharded store directory ``path``.

    Raises :class:`CodecError` for a missing/garbled manifest, a foreign
    ``format`` marker, or a manifest written by a newer layout version than
    this reader understands.
    """
    path = Path(path)
    try:
        with open(path / MANIFEST_NAME, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CodecError(
            f"cannot read sharded-store manifest at {path}: {exc}"
        ) from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise CodecError(
            f"{path} is not a sharded store (manifest format "
            f"{manifest.get('format')!r})"
        )
    version = int(manifest.get("version", 0))
    if version < 1 or version > _MANIFEST_VERSION:
        raise CodecError(
            f"sharded-store manifest at {path} is layout version {version}; "
            f"this reader supports versions 1..{_MANIFEST_VERSION}"
        )
    return manifest


def save_manifest(path, manifest: dict) -> None:
    """Atomically publish ``manifest`` as ``path``'s manifest file.

    The JSON lands in a temp sibling first and is renamed over the final name,
    so a crash mid-write never leaves a torn manifest — readers see either the
    previous revision or the new one, both internally consistent.
    """
    path = Path(path)
    temp = path / (MANIFEST_NAME + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    temp.replace(path / MANIFEST_NAME)


def _file_crc32(path) -> int:
    """CRC-32 of a whole file, streamed in 1 MiB blocks."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return crc


# ------------------------------------------------------------------ partials
def _compute_partials(store: CompressedStore) -> "dict[str, np.ndarray] | None":
    """One shard's persisted fold state: concatenated per-chunk vectors + counts.

    Iterates the shard's chunks once, folding each through the uncentered
    partials (:data:`PARTIAL_FOLDS`).  Per-chunk per-block vectors are
    concatenated *in chunk order*, so summing them later with ``math.fsum``
    visits exactly the float64 values a live sweep would, in the same order —
    the bit-identity invariant.  Returns ``None`` for non-pyblaz shards (no
    fold algebra applies); omits ``dc`` when the first coefficient was pruned.
    """
    settings = store.settings
    if settings is None:
        return None
    dc_parts: "list[np.ndarray] | None" = (
        [] if settings.first_coefficient_kept else None
    )
    square_parts: list[np.ndarray] = []
    n_blocks = n_elements = n_padded = 0
    for chunk in store.iter_chunks():
        if dc_parts is not None:
            dc_parts.append(folds.dc_partial(chunk).sums["dc"][0])
        state = folds.square_partial(chunk)
        square_parts.append(state.sums["square"][0])
        n_blocks += state.n_blocks
        n_elements += state.n_elements
        n_padded += state.n_padded_elements
    payload = {
        "square": np.concatenate(square_parts),
        "n_blocks": np.int64(n_blocks),
        "n_elements": np.int64(n_elements),
        "n_padded_elements": np.int64(n_padded),
        "dc_scale": np.float64(settings.dc_scale),
    }
    if dc_parts is not None:
        payload["dc"] = np.concatenate(dc_parts)
    return payload


def _write_partials(directory: Path, index: int, store: CompressedStore) -> bool:
    """Persist shard ``index``'s fold partials as an ``.npz`` sidecar.

    Written to a temp sibling and renamed into place (same atomic-publish
    discipline as the stores and the manifest).  Returns False — and writes
    nothing — for shards without a fold algebra (non-pyblaz codecs).
    """
    payload = _compute_partials(store)
    if payload is None:
        return False
    target = directory / partials_filename(index)
    temp = directory / (partials_filename(index) + ".tmp")
    with open(temp, "wb") as handle:
        np.savez(handle, **payload)
    temp.replace(target)
    return True


# ------------------------------------------------------------------ init / append
def _resolve_codec(codec: "Codec | CompressionSettings | str") -> Codec:
    """Accept a codec instance, pyblaz settings, or a registry name."""
    if isinstance(codec, CompressionSettings):
        from ..codecs.pyblaz import PyBlazCodec

        return PyBlazCodec(settings=codec)
    if isinstance(codec, str):
        return get_codec(codec)
    if isinstance(codec, Codec):
        return codec
    raise CodecError(
        f"sharded stores need a Codec, CompressionSettings or codec name, "
        f"got {codec!r}"
    )


def init_sharded_store(
    path, array, codec: "Codec | CompressionSettings | str", *,
    slab_rows: int | None = None, update_partials: bool = True,
) -> "ShardedStore":
    """Create a sharded store at directory ``path`` with ``array`` as shard 0.

    The directory must not exist (or be empty); the array is compressed
    slab-by-slab via :func:`repro.streaming.stream_compress` into
    ``shard-000000.pblzc``, the shard's fold partials are persisted (unless
    ``update_partials=False``), and the manifest is published atomically.
    Returns the store opened for reading.
    """
    path = Path(path)
    codec = _resolve_codec(codec)
    if path.exists():
        if not path.is_dir() or any(path.iterdir()):
            raise CodecError(
                f"shard-init target {path} already exists and is not an "
                "empty directory"
            )
    else:
        path.mkdir(parents=True)
    manifest = {
        "format": _MANIFEST_FORMAT,
        "version": _MANIFEST_VERSION,
        "codec": codec.name,
        "shape": [],
        "revision": 0,
        "shards": [],
    }
    return _append(path, manifest, np.asarray(array), codec, slab_rows,
                   update_partials)


def _codec_for_append(path: Path, manifest: dict) -> Codec:
    """Rebuild the codec the existing shards were written with.

    Pyblaz-family parameters are self-describing (recovered from shard 0's
    settings); other codecs fall back to their registry defaults — pass an
    explicit ``codec`` to :func:`append_shard` to override.
    """
    name = manifest["codec"]
    if manifest["shards"]:
        with CompressedStore(path / manifest["shards"][0]["file"]) as first:
            settings = first.settings
        if settings is not None:
            return get_codec(name, settings=settings)
    return get_codec(name)


def append_shard(
    path, array, *, slab_rows: int | None = None,
    codec: "Codec | CompressionSettings | str | None" = None,
    update_partials: bool = True,
) -> "ShardedStore":
    """Append ``array``'s rows to the sharded store at ``path`` as a new shard.

    The new rows are compressed into the next ``shard-NNNNNN.pblzc`` file
    (existing shards are immutable — their recorded CRCs stay valid), the
    shard's fold partials are computed — O(new chunks), the whole point —
    and the manifest is republished with ``revision`` bumped by one.

    Constraints mirror :class:`CompressedStoreWriter.append`: the trailing
    shape must match the store's, and for block-aligned codecs (pyblaz) every
    *existing* chunk must cover whole block rows — only the globally last
    chunk may be ragged, so appending after a ragged shard is an error.
    ``update_partials=False`` skips the sidecar (the entry is marked stale and
    queries fall back to full sweeps until :func:`refresh_partials` runs).
    Returns the store reopened with the new manifest.
    """
    path = Path(path)
    manifest = load_manifest(path)
    array = np.asarray(array)
    resolved = (_codec_for_append(path, manifest) if codec is None
                else _resolve_codec(codec))
    if resolved.name != manifest["codec"]:
        raise CodecError(
            f"sharded store {path} holds {manifest['codec']!r} shards; cannot "
            f"append {resolved.name!r} data"
        )
    tail = tuple(int(extent) for extent in manifest["shape"][1:])
    if tuple(array.shape[1:]) != tail:
        raise CodecError(
            f"appended trailing shape {tuple(array.shape[1:])} does not match "
            f"the store's trailing shape {tail}"
        )
    multiple = max(1, resolved.chunk_row_multiple)
    if multiple > 1:
        for entry in manifest["shards"]:
            if any(rows % multiple for rows in entry["chunk_rows"]):
                raise CodecError(
                    "a chunk with a partial block row was already appended; "
                    "only the final chunk may have a row count that is not a "
                    f"multiple of the block extent {multiple}"
                )
    return _append(path, manifest, array, resolved, slab_rows, update_partials)


def _append(path: Path, manifest: dict, array: np.ndarray, codec: Codec,
            slab_rows: int | None, update_partials: bool) -> "ShardedStore":
    """Write one new shard + sidecar, then atomically republish the manifest."""
    index = len(manifest["shards"])
    shard_path = path / shard_filename(index)
    store = stream_compress(array, shard_path, codec, slab_rows=slab_rows)
    try:
        entry: dict = {
            "file": shard_filename(index),
            "rows": int(store.shape[0]),
            "chunk_rows": [int(rows) for rows in store.chunk_rows],
            "partials": bool(update_partials
                             and _write_partials(path, index, store)),
        }
    finally:
        store.close()
    entry["n_bytes"] = os.path.getsize(shard_path)
    entry["crc32"] = _file_crc32(shard_path)
    if not manifest["shards"]:
        manifest["shape"] = [entry["rows"]] + [int(e) for e in array.shape[1:]]
    else:
        manifest["shape"][0] = int(manifest["shape"][0]) + entry["rows"]
    manifest["shards"].append(entry)
    manifest["revision"] = int(manifest.get("revision", 0)) + 1
    save_manifest(path, manifest)
    return ShardedStore(path)


def refresh_partials(path) -> int:
    """(Re)compute every missing per-shard partial sidecar; return the count.

    The repair path for stores appended with ``update_partials=False`` (or
    whose sidecars were lost): each stale shard is swept once, its sidecar
    rewritten, and the manifest republished with the entries marked fresh.
    The revision is *not* bumped — the logical contents are unchanged.
    """
    path = Path(path)
    manifest = load_manifest(path)
    written = 0
    for index, entry in enumerate(manifest["shards"]):
        if entry.get("partials") and (path / partials_filename(index)).is_file():
            continue
        with CompressedStore(path / entry["file"]) as store:
            if _write_partials(path, index, store):
                entry["partials"] = True
                written += 1
    if written:
        save_manifest(path, manifest)
    return written


# ------------------------------------------------------------------ the store
class ShardedStore:
    """Read-only view of a sharded store directory, shaped like one big store.

    The global chunk index concatenates every shard's chunks in shard order;
    ``read_chunk``/``iter_chunks``/``load_region``/``load`` behave exactly as
    on a single :class:`CompressedStore` over the assembled rows.  Shards open
    lazily (and stay open, shared) the first time one of their chunks is
    touched, so manifest-only operations — geometry, planning, partial-served
    queries — never open a shard file beyond the settings probe.

    Parameters
    ----------
    path:
        Sharded store directory (must hold a ``manifest.json``).
    retry_policy:
        Per-shard record-read retry policy, as for :class:`CompressedStore`.
    use_partials:
        When False, :meth:`fold_state` always returns ``None`` — the engine
        then sweeps chunks exactly as for a single store.  The benchmark's
        full-sweep baseline uses this.

    Attributes
    ----------
    codec_name, shape, revision:
        Straight from the manifest (no shard file is opened).
    chunks_read, chunks_prefetched, preads, read_retries:
        Sums over the shards opened so far — the same instrumentation
        contract tests rely on for single stores.
    chunk_cache:
        Optional decoded-chunk cache, propagated to every shard; entries key
        by each *shard's* path, so invalidation stays per shard.
    """

    def __init__(self, path, *, retry_policy: RetryPolicy | None = DEFAULT_READ_RETRY,
                 use_partials: bool = True):
        self.path = Path(path)
        self.manifest = load_manifest(self.path)
        self.version = int(self.manifest["version"])
        self.codec_name = str(self.manifest["codec"])
        self.revision = int(self.manifest.get("revision", 0))
        self.use_partials = use_partials
        self.retry_policy = retry_policy
        self.shape = tuple(int(extent) for extent in self.manifest["shape"])
        self._entries = list(self.manifest["shards"])
        if not self._entries:
            raise CodecError(f"sharded store {self.path} has no shards")
        self._codec: Codec | None = None
        self._chunk_cache = None
        self._shards: dict[int, CompressedStore] = {}
        self._partials: dict[int, dict] = {}
        # global chunk index: (shard index, local chunk index, n_rows, row_start)
        self._index: list[tuple[int, int, int, int]] = []
        row_start = 0
        for shard_index, entry in enumerate(self._entries):
            for local, rows in enumerate(entry["chunk_rows"]):
                self._index.append((shard_index, local, int(rows), row_start))
                row_start += int(rows)
        if row_start != self.shape[0]:
            raise CodecError(
                f"corrupt sharded manifest: shard chunk rows sum to "
                f"{row_start}, stored shape is {self.shape}"
            )

    # -------------------------------------------------------------- geometry
    @property
    def ndim(self) -> int:
        """Dimensionality of the stored array."""
        return len(self.shape)

    @property
    def n_shards(self) -> int:
        """Number of shard files the manifest describes."""
        return len(self._entries)

    @property
    def n_chunks(self) -> int:
        """Total chunk records across every shard."""
        return len(self._index)

    @property
    def chunk_rows(self) -> tuple[int, ...]:
        """Row count of every chunk, global (shard-concatenated) order."""
        return tuple(rows for _, _, rows, _ in self._index)

    @property
    def chunks_read(self) -> int:
        """Logical chunk reads so far, summed over the opened shards."""
        return sum(shard.chunks_read for shard in self._shards.values())

    @property
    def chunks_prefetched(self) -> int:
        """Payloads fetched ahead by the readahead pipeline, over opened shards."""
        return sum(shard.chunks_prefetched for shard in self._shards.values())

    @property
    def preads(self) -> int:
        """Physical record reads issued, summed over the opened shards."""
        return sum(shard.preads for shard in self._shards.values())

    @property
    def read_retries(self) -> int:
        """Record-read retries so far, summed over the opened shards."""
        return sum(shard.read_retries for shard in self._shards.values())

    @property
    def settings(self) -> CompressionSettings | None:
        """Shared pyblaz-family settings (from shard 0), or ``None``."""
        return self.shard(0).settings

    @property
    def dtype(self) -> np.dtype:
        """Element dtype chunk decompression produces (delegated to shard 0)."""
        return self.shard(0).dtype

    @property
    def codec(self) -> Codec:
        """A default instance of the store's codec (decoding needs no parameters)."""
        if self._codec is None:
            self._codec = get_codec(self.codec_name)
        return self._codec

    def use_codec(self, codec: Codec) -> None:
        """Swap the decoding codec instance (same stream format) on every shard."""
        if codec.name != self.codec_name:
            raise CodecError(
                f"store holds {self.codec_name!r} chunks; cannot decode them "
                f"with codec {codec.name!r}"
            )
        self._codec = codec
        for shard in self._shards.values():
            shard.use_codec(codec)

    @property
    def chunk_cache(self):
        """The decoded-chunk cache attached to this store's shards (or None)."""
        return self._chunk_cache

    @chunk_cache.setter
    def chunk_cache(self, cache) -> None:
        """Attach ``cache`` to every current and future shard (keys stay per shard)."""
        self._chunk_cache = cache
        for shard in self._shards.values():
            shard.chunk_cache = cache

    # -------------------------------------------------------------- shards
    def shard(self, index: int) -> CompressedStore:
        """The open :class:`CompressedStore` for shard ``index`` (lazy, shared)."""
        store = self._shards.get(index)
        if store is None:
            store = CompressedStore(self.path / self._entries[index]["file"],
                                    retry_policy=self.retry_policy)
            if self._chunk_cache is not None:
                store.chunk_cache = self._chunk_cache
            if self._codec is not None:
                store.use_codec(self._codec)
            self._shards[index] = store
        return store

    def shard_paths(self) -> tuple[str, ...]:
        """Every shard file path, in shard order (cache keys use these)."""
        return tuple(str(self.path / entry["file"]) for entry in self._entries)

    def locate(self, index: int) -> tuple[int, int]:
        """Map a global chunk index to ``(shard index, local chunk index)``."""
        shard_index, local, _, _ = self._index[index]
        return shard_index, local

    def _shard_runs(self, indices) -> Iterator[tuple[int, list[tuple[int, int]]]]:
        """Split global chunk ``indices`` into consecutive same-shard runs.

        Yields ``(shard index, [(global index, local index), ...])`` in input
        order; the coalesced readers work per shard file, so runs are the unit
        both :meth:`load_region` and the prefetcher fetch by.
        """
        run_shard: int | None = None
        run: list[tuple[int, int]] = []
        for index in indices:
            shard_index, local = self.locate(index)
            if run and shard_index != run_shard:
                yield run_shard, run
                run = []
            run_shard = shard_index
            run.append((index, local))
        if run:
            yield run_shard, run

    # -------------------------------------------------------------- chunk access
    def read_chunk(self, index: int):
        """Decode global chunk ``index`` (lazily opening its shard)."""
        shard_index, local, _, _ = self._index[index]
        return self.shard(shard_index).read_chunk(local)

    def iter_chunks(self, *, prefetch: int | None = None) -> Iterator:
        """Yield every chunk's compressed object in global row order.

        ``prefetch`` selects the pipelined readahead exactly as on
        :meth:`CompressedStore.iter_chunks`; the prefetcher crosses shard
        boundaries seamlessly (spans never straddle two shard files, but the
        window does, so the next shard's records are already in flight while
        the previous shard's tail decodes).
        """
        from .prefetch import ChunkPrefetcher, resolve_depth

        depth = resolve_depth(prefetch, n_chunks=self.n_chunks)
        if depth == 0:
            for index in range(self.n_chunks):
                yield self.read_chunk(index)
            return
        fetcher = ChunkPrefetcher(self, depth=depth)
        try:
            yield from fetcher
        finally:
            fetcher.close()

    def decompress_chunk(self, chunk) -> np.ndarray:
        """Decompress one chunk object with the store's codec."""
        try:
            return self.codec.decompress(chunk)
        except CodecError:
            raise
        except DECODE_ERRORS as exc:
            raise CodecError(
                f"corrupt chunk contents in {self.codec_name} store: {exc}"
            ) from exc

    def load_compressed(self) -> CompressedArray:
        """Assemble the full pyblaz :class:`CompressedArray` across every shard."""
        chunks = list(self.iter_chunks())
        if not all(isinstance(chunk, CompressedArray) for chunk in chunks):
            raise CodecError(
                f"load_compressed assembles pyblaz chunks; this store holds "
                f"{self.codec_name!r} streams — use load() or iter_chunks()"
            )
        maxima = np.concatenate([chunk.maxima for chunk in chunks], axis=0)
        indices = np.concatenate([chunk.indices for chunk in chunks], axis=0)
        return CompressedArray(
            settings=chunks[0].settings, shape=self.shape, maxima=maxima,
            indices=indices,
        )

    def load(self) -> np.ndarray:
        """Decompress the whole (shard-assembled) array, one chunk at a time."""
        out: np.ndarray | None = None
        for index, (_, _, n_rows, row_start) in enumerate(self._index):
            decompressed = self.decompress_chunk(self.read_chunk(index))
            if out is None:
                out = np.empty(self.shape, dtype=decompressed.dtype)
            out[row_start: row_start + n_rows] = decompressed
        return out

    def load_region(self, region) -> np.ndarray:
        """Decompress only the chunks (and shards) intersecting ``region``.

        Same contract as :meth:`CompressedStore.load_region`; shards whose
        rows fall outside the axis-0 range are never opened.
        """
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > self.ndim:
            raise ValueError(
                f"region has {len(region)} dimensions, the store has {self.ndim}"
            )
        region = region + (slice(None),) * (self.ndim - len(region))

        first = region[0]
        squeeze_rows = isinstance(first, (int, np.integer))
        if squeeze_rows:
            index = int(first)
            if index < 0:
                index += self.shape[0]
            if not 0 <= index < self.shape[0]:
                raise IndexError(f"row {first} out of range for {self.shape[0]} rows")
            start, stop, step = index, index + 1, 1
        else:
            start, stop, step = first.indices(self.shape[0])
            if step <= 0:
                raise ValueError("load_region requires a positive step along axis 0")

        selected: list[int] = []
        local_by_index: dict[int, slice] = {}
        for chunk_index, (_, _, n_rows, row_start) in enumerate(self._index):
            row_end = row_start + n_rows
            if row_end <= start or row_start >= stop:
                continue
            global_first = max(start, row_start)
            remainder = (global_first - start) % step
            if remainder:
                global_first += step - remainder
            global_stop = min(stop, row_end)
            if global_first >= global_stop:
                continue
            selected.append(chunk_index)
            local_by_index[chunk_index] = slice(
                global_first - row_start, global_stop - row_start, step
            )

        parts = []
        for run_shard, run in self._shard_runs(selected):
            # each shard's intersecting records go through its coalescing
            # reader — one positional read per adjacent span, not per chunk
            shard = self.shard(run_shard)
            for (_, chunk), chunk_index in zip(
                shard._iter_chunks_coalesced([local for _, local in run]),
                (global_index for global_index, _ in run),
            ):
                decompressed = self.decompress_chunk(chunk)
                parts.append(
                    decompressed[(local_by_index[chunk_index],) + region[1:]]
                )

        if parts:
            assembled = np.concatenate(parts, axis=0)
        else:
            empty_rows = (0,) + self.shape[1:]
            assembled = np.empty(empty_rows, dtype=self.dtype)[(slice(None),) + region[1:]]
        return assembled[0] if squeeze_rows else assembled

    # -------------------------------------------------------------- partials
    def partials_fresh(self) -> bool:
        """Cheap staleness probe for the persisted fold partials.

        Fresh means: partials are enabled for this handle, every manifest
        entry is marked as having them, every sidecar file exists, and every
        shard file still has its recorded byte size (an in-place rewrite —
        e.g. a repair that changed bytes — invalidates).  Deep per-chunk
        verification is ``verify-store``'s job, not this probe's.
        """
        if not self.use_partials:
            return False
        for index, entry in enumerate(self._entries):
            if not entry.get("partials"):
                return False
            try:
                if os.path.getsize(self.path / entry["file"]) != int(entry["n_bytes"]):
                    return False
            except OSError:
                return False
            if not (self.path / partials_filename(index)).is_file():
                return False
        return True

    def _shard_partials(self, index: int) -> dict:
        """Load (and memoize) shard ``index``'s sidecar arrays."""
        loaded = self._partials.get(index)
        if loaded is None:
            with np.load(self.path / partials_filename(index)) as data:
                loaded = {key: data[key] for key in data.files}
            self._partials[index] = loaded
        return loaded

    def fold_state(self, name: str, *, rename: str | None = None
                   ) -> "folds.FoldState | None":
        """The accumulated :class:`FoldState` of fold ``name``, decode-free.

        Reassembles the persisted per-shard partial vectors (one float64
        vector per shard, in shard order) into a state whose finalization is
        bit-identical to a cold sweep's — ``fsum`` visits the same values in
        the same order.  ``rename`` relabels the sums key (the engine serves
        ``product(x, x)`` from the ``square`` vectors this way).  Returns
        ``None`` — callers fall back to a full sweep — when the fold has no
        persisted form or :meth:`partials_fresh` fails.
        """
        if name not in PARTIAL_FOLDS or not self.partials_fresh():
            return None
        key = rename or name
        parts: list[np.ndarray] = []
        n_blocks = n_elements = n_padded = 0
        dc_scale: float | None = None
        try:
            for index in range(self.n_shards):
                data = self._shard_partials(index)
                if name not in data:
                    return None
                parts.append(np.asarray(data[name], dtype=np.float64))
                n_blocks += int(data["n_blocks"])
                n_elements += int(data["n_elements"])
                n_padded += int(data["n_padded_elements"])
                if name == "dc":
                    dc_scale = float(data["dc_scale"])
        except (OSError, KeyError, ValueError, zlib.error):
            return None
        return folds.FoldState(
            sums={key: parts}, n_blocks=n_blocks, n_elements=n_elements,
            n_padded_elements=n_padded, dc_scale=dc_scale,
        )

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every shard opened so far (reads fail afterwards)."""
        for shard in self._shards.values():
            shard.close()
        self._shards.clear()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStore(shape={self.shape}, shards={self.n_shards}, "
            f"chunks={self.n_chunks}, codec={self.codec_name}, "
            f"revision={self.revision})"
        )


def open_store(path, *, retry_policy: RetryPolicy | None = DEFAULT_READ_RETRY,
               use_partials: bool = True) -> "CompressedStore | ShardedStore":
    """Open ``path`` as whichever store kind it is.

    A directory holding a sharded-store manifest opens as a
    :class:`ShardedStore`; anything else opens as a single
    :class:`CompressedStore`.  The one seam the engine's worker jobs, the
    serving catalog and the CLI all reopen stores through, so every layer
    accepts sharded paths wherever it accepted store files.
    """
    path = Path(path)
    if is_sharded_store(path):
        return ShardedStore(path, retry_policy=retry_policy,
                            use_partials=use_partials)
    return CompressedStore(path, retry_policy=retry_policy)
