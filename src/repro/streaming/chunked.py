"""Slab-by-slab compression that is bit-identical to one-shot compression.

The pipeline's blocking step pads and tiles each axis independently, and every
later step (transform, binning, pruning, flattening) treats blocks independently
with grid axis 0 outermost in C order.  Consequently an array cut into slabs along
axis 0 at block-extent multiples compresses to exactly the rows of the one-shot
result: per-slab ``maxima`` concatenate along grid axis 0 and per-slab flattened
``indices`` concatenate along their block axis.  :class:`ChunkedCompressor` is the
bookkeeping around that fact — slab re-alignment, validation, optional process
fan-out, and assembly — with all numerics delegated to the one-shot
:class:`repro.core.Compressor` running the bit-exact ``reference`` kernel
backend (the default; see the ``backend`` parameter for the faster, not
bit-identical alternatives).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator

import numpy as np

from ..codecs.base import Codec
from ..codecs.registry import get_codec
from ..core.compressed import CompressedArray
from ..core.compressor import Compressor
from ..core.exceptions import CodecError
from ..core.settings import CompressionSettings
from ..kernels import DEFAULT_BACKEND
from .store import CompressedStore, CompressedStoreWriter

__all__ = ["ChunkedCompressor", "stream_compress"]


def stream_compress(
    source: np.ndarray, path, codec: "Codec | str", slab_rows: int | None = None
) -> CompressedStore:
    """Compress ``source`` slab-by-slab with any registered codec into a store.

    The codec-generic counterpart of
    :meth:`ChunkedCompressor.compress_to_store`: each axis-0 slab is compressed
    independently with ``codec`` (a :class:`repro.codecs.Codec` instance or
    registry name) and appended as one chunk, so memory stays bounded by the
    slab size for memmapped input.  Slab heights are rounded up to the codec's
    ``chunk_row_multiple``; for codecs without alignment constraints every
    chunking is valid (chunks decompress independently).  Returns the store
    reopened for reading.
    """
    if isinstance(codec, str):
        codec = get_codec(codec)
    source = np.asarray(source) if not isinstance(source, np.memmap) else source
    if source.size == 0:
        raise CodecError("cannot compress an empty array")
    multiple = max(1, codec.chunk_row_multiple)
    if slab_rows is None:
        slab_rows = 64 * multiple
    slab_rows = int(slab_rows)
    if slab_rows < 1:
        raise CodecError("slab_rows must be positive")
    slab_rows = -(-slab_rows // multiple) * multiple
    with CompressedStoreWriter(path, codec) as writer:
        for start in range(0, source.shape[0], slab_rows):
            writer.append(codec.compress(np.ascontiguousarray(source[start : start + slab_rows])))
    return CompressedStore(path)


def _compress_slab(
    settings: CompressionSettings, backend: str, slab: np.ndarray
) -> CompressedArray:
    """Picklable per-slab work unit for the process fan-out."""
    return Compressor(settings, backend=backend).compress(slab)


class ChunkedCompressor:
    """Compress an array in block-aligned slabs along axis 0.

    Parameters
    ----------
    settings:
        The compression configuration (shared with the one-shot compressor).
    slab_rows:
        Target slab height in rows.  Rounded up to the nearest multiple of the
        block extent along axis 0 so slab boundaries always fall on block edges
        (which is what makes the result exact); the default is 64 block rows.
    n_workers:
        When > 1, slabs are compressed concurrently in worker processes with a
        bounded number in flight, so memory stays proportional to
        ``n_workers × slab size`` even for generator input.
    backend:
        Kernel backend compressing each slab (see :mod:`repro.kernels`).
        Defaults to ``"reference"`` — deliberately ignoring ``settings.backend``
        — because only the bit-exact backend guarantees the chunked result is
        bit-identical to one-shot compression for every slab size (BLAS kernel
        choice depends on batch size, so the fast backends do not).  Pass
        ``backend="gemm"`` explicitly to trade that invariant for throughput;
        results then agree with one-shot only within the backend's documented
        tolerance.  With ``n_workers > 1`` the backend is resolved by name
        inside each worker process, so third-party backends must be registered
        at import time of their module, not just in the parent interpreter.

    The input to :meth:`compress` / :meth:`compress_to_store` may be an in-memory
    array, a ``np.memmap`` (slabs are materialised one at a time), or any iterable
    of arrays covering the full trailing shape — slab boundaries in the input need
    not be block-aligned; they are re-buffered internally.
    """

    def __init__(
        self,
        settings: CompressionSettings,
        slab_rows: int | None = None,
        n_workers: int = 1,
        backend: str | None = None,
    ):
        self.settings = settings
        self.backend = str(backend).lower() if backend is not None else DEFAULT_BACKEND
        block_rows = settings.block_shape[0]
        if slab_rows is None:
            slab_rows = 64 * block_rows
        slab_rows = int(slab_rows)
        if slab_rows < 1:
            raise ValueError("slab_rows must be positive")
        # round up to a whole number of block rows: exactness requires slab
        # boundaries on block edges, so a ragged request just gets a taller slab
        self.slab_rows = -(-slab_rows // block_rows) * block_rows
        self.n_workers = int(n_workers)
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        self._compressor = Compressor(settings, backend=self.backend)

    # ------------------------------------------------------------------ slab plumbing
    def _validate_slab(self, slab: np.ndarray, tail_shape: tuple[int, ...] | None):
        """Check one input slab's dimensionality and trailing shape."""
        slab = np.asarray(slab)
        if slab.ndim != self.settings.ndim:
            raise ValueError(
                f"slab of dimensionality {slab.ndim} cannot feed "
                f"{self.settings.ndim}-dimensional settings {self.settings.block_shape}"
            )
        if tail_shape is not None and slab.shape[1:] != tail_shape:
            raise ValueError(
                f"slab trailing shape {slab.shape[1:]} does not match earlier "
                f"slabs' trailing shape {tail_shape}"
            )
        return slab

    def aligned_slabs(self, source) -> Iterator[np.ndarray]:
        """Yield block-aligned slabs of ``slab_rows`` rows (last may be shorter).

        Accepts an array / memmap (sliced lazily) or an iterable of row chunks
        (re-buffered so emitted slab boundaries are block-aligned regardless of
        input boundaries).
        """
        if isinstance(source, np.ndarray):
            source = self._validate_slab(source, None)
            for start in range(0, source.shape[0], self.slab_rows):
                yield source[start : start + self.slab_rows]
            return

        pending: list[np.ndarray] = []
        pending_rows = 0
        tail_shape: tuple[int, ...] | None = None
        for piece in source:
            piece = self._validate_slab(piece, tail_shape)
            tail_shape = piece.shape[1:]
            if piece.shape[0] == 0:
                continue
            pending.append(piece)
            pending_rows += piece.shape[0]
            while pending_rows >= self.slab_rows:
                merged = pending[0] if len(pending) == 1 else np.concatenate(pending, axis=0)
                yield merged[: self.slab_rows]
                remainder = merged[self.slab_rows :]
                pending = [remainder] if remainder.shape[0] else []
                pending_rows = remainder.shape[0]
        if pending_rows:
            yield pending[0] if len(pending) == 1 else np.concatenate(pending, axis=0)

    def _compressed_slabs(self, source) -> Iterator[CompressedArray]:
        """Compress aligned slabs in order, optionally fanning out across processes."""
        slabs = self.aligned_slabs(source)
        if self.n_workers == 1:
            for slab in slabs:
                yield self._compressor.compress(slab)
            return
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            in_flight: deque = deque()
            for slab in slabs:
                in_flight.append(
                    pool.submit(
                        _compress_slab, self.settings, self.backend, np.ascontiguousarray(slab)
                    )
                )
                # bound memory: keep at most 2 slabs per worker pending
                while len(in_flight) >= 2 * self.n_workers:
                    yield in_flight.popleft().result()
            while in_flight:
                yield in_flight.popleft().result()

    # ------------------------------------------------------------------ compression
    def compress(self, source) -> CompressedArray:
        """Compress ``source`` slab by slab into one :class:`CompressedArray`.

        The result's ``maxima`` and ``indices`` are bit-identical
        (``np.array_equal``) to ``Compressor(settings).compress`` on the fully
        materialised input, for every slab size.
        """
        maxima_parts: list[np.ndarray] = []
        indices_parts: list[np.ndarray] = []
        rows = 0
        tail_shape: tuple[int, ...] | None = None
        for chunk in self._compressed_slabs(source):
            maxima_parts.append(chunk.maxima)
            indices_parts.append(chunk.indices)
            rows += chunk.shape[0]
            tail_shape = chunk.shape[1:]
        if not maxima_parts:
            raise ValueError("cannot compress an empty array")
        return CompressedArray(
            settings=self.settings,
            shape=(rows,) + tail_shape,
            maxima=np.concatenate(maxima_parts, axis=0),
            indices=np.concatenate(indices_parts, axis=0),
        )

    def compress_to_store(self, source, path) -> CompressedStore:
        """Compress ``source`` slab by slab directly into a chunked store file.

        Unlike :meth:`compress` this never holds more than the in-flight slabs'
        compressed form in memory — the out-of-core path.  Returns the store
        reopened for reading.
        """
        wrote = False
        with CompressedStoreWriter(path, self.settings) as writer:
            for chunk in self._compressed_slabs(source):
                writer.append(chunk)
                wrote = True
            if not wrote:
                raise ValueError("cannot compress an empty array")
        return CompressedStore(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedCompressor(slab_rows={self.slab_rows}, n_workers={self.n_workers}, "
            f"backend={self.backend}, {self.settings.describe()})"
        )
