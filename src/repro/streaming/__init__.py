"""Out-of-core streaming compression (the scaling substrate of the ROADMAP).

The core :class:`repro.core.Compressor` requires the whole array in memory.  This
subpackage removes that restriction by exploiting the pipeline's block independence:
every step after blocking (transform, binning, pruning) treats blocks independently,
so an array split into *block-aligned slabs along axis 0* can be compressed slab by
slab and the per-slab results concatenated into a representation **bit-identical**
to one-shot compression — the streaming analogue of the block-decomposed speedups
of the related SOM-acceleration work (PAPERS.md).

Three layers:

* :class:`ChunkedCompressor` — consumes an in-memory array, a ``np.memmap``, or a
  generator of slabs, re-aligns slab boundaries to block multiples, compresses each
  slab with the existing :class:`repro.core.Compressor` (optionally fanned out
  across worker processes), and assembles an exact :class:`repro.core.CompressedArray`.
* :class:`CompressedStore` / :class:`CompressedStoreWriter` — an on-disk format
  with a chunk table, so slabs append incrementally and sub-regions decompress
  selectively (:func:`load_region`) without materialising the whole index array.
  Format v2 records the codec *name*, so a store can hold slabs of any
  registered :mod:`repro.codecs` backend (:func:`stream_compress` is the
  codec-generic writer); v1 pyblaz stores remain readable.
* :class:`ShardedStore` (:mod:`repro.streaming.sharded`) — a manifest over N
  immutable store shards with append support and persisted per-shard fold
  partials, so reductions over a growing store are O(new chunks); it presents
  the single-store surface, and :func:`open_store` dispatches on the path kind
  (``docs/sharding.md``).
* :mod:`repro.streaming.ops` — the out-of-core compressed-domain operations:
  every Table I scalar reduction (``mean``, ``variance``,
  ``standard_deviation``, ``covariance``, ``dot``, ``l2_norm``,
  ``euclidean_distance``, ``cosine_similarity``), each a thin one-op plan over
  the lazy engine (:mod:`repro.engine`) folding the declarative
  :data:`repro.core.ops.folds.FOLD_SPECS` partials chunk-by-chunk, plus
  structural ``add``/``subtract``/``scale``/``negate`` that write new stores
  one chunk at a time (optionally fanned across an executor with deterministic
  append order).  Results match the in-memory :mod:`repro.core.ops` on the
  assembled array bit for bit (see ``docs/ops.md``); to evaluate *several*
  reductions in fused sweeps, use :func:`repro.engine.plan` directly
  (``docs/engine.md``).  The historical
  ``stream_mean``/``stream_l2_norm``/``stream_dot`` names remain as
  deprecation shims.
* :mod:`repro.streaming.prefetch` — the pipelined chunk I/O layer
  (``docs/performance.md``): :class:`ChunkPrefetcher` fetches coalesced
  record spans a bounded window ahead of the consumer on a small thread
  pool, so decode/fold work overlaps the reads while chunk order, values and
  counters stay bit-identical to the serial loop.  Default-on via
  ``iter_chunks(prefetch=None)`` across plans, streaming ops, sharded sweeps
  and serving; ``prefetch=0`` restores the serial path.
"""

from . import ops
from .chunked import ChunkedCompressor, stream_compress
from .prefetch import ChunkPrefetcher, coalesce_spans, resolve_depth, warm_store_cache
from .reductions import stream_dot, stream_l2_norm, stream_mean
from .sharded import (
    ShardedStore,
    append_shard,
    init_sharded_store,
    is_sharded_store,
    open_store,
    refresh_partials,
)
from .store import CompressedStore, CompressedStoreWriter, load_region

__all__ = [
    "ChunkPrefetcher",
    "ChunkedCompressor",
    "CompressedStore",
    "CompressedStoreWriter",
    "ShardedStore",
    "coalesce_spans",
    "resolve_depth",
    "warm_store_cache",
    "append_shard",
    "init_sharded_store",
    "is_sharded_store",
    "load_region",
    "open_store",
    "ops",
    "refresh_partials",
    "stream_compress",
    "stream_mean",
    "stream_l2_norm",
    "stream_dot",
]
