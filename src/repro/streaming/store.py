"""The chunked on-disk store: append slabs incrementally, decompress selectively.

The one-shot format of :mod:`repro.core.codec` serializes a whole compressed array
as ``header + maxima + indices``, which forces both the writer and the reader to
materialise everything at once.  The store format keeps the identical settings
encoding (reusing the codec's packing primitives) but splits the payload into
*chunk records* — one per block-aligned slab along axis 0 — and ends the file with
a chunk table, so that

* a writer can append slabs as they are produced, never holding more than one
  slab's compressed form in memory, and
* a reader can seek straight to the chunks intersecting a requested region and
  decode only those (:meth:`CompressedStore.load_region`), never allocating the
  full index array.

Layout (all little-endian)::

    "PBLZC"  u8 version
    type codes (4 B)  block shape (ndim × u64)  mask (u32 length + bits)
    chunk 0 record: maxima bytes, indices bytes
    chunk 1 record: ...
    ...
    footer: u64 n_chunks, n_chunks × (u64 offset, u64 n_rows),
            ndim × u64 full shape, u64 footer offset, "PBLZE"

Chunk record sizes are not self-delimited; they are derivable from the settings and
the chunk's row count, which the table stores.  Every chunk except the last must
cover a whole number of block rows, so chunk block grids stack exactly along grid
axis 0 and concatenating chunk payloads reproduces the one-shot compressed array
bit for bit.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from ..core.codec import (
    float_bytes,
    pack_block_geometry,
    pack_floats,
    pack_type_codes,
    unpack_block_geometry,
    unpack_floats,
    unpack_type_codes,
)
from ..core.compressed import CompressedArray
from ..core.compressor import Compressor
from ..core.settings import CompressionSettings

__all__ = ["CompressedStore", "CompressedStoreWriter", "load_region", "STORE_MAGIC"]

STORE_MAGIC = b"PBLZC"
_END_MAGIC = b"PBLZE"
_STORE_VERSION = 1
#: Trailer = footer offset (u64) + end magic; read first to locate the chunk table.
_TRAILER_BYTES = 8 + len(_END_MAGIC)


def _check_chunk_settings(store_settings: CompressionSettings, chunk: CompressedArray) -> None:
    if not store_settings.is_compatible_with(chunk.settings) or (
        store_settings.float_format.name != chunk.settings.float_format.name
    ):
        raise ValueError(
            f"chunk settings ({chunk.settings.describe()}) do not match store "
            f"settings ({store_settings.describe()})"
        )


class CompressedStoreWriter:
    """Incrementally writes compressed slabs into a chunked store file.

    Parameters
    ----------
    path:
        Output file path.
    settings:
        The :class:`CompressionSettings` every appended chunk must share.

    Usable as a context manager; :meth:`finalize` (or leaving the ``with`` block)
    writes the chunk table and makes the file readable.
    """

    def __init__(self, path, settings: CompressionSettings):
        self.path = Path(path)
        self.settings = settings
        self._handle = open(self.path, "wb")
        self._chunks: list[tuple[int, int]] = []  # (offset, n_rows)
        self._tail_shape: tuple[int, ...] | None = None
        self._ragged = False
        self._finalized = False
        header = STORE_MAGIC + struct.pack("<B", _STORE_VERSION)
        header += pack_type_codes(settings, settings.ndim)
        header += pack_block_geometry(settings)
        self._handle.write(header)

    # ------------------------------------------------------------------ writing
    def append(self, chunk: CompressedArray) -> None:
        """Append one compressed slab (rows along axis 0 of the eventual array).

        Every chunk but the last must span a whole number of block rows; appending
        after a ragged (non-multiple) chunk is therefore an error.
        """
        if self._finalized:
            raise ValueError("cannot append to a finalized store")
        _check_chunk_settings(self.settings, chunk)
        if self._ragged:
            raise ValueError(
                "a chunk with a partial block row was already appended; only the "
                "final chunk may have a row count that is not a multiple of the "
                f"block extent {self.settings.block_shape[0]}"
            )
        if self._tail_shape is None:
            self._tail_shape = chunk.shape[1:]
        elif chunk.shape[1:] != self._tail_shape:
            raise ValueError(
                f"chunk trailing shape {chunk.shape[1:]} does not match the "
                f"store's trailing shape {self._tail_shape}"
            )
        n_rows = chunk.shape[0]
        if n_rows % self.settings.block_shape[0] != 0:
            self._ragged = True
        offset = self._handle.tell()
        self._handle.write(pack_floats(chunk.maxima, self.settings.float_format))
        self._handle.write(
            np.ascontiguousarray(
                chunk.indices, dtype=self.settings.index_dtype.newbyteorder("<")
            ).tobytes()
        )
        self._chunks.append((offset, n_rows))

    def finalize(self) -> None:
        """Write the chunk table and close the file."""
        if self._finalized:
            return
        if not self._chunks:
            self._handle.close()
            raise ValueError("cannot finalize an empty store (no chunks appended)")
        footer_offset = self._handle.tell()
        footer = struct.pack("<Q", len(self._chunks))
        for offset, n_rows in self._chunks:
            footer += struct.pack("<QQ", offset, n_rows)
        shape = (sum(rows for _, rows in self._chunks),) + self._tail_shape
        footer += struct.pack(f"<{len(shape)}Q", *shape)
        footer += struct.pack("<Q", footer_offset)
        footer += _END_MAGIC
        self._handle.write(footer)
        self._handle.close()
        self._finalized = True

    # ------------------------------------------------------------------ context manager
    def __enter__(self) -> "CompressedStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:  # leave a diagnosable partial file rather than masking the error
            self._handle.close()


class CompressedStore:
    """Read-only view of a chunked store file.

    Chunks are read lazily: opening the store parses only the settings header and
    the chunk table.  :attr:`chunks_read` counts how many chunk records have been
    decoded, which the tests use to assert that region reads stay selective.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        self.chunks_read = 0
        try:
            self._read_header_and_table()
        except Exception:
            self._handle.close()
            raise

    def _read_header_and_table(self) -> None:
        head = self._handle.read(len(STORE_MAGIC) + 1)
        if head[: len(STORE_MAGIC)] != STORE_MAGIC:
            raise ValueError("not a PyBlaz chunked store (bad magic)")
        (version,) = struct.unpack("<B", head[len(STORE_MAGIC) :])
        if version != _STORE_VERSION:
            raise ValueError(f"unsupported store version {version}")
        # settings header: type codes + block geometry (identical encoding to the
        # one-shot codec, minus the array shape, which lives in the footer)
        fixed = self._handle.read(4)
        float_format, index_dtype, transform, ndim, _ = unpack_type_codes(fixed, 0)
        geometry = self._handle.read(8 * ndim + 4)
        (mask_nbytes,) = struct.unpack_from("<I", geometry, 8 * ndim)
        geometry += self._handle.read(mask_nbytes)
        self.settings, _ = unpack_block_geometry(
            geometry, 0, ndim, float_format, index_dtype, transform
        )

        self._handle.seek(-_TRAILER_BYTES, 2)
        trailer = self._handle.read(_TRAILER_BYTES)
        if trailer[8:] != _END_MAGIC:
            raise ValueError("truncated or unfinalized PyBlaz chunked store (bad trailer)")
        (footer_offset,) = struct.unpack_from("<Q", trailer, 0)
        self._handle.seek(footer_offset)
        footer = self._handle.read()
        (n_chunks,) = struct.unpack_from("<Q", footer, 0)
        pos = 8
        self._chunks: list[tuple[int, int, int]] = []  # (offset, n_rows, row_start)
        row_start = 0
        for _ in range(n_chunks):
            offset, n_rows = struct.unpack_from("<QQ", footer, pos)
            pos += 16
            self._chunks.append((offset, n_rows, row_start))
            row_start += n_rows
        self.shape = tuple(struct.unpack_from(f"<{ndim}Q", footer, pos))
        if self.shape[0] != row_start:
            raise ValueError(
                f"corrupt chunk table: chunk rows sum to {row_start}, "
                f"stored shape is {self.shape}"
            )

    # ------------------------------------------------------------------ geometry
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def chunk_rows(self) -> tuple[int, ...]:
        """Row count of every chunk, in file order."""
        return tuple(rows for _, rows, _ in self._chunks)

    # ------------------------------------------------------------------ chunk access
    def read_chunk(self, index: int) -> CompressedArray:
        """Decode chunk ``index`` into a :class:`CompressedArray` of its slab."""
        offset, n_rows, _ = self._chunks[index]
        settings = self.settings
        chunk_shape = (n_rows,) + self.shape[1:]
        n_blocks = settings.n_blocks(chunk_shape)
        maxima_nbytes = float_bytes(n_blocks, settings.float_format)
        indices_nbytes = n_blocks * settings.kept_per_block * settings.index_dtype.itemsize
        self._handle.seek(offset)
        data = self._handle.read(maxima_nbytes + indices_nbytes)
        maxima = unpack_floats(data[:maxima_nbytes], n_blocks, settings.float_format)
        maxima = maxima.reshape(settings.block_grid_shape(chunk_shape))
        indices = np.frombuffer(
            data,
            dtype=settings.index_dtype.newbyteorder("<"),
            count=n_blocks * settings.kept_per_block,
            offset=maxima_nbytes,
        )
        indices = indices.astype(settings.index_dtype).reshape(
            n_blocks, settings.kept_per_block
        )
        self.chunks_read += 1
        return CompressedArray(
            settings=settings, shape=chunk_shape, maxima=maxima, indices=indices
        )

    def iter_chunks(self) -> Iterator[CompressedArray]:
        """Yield every chunk's :class:`CompressedArray` in row order."""
        for index in range(self.n_chunks):
            yield self.read_chunk(index)

    def load_compressed(self) -> CompressedArray:
        """Assemble the full :class:`CompressedArray` (bit-identical to one-shot)."""
        chunks = list(self.iter_chunks())
        maxima = np.concatenate([chunk.maxima for chunk in chunks], axis=0)
        indices = np.concatenate([chunk.indices for chunk in chunks], axis=0)
        return CompressedArray(
            settings=self.settings, shape=self.shape, maxima=maxima, indices=indices
        )

    # ------------------------------------------------------------------ decompression
    def load(self) -> np.ndarray:
        """Decompress the whole array, one chunk at a time."""
        out = np.empty(self.shape, dtype=np.float64)
        for (_, n_rows, row_start), chunk in zip(self._chunks, self.iter_chunks()):
            out[row_start : row_start + n_rows] = Compressor(self.settings).decompress(chunk)
        return out

    def load_region(self, region) -> np.ndarray:
        """Decompress only the chunks intersecting ``region``.

        ``region`` is an index expression like ``np.ndarray`` accepts for basic
        indexing — a slice/int or a tuple of them, at most one per dimension
        (missing trailing dimensions default to ``slice(None)``).  Steps along
        axis 0 must be positive.  Only the chunk records whose rows intersect the
        axis-0 range are read and decoded; memory use is bounded by the chunk
        size, not the array size.
        """
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > self.ndim:
            raise ValueError(
                f"region has {len(region)} dimensions, the store has {self.ndim}"
            )
        region = region + (slice(None),) * (self.ndim - len(region))

        first = region[0]
        squeeze_rows = isinstance(first, (int, np.integer))
        if squeeze_rows:
            index = int(first)
            if index < 0:
                index += self.shape[0]
            if not 0 <= index < self.shape[0]:
                raise IndexError(f"row {first} out of range for {self.shape[0]} rows")
            start, stop, step = index, index + 1, 1
        else:
            start, stop, step = first.indices(self.shape[0])
            if step <= 0:
                raise ValueError("load_region requires a positive step along axis 0")

        parts = []
        for chunk_index, (_, n_rows, row_start) in enumerate(self._chunks):
            row_end = row_start + n_rows
            if row_end <= start or row_start >= stop:
                continue
            # first requested row that lands inside this chunk and on the step grid
            global_first = max(start, row_start)
            remainder = (global_first - start) % step
            if remainder:
                global_first += step - remainder
            global_stop = min(stop, row_end)
            if global_first >= global_stop:
                continue
            chunk = self.read_chunk(chunk_index)
            decompressed = Compressor(self.settings).decompress(chunk)
            local = slice(global_first - row_start, global_stop - row_start, step)
            parts.append(decompressed[(local,) + region[1:]])

        if parts:
            assembled = np.concatenate(parts, axis=0)
        else:
            empty_rows = (0,) + self.shape[1:]
            assembled = np.empty(empty_rows, dtype=np.float64)[(slice(None),) + region[1:]]
        return assembled[0] if squeeze_rows else assembled

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CompressedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedStore(shape={self.shape}, chunks={self.n_chunks}, "
            f"{self.settings.describe()})"
        )


def load_region(store: CompressedStore, region) -> np.ndarray:
    """Module-level convenience for :meth:`CompressedStore.load_region`."""
    return store.load_region(region)
