"""The chunked on-disk store: append slabs incrementally, decompress selectively.

The one-shot formats serialize a whole compressed array at once, which forces
both the writer and the reader to materialise everything.  The store format
splits the payload into *chunk records* — one per slab along axis 0 — and ends
the file with a chunk table, so that

* a writer can append slabs as they are produced, never holding more than one
  slab's compressed form in memory, and
* a reader can seek straight to the chunks intersecting a requested region and
  decode only those (:meth:`CompressedStore.load_region`), never allocating the
  full index array.

Format version 3 records the *codec name* in the header, stores every chunk as
that codec's self-describing ``to_bytes`` stream, and adds **integrity
checksums**: a CRC-32 (``zlib.crc32``) of every chunk record in its table
entry, plus one table CRC covering the header and the footer body, so a
flipped bit anywhere — payload, table, or header — is detected at read time and
reported as a typed :class:`IntegrityError` naming the chunk and the store
path rather than decoded into a silently wrong array.  Layout (all
little-endian)::

    "PBLZC"  u8 version=3
    u8 name length, codec name (ascii)
    chunk 0 record: the codec's to_bytes stream for slab 0
    chunk 1 record: ...
    ...
    footer: u64 n_chunks,
            n_chunks × (u64 offset, u64 n_bytes, u64 n_rows, u32 crc32),
            u64 ndim, ndim × u64 full shape,
            u32 table crc32 (over header bytes + footer bytes up to here),
            u64 footer offset, "PBLZE"

Version-2 files (same layout minus the two checksum fields) and version-1
files (pyblaz only: shared settings header, raw ``maxima``/``indices`` records
whose sizes derive from the settings) remain fully readable; their parsing
paths are kept verbatim below.  Reads of v1/v2 chunks simply skip checksum
verification — ``repro verify-store`` still decodes them to catch gross
corruption.

For the pyblaz codec every chunk except the last must cover a whole number of
block rows (``Codec.chunk_row_multiple``), so chunk block grids stack exactly
along grid axis 0 and :meth:`CompressedStore.load_compressed` reproduces the
one-shot compressed array bit for bit.  Codecs without a row-multiple constraint
compress each slab independently, so any chunking is valid.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..codecs.base import Codec
from ..codecs.pyblaz import PyBlazCodec
from ..codecs.registry import get_codec, get_codec_class
from ..codecs.serialization import DECODE_ERRORS
from ..core.codec import (
    float_bytes,
    unpack_block_geometry,
    unpack_floats,
    unpack_type_codes,
)
from ..core.compressed import CompressedArray
from ..core.exceptions import CodecError, IntegrityError
from ..core.settings import CompressionSettings
from ..reliability import faults
from ..reliability.retry import DEFAULT_READ_RETRY, RetryPolicy, retry_call

__all__ = ["CompressedStore", "CompressedStoreWriter", "load_region", "STORE_MAGIC"]

STORE_MAGIC = b"PBLZC"
_END_MAGIC = b"PBLZE"
_STORE_VERSION = 3
#: Trailer = footer offset (u64) + end magic; read first to locate the chunk table.
_TRAILER_BYTES = 8 + len(_END_MAGIC)

#: Positional reads (``os.pread``) keep concurrent chunk reads safe without a
#: lock; platforms without it (non-POSIX) fall back to a per-store read lock.
_HAVE_PREAD = hasattr(os, "pread")


def _check_chunk_settings(store_settings: CompressionSettings, chunk: CompressedArray) -> None:
    """Reject chunks whose settings diverge from the store's shared settings."""
    if not store_settings.is_compatible_with(chunk.settings) or (
        store_settings.float_format.name != chunk.settings.float_format.name
    ):
        raise CodecError(
            f"chunk settings ({chunk.settings.describe()}) do not match store "
            f"settings ({store_settings.describe()})"
        )


class CompressedStoreWriter:
    """Incrementally writes compressed slabs into a chunked store file.

    Parameters
    ----------
    path:
        Output file path.
    codec:
        The :class:`repro.codecs.Codec` whose compressed objects will be
        appended; its name is recorded in the store header.  A
        :class:`CompressionSettings` is also accepted (the historical signature)
        and wraps itself in a :class:`PyBlazCodec`, with the additional
        guarantee that every appended chunk's settings match.

    Usable as a context manager; :meth:`finalize` (or leaving the ``with``
    block) writes the chunk table and makes the file readable.

    Writes land in a ``<name>.partial`` sibling and :meth:`finalize` atomically
    renames it over ``path``, so a crash never leaves a torn file at the final
    path (the diagnosable partial stays under the ``.partial`` name).  On POSIX
    systems this also makes writing a store *over a path currently being read*
    safe — the reader's open handle keeps the old contents until it reopens
    (on Windows, where replacing an open file is forbidden, close readers
    before finalizing onto their path).
    """

    def __init__(self, path, codec: "Codec | CompressionSettings"):
        if isinstance(codec, CompressionSettings):
            self.settings: CompressionSettings | None = codec
            codec = PyBlazCodec(settings=codec)
        elif isinstance(codec, Codec):
            self.settings = getattr(codec, "settings", None)
        else:
            raise CodecError(
                f"writer needs a Codec instance or CompressionSettings, got {codec!r}"
            )
        self.codec = codec
        self.path = Path(path)
        self._temp_path = self.path.with_name(self.path.name + ".partial")
        self._handle = open(self._temp_path, "wb")
        # (offset, n_bytes, n_rows, crc32) per appended chunk record
        self._chunks: list[tuple[int, int, int, int]] = []
        self._tail_shape: tuple[int, ...] | None = None
        self._ragged = False
        self._finalized = False
        name = codec.name.encode("ascii")
        header = STORE_MAGIC + struct.pack("<B", _STORE_VERSION)
        header += struct.pack("<B", len(name)) + name
        self._header = header  # seeds the v3 table checksum in finalize()
        self._handle.write(header)

    # ------------------------------------------------------------------ writing
    def append(self, chunk) -> None:
        """Append one compressed slab (rows along axis 0 of the eventual array).

        ``chunk`` is the codec's compressed object and must expose ``.shape``.
        For codecs with a ``chunk_row_multiple`` > 1 (pyblaz), every chunk but
        the last must span a whole number of block rows; appending after a
        ragged (non-multiple) chunk is therefore an error.
        """
        if self._finalized:
            raise CodecError("cannot append to a finalized store")
        self._check_open("append to")
        if self.settings is not None and isinstance(chunk, CompressedArray):
            _check_chunk_settings(self.settings, chunk)
        multiple = self.codec.chunk_row_multiple
        if self._ragged:
            raise CodecError(
                "a chunk with a partial block row was already appended; only the "
                "final chunk may have a row count that is not a multiple of the "
                f"block extent {multiple}"
            )
        shape = tuple(chunk.shape)
        if self._tail_shape is None:
            self._tail_shape = shape[1:]
        elif shape[1:] != self._tail_shape:
            raise CodecError(
                f"chunk trailing shape {shape[1:]} does not match the "
                f"store's trailing shape {self._tail_shape}"
            )
        n_rows = shape[0]
        if multiple > 1 and n_rows % multiple != 0:
            self._ragged = True
        payload = self.codec.to_bytes(chunk)
        offset = self._handle.tell()
        self._handle.write(payload)
        self._chunks.append((offset, len(payload), n_rows, zlib.crc32(payload)))

    def append_record(
        self, payload: bytes, n_rows: int, *, tail_shape: tuple[int, ...] | None = None
    ) -> None:
        """Append one pre-encoded chunk record verbatim (the repair path).

        Copies ``payload`` — already a valid stream of this writer's codec —
        without re-encoding, so :func:`repro.reliability.repair_store` can
        splice good records from a mirror bit-for-bit.  ``tail_shape`` seeds
        the store's trailing shape when no :meth:`append` happened first.
        """
        if self._finalized:
            raise CodecError("cannot append to a finalized store")
        self._check_open("append to")
        if self._tail_shape is None:
            self._tail_shape = tuple(tail_shape) if tail_shape is not None else None
        offset = self._handle.tell()
        self._handle.write(payload)
        self._chunks.append((offset, len(payload), n_rows, zlib.crc32(payload)))

    def _check_open(self, action: str) -> None:
        """Raise the documented :class:`CodecError` when the handle is closed.

        ``__exit__`` closes the handle on an in-``with`` exception without
        finalizing; a later manual :meth:`finalize`/:meth:`append` must surface
        the documented error type, not a raw ``ValueError`` from the closed
        file object.
        """
        if self._handle.closed:
            raise CodecError(
                f"cannot {action} a closed writer (its context block exited "
                f"after an error, so nothing was published at {self.path}); "
                "open a new writer to rewrite the store"
            )

    def finalize(self) -> None:
        """Write the chunk table, close the file and publish it at ``path``."""
        if self._finalized:
            return
        self._check_open("finalize")
        if not self._chunks:
            self._handle.close()
            self._temp_path.unlink(missing_ok=True)
            raise CodecError("cannot finalize an empty store (no chunks appended)")
        footer_offset = self._handle.tell()
        footer = struct.pack("<Q", len(self._chunks))
        for offset, n_bytes, n_rows, crc in self._chunks:
            footer += struct.pack("<QQQI", offset, n_bytes, n_rows, crc)
        shape = (sum(rows for _, _, rows, _ in self._chunks),) + self._tail_shape
        footer += struct.pack(f"<Q{len(shape)}Q", len(shape), *shape)
        # one checksum over header + footer body, so corrupting the table (or
        # the codec name) is detected before any chunk entry is trusted
        footer += struct.pack("<I", zlib.crc32(footer, zlib.crc32(self._header)))
        footer += struct.pack("<Q", footer_offset)
        footer += _END_MAGIC
        self._handle.write(footer)
        self._handle.close()
        self._temp_path.replace(self.path)  # atomic publish at the final path
        self._finalized = True

    # ------------------------------------------------------------------ context manager
    def __enter__(self) -> "CompressedStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:  # leave a diagnosable .partial file rather than masking the error;
            # nothing is published at the final path
            self._handle.close()


class CompressedStore:
    """Read-only view of a chunked store file (format versions 1, 2 and 3).

    Chunks are read lazily: opening the store parses only the header and the
    chunk table.  :attr:`chunks_read` counts how many chunk records have been
    decoded, which the tests use to assert that region reads stay selective.

    Chunk record reads are **thread-safe**: they use positional ``os.pread``
    (falling back to a per-store seek lock where unavailable), so concurrent
    readers — a threaded executor, the serving layer — never interleave each
    other's seek/read pairs, and :attr:`chunks_read` accounting is lock-guarded.

    Reads are also **checked and retried**: version-3 records are verified
    against their table CRC-32 and raise :class:`IntegrityError` (naming the
    chunk index and store path) on mismatch, and transient failures — an
    ``OSError`` from the read, or a checksum mismatch that a re-read could
    clear — are retried per ``retry_policy`` before the error escapes.
    :attr:`read_retries` counts the retries taken, surfaced by the serving
    layer's ``stats``.

    Parameters
    ----------
    path:
        Store file to open.
    retry_policy:
        :class:`repro.reliability.RetryPolicy` for record reads, or ``None``
        to fail on the first error.  Defaults to three quick attempts
        (:data:`repro.reliability.DEFAULT_READ_RETRY`).

    Attributes
    ----------
    codec_name:
        Name of the registered codec whose streams the chunks hold
        (``"pyblaz"`` for every version-1 file).
    settings:
        The shared :class:`CompressionSettings` for pyblaz-family stores
        (parsed from the header for v1, recovered from the first chunk for
        v2/v3), ``None`` for stores of codecs without settings.
    chunk_cache:
        Optional process-wide decoded-chunk cache (the serving layer's
        :class:`repro.serving.ChunkCache`); when set, :meth:`read_chunk`
        consults it before decoding, keyed by ``(path, chunk index)``.
        ``chunks_read`` keeps counting logical reads either way, so decode
        savings show up in the cache's own hit counters.
    chunks_prefetched:
        Chunk payloads fetched ahead of consumption by the readahead pipeline
        (:mod:`repro.streaming.prefetch`) — distinct from :attr:`chunks_read`,
        which counts only chunks actually consumed, so an aborted pipeline
        shows ``chunks_prefetched > chunks_read`` instead of inflated reads.
    preads:
        Physical record reads issued (one per positional read syscall loop);
        coalesced span reads make this smaller than the chunk count, which
        the ``load_region`` syscall tests assert on.
    """

    def __init__(self, path, *, retry_policy: RetryPolicy | None = DEFAULT_READ_RETRY):
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        self.chunks_read = 0
        self.chunks_prefetched = 0
        self.preads = 0
        self.read_retries = 0
        self.chunk_cache = None
        self.retry_policy = retry_policy
        self._lock = threading.Lock()
        self._settings: CompressionSettings | None = None
        self._settings_resolved = False
        self._codec: Codec | None = None
        self._dtype: np.dtype | None = None
        try:
            self._read_header_and_table()
        except Exception:
            self._handle.close()
            raise

    def _read_header_and_table(self) -> None:
        """Parse the magic, version, codec name and chunk table (no chunk decodes)."""
        head = self._handle.read(len(STORE_MAGIC) + 1)
        if head[: len(STORE_MAGIC)] != STORE_MAGIC:
            raise CodecError("not a PyBlaz chunked store (bad magic)")
        (self.version,) = struct.unpack("<B", head[len(STORE_MAGIC) :])
        self._header_bytes = head
        if self.version == 1:
            self._read_v1_header()
        elif self.version in (2, 3):
            name_len_byte = self._handle.read(1)
            (name_len,) = struct.unpack("<B", name_len_byte)
            name = self._handle.read(name_len)
            self.codec_name = name.decode("ascii")
            self._header_bytes += name_len_byte + name
        else:
            raise CodecError(f"unsupported store version {self.version}")
        self._read_table()

    def _read_v1_header(self) -> None:
        """Parse the version-1 settings header (pyblaz-only legacy layout)."""
        # v1 settings header: type codes + block geometry (identical encoding to
        # the one-shot codec, minus the array shape, which lives in the footer)
        self.codec_name = "pyblaz"
        fixed = self._handle.read(4)
        float_format, index_dtype, transform, ndim, _ = unpack_type_codes(fixed, 0)
        geometry = self._handle.read(8 * ndim + 4)
        (mask_nbytes,) = struct.unpack_from("<I", geometry, 8 * ndim)
        geometry += self._handle.read(mask_nbytes)
        self._settings, _ = unpack_block_geometry(
            geometry, 0, ndim, float_format, index_dtype, transform
        )
        self._settings_resolved = True

    def _read_table(self) -> None:
        """Seek to the trailer, then read and validate the chunk table footer."""
        self._handle.seek(-_TRAILER_BYTES, 2)
        trailer = self._handle.read(_TRAILER_BYTES)
        if trailer[8:] != _END_MAGIC:
            raise CodecError("truncated or unfinalized PyBlaz chunked store (bad trailer)")
        (footer_offset,) = struct.unpack_from("<Q", trailer, 0)
        self._handle.seek(footer_offset)
        footer = self._handle.read()
        try:
            (n_chunks,) = struct.unpack_from("<Q", footer, 0)
            pos = 8
            # (offset, n_bytes | None, n_rows, row_start, crc | None); v1
            # derives byte counts from the settings instead of storing them,
            # and only v3 records per-chunk checksums
            self._chunks: list[tuple[int, int | None, int, int, int | None]] = []
            row_start = 0
            for _ in range(n_chunks):
                crc: int | None = None
                if self.version == 1:
                    offset, n_rows = struct.unpack_from("<QQ", footer, pos)
                    pos += 16
                    n_bytes: int | None = None
                elif self.version == 2:
                    offset, n_bytes, n_rows = struct.unpack_from("<QQQ", footer, pos)
                    pos += 24
                else:
                    offset, n_bytes, n_rows, crc = struct.unpack_from("<QQQI", footer, pos)
                    pos += 28
                self._chunks.append((offset, n_bytes, n_rows, row_start, crc))
                row_start += n_rows
            if self.version == 1:
                ndim = self._settings.ndim
            else:
                (ndim,) = struct.unpack_from("<Q", footer, pos)
                pos += 8
            self.shape = tuple(struct.unpack_from(f"<{ndim}Q", footer, pos))
            pos += 8 * ndim
        except struct.error as exc:
            # garbled counts/offsets make the footer unparseable before the
            # checksum can even be located — still a typed integrity failure
            raise IntegrityError(
                f"chunk table of store {self.path} is garbled ({exc})",
                path=str(self.path),
            ) from exc
        if self.version >= 3:
            (table_crc,) = struct.unpack_from("<I", footer, pos)
            computed = zlib.crc32(footer[:pos], zlib.crc32(self._header_bytes))
            if computed != table_crc:
                raise IntegrityError(
                    f"chunk table of store {self.path} failed its checksum "
                    f"(stored 0x{table_crc:08x}, computed 0x{computed:08x}); "
                    "the header or footer bytes are corrupt",
                    path=str(self.path),
                )
        if self.shape[0] != row_start:
            raise CodecError(
                f"corrupt chunk table: chunk rows sum to {row_start}, "
                f"stored shape is {self.shape}"
            )

    # ------------------------------------------------------------------ geometry
    @property
    def ndim(self) -> int:
        """Dimensionality of the stored array."""
        return len(self.shape)

    @property
    def n_chunks(self) -> int:
        """Number of chunk records in the store."""
        return len(self._chunks)

    @property
    def chunk_rows(self) -> tuple[int, ...]:
        """Row count of every chunk, in file order."""
        return tuple(rows for _, _, rows, _, _ in self._chunks)

    @property
    def settings(self) -> CompressionSettings | None:
        """Shared pyblaz-family settings, or ``None`` for other codecs' stores."""
        if not self._settings_resolved:
            # v2 stores carry settings inside each (self-describing) pyblaz
            # chunk stream; peek at chunk 0 without counting it as read — but
            # only for pyblaz-family codecs, so other codecs' stores never pay
            # for a chunk decode just to learn there are no settings
            if issubclass(get_codec_class(self.codec_name), PyBlazCodec):
                chunk = self._decode_chunk(0)
                self._settings = getattr(chunk, "settings", None)
            self._settings_resolved = True
        return self._settings

    @property
    def dtype(self) -> np.dtype:
        """Element dtype that chunk decompression produces for this store.

        Pyblaz-family stores (and the other built-in lossy codecs) reconstruct
        float64 by contract (:meth:`repro.core.Compressor.decompress`); codecs
        that preserve the source dtype (huffman) declare it on their decoded
        chunk objects, which is recovered from chunk 0's record without
        decompressing anything.  :meth:`load_region` uses this so empty and
        non-empty selections agree on dtype.
        """
        if self._dtype is None:
            if self.settings is not None:
                self._dtype = np.dtype(np.float64)
            else:
                declared = getattr(self._decode_chunk(0), "dtype", None)
                self._dtype = (np.dtype(declared) if declared is not None
                               else np.dtype(np.float64))
        return self._dtype

    @property
    def codec(self) -> Codec:
        """A default instance of the store's codec (decoding needs no parameters)."""
        if self._codec is None:
            self._codec = get_codec(self.codec_name)
        return self._codec

    def use_codec(self, codec: Codec) -> None:
        """Replace the codec instance used to decompress chunks.

        The replacement must decode the same stream format (same codec name);
        this exists to reconfigure *execution* choices, e.g. a pyblaz codec
        with a non-default kernel backend for faster bulk decompression.
        """
        if codec.name != self.codec_name:
            raise CodecError(
                f"store holds {self.codec_name!r} chunks; cannot decode them with "
                f"codec {codec.name!r}"
            )
        self._codec = codec

    # ------------------------------------------------------------------ chunk access
    def _read_record(self, offset: int, n_bytes: int) -> bytes:
        """Read ``n_bytes`` at ``offset``, safely under concurrent callers.

        Positional ``os.pread`` never moves a shared file position, so two
        threads reading different chunks cannot interleave and decode each
        other's bytes; the non-POSIX fallback serializes seek+read behind the
        store lock instead.  Short positional reads (signal interruption) are
        retried until the record is complete.  Each call counts one physical
        read into :attr:`preads` (coalesced span reads issue one per span).
        """
        with self._lock:
            self.preads += 1
        if _HAVE_PREAD:
            fd = self._handle.fileno()
            pieces = []
            position, remaining = offset, n_bytes
            while remaining > 0:
                piece = os.pread(fd, remaining, position)
                if not piece:
                    break  # EOF: return short; the decoder reports corruption
                pieces.append(piece)
                position += len(piece)
                remaining -= len(piece)
            return b"".join(pieces)
        with self._lock:
            self._handle.seek(offset)
            return self._handle.read(n_bytes)

    def _note_retry(self, attempt: int, exc: BaseException) -> None:
        """Count one record-read retry (surfaced via serving ``stats``)."""
        with self._lock:
            self.read_retries += 1

    def _note_prefetched(self, count: int) -> None:
        """Count ``count`` payloads fetched ahead by the readahead pipeline."""
        with self._lock:
            self.chunks_prefetched += count

    def _note_read(self) -> None:
        """Count one consumed (logical) chunk read, as :meth:`read_chunk` does."""
        with self._lock:
            self.chunks_read += 1

    def _record_extent(self, index: int) -> tuple[int, int, int | None]:
        """Chunk ``index``'s file extent as ``(offset, n_bytes, crc | None)``.

        Version-1 stores derive the byte count from the shared settings (the
        table stores only offsets); v2 records have no checksum.  This is what
        the span coalescer groups on.
        """
        offset, n_bytes, n_rows, _, crc = self._chunks[index]
        if n_bytes is None:  # v1: byte count derives from the settings
            settings = self._settings
            chunk_shape = (n_rows,) + self.shape[1:]
            n_blocks = settings.n_blocks(chunk_shape)
            n_bytes = float_bytes(n_blocks, settings.float_format) + (
                n_blocks * settings.kept_per_block * settings.index_dtype.itemsize
            )
        return offset, n_bytes, crc

    def read_payload(self, index: int) -> bytes:
        """Read (and for v3, verify) chunk ``index``'s raw record bytes.

        This is the one seam every chunk read goes through: fault-injection
        hooks fire here, version-3 checksums are verified here, and transient
        failures — an ``OSError``, or a checksum mismatch a re-read could
        clear — are retried per :attr:`retry_policy`.  The verify/repair CLI
        also uses it to copy good records verbatim.
        """
        offset, n_bytes, crc = self._record_extent(index)
        path = str(self.path)

        def attempt() -> bytes:
            plan = faults.active_plan()
            if plan is not None:
                plan.before_chunk_read(path, index)
            data = self._read_record(offset, n_bytes)
            if plan is not None:
                data = plan.corrupt_record(path, index, data)
            if crc is not None and (len(data) != n_bytes or zlib.crc32(data) != crc):
                raise IntegrityError(
                    f"chunk {index} of store {path} failed its checksum "
                    f"({len(data)} of {n_bytes} bytes read)",
                    path=path,
                    chunk_index=index,
                )
            return data

        if self.retry_policy is None:
            return attempt()
        retry_on = (OSError,) if crc is None else (OSError, IntegrityError)
        return retry_call(
            attempt, policy=self.retry_policy, retry_on=retry_on,
            on_retry=self._note_retry,
        )

    def read_payload_span(self, indices) -> dict[int, bytes]:
        """Read several chunks' record bytes, coalescing adjacent ones.

        Adjacent records (within the coalescing budget) merge into **one**
        positional read and are split in memory — the syscall-count win behind
        the prefetch pipeline and the coalesced :meth:`load_region`.  The
        semantics per chunk are exactly :meth:`read_payload`'s: fault hooks
        fire per chunk index, version-3 CRCs verify per chunk, and any failure
        inside a span falls back to the per-chunk seam with its full retry
        policy (counting one retry for the failed span attempt).  Returns
        ``{index: payload bytes}`` for every requested index.
        """
        from .prefetch import coalesce_spans

        extents = [(index, *self._record_extent(index)[:2]) for index in indices]
        crcs = {index: self._record_extent(index)[2] for index in indices}
        path = str(self.path)
        payloads: dict[int, bytes] = {}
        for span in coalesce_spans(extents):
            span_offset = span[0][1]
            span_bytes = sum(n_bytes for _, _, n_bytes in span)
            try:
                plan = faults.active_plan()
                if plan is not None:
                    for index, _, _ in span:
                        plan.before_chunk_read(path, index)
                data = self._read_record(span_offset, span_bytes)
                for index, offset, n_bytes in span:
                    piece = data[offset - span_offset: offset - span_offset + n_bytes]
                    if plan is not None:
                        piece = plan.corrupt_record(path, index, piece)
                    crc = crcs[index]
                    if crc is not None and (
                        len(piece) != n_bytes or zlib.crc32(piece) != crc
                    ):
                        raise IntegrityError(
                            f"chunk {index} of store {path} failed its checksum "
                            f"({len(piece)} of {n_bytes} bytes read)",
                            path=path,
                            chunk_index=index,
                        )
                    payloads[index] = piece
            except (OSError, IntegrityError) as exc:
                if self.retry_policy is None:
                    raise
                # one failed span attempt counts as one retry, then every
                # chunk of the span re-reads through the per-chunk seam with
                # its own full retry budget — transient faults recover exactly
                # as they do on the synchronous path
                self._note_retry(0, exc)
                for index, _, _ in span:
                    payloads[index] = self.read_payload(index)
        return payloads

    def _decode_chunk(self, index: int):
        """Read chunk ``index``'s record and decode it (without counting it as read)."""
        return self._chunk_from_payload(index, self.read_payload(index))

    def _chunk_from_payload(self, index: int, data: bytes):
        """Decode chunk ``index`` from its (already read) record ``data``.

        The decode half of :meth:`_decode_chunk`, split out so the prefetch
        pipeline can fetch payload bytes on worker threads and decode on the
        consumer thread without re-reading.
        """
        try:
            if self.version == 1:
                return self._decode_v1_payload(index, data)
            return get_codec_class(self.codec_name).from_bytes(data)
        except CodecError:
            raise
        except DECODE_ERRORS as exc:
            # decoding failures on flipped/truncated payloads surface as the
            # shared error type, so the CLI's exit-code contract holds
            raise CodecError(
                f"corrupt chunk {index} in {self.codec_name} store: {exc}"
            ) from exc

    def _decode_v1_payload(self, index: int, data: bytes) -> CompressedArray:
        """Decode a raw version-1 maxima/indices record into a chunk array."""
        settings = self._settings
        n_rows = self._chunks[index][2]
        chunk_shape = (n_rows,) + self.shape[1:]
        n_blocks = settings.n_blocks(chunk_shape)
        maxima_nbytes = float_bytes(n_blocks, settings.float_format)
        indices_nbytes = n_blocks * settings.kept_per_block * settings.index_dtype.itemsize
        maxima = unpack_floats(data[:maxima_nbytes], n_blocks, settings.float_format)
        maxima = maxima.reshape(settings.block_grid_shape(chunk_shape))
        indices = np.frombuffer(
            data,
            dtype=settings.index_dtype.newbyteorder("<"),
            count=n_blocks * settings.kept_per_block,
            offset=maxima_nbytes,
        )
        indices = indices.astype(settings.index_dtype).reshape(
            n_blocks, settings.kept_per_block
        )
        return CompressedArray(
            settings=settings, shape=chunk_shape, maxima=maxima, indices=indices
        )

    def read_chunk(self, index: int):
        """Decode chunk ``index`` into the codec's compressed object of its slab.

        With a :attr:`chunk_cache` attached, a cached decode is reused instead
        of re-parsing the record; ``chunks_read`` counts the logical read
        either way (pass-count assertions stay meaningful, cache savings are
        visible in the cache's hit counters).
        """
        cache = self.chunk_cache
        if cache is None:
            chunk = self._decode_chunk(index)
        else:
            key = (str(self.path), index)
            chunk = cache.get(key)
            if chunk is None:
                chunk = self._decode_chunk(index)
                cache.put(key, chunk)
        with self._lock:
            self.chunks_read += 1
        return chunk

    def iter_chunks(self, *, prefetch: int | None = None) -> Iterator:
        """Yield every chunk's compressed object in row order.

        ``prefetch`` selects the pipelined readahead
        (:class:`repro.streaming.ChunkPrefetcher`): ``None`` (the default)
        enables it with an auto depth, a positive integer sets the in-flight
        span window, and ``0`` restores the strictly serial read→decode loop.
        Chunk order, values, counters and error positions are identical either
        way — prefetching only overlaps record fetches with decoding.
        """
        from .prefetch import ChunkPrefetcher, resolve_depth

        depth = resolve_depth(prefetch, n_chunks=self.n_chunks)
        if depth == 0:
            for index in range(self.n_chunks):
                yield self.read_chunk(index)
            return
        fetcher = ChunkPrefetcher(self, depth=depth)
        try:
            yield from fetcher
        finally:
            fetcher.close()

    def _iter_chunks_coalesced(self, indices) -> Iterator:
        """Serially decode ``indices``'s chunks via coalesced span reads.

        The no-thread sibling of the prefetcher used by :meth:`load_region`:
        adjacent records merge into single positional reads (fewer syscalls —
        see :attr:`preads`), cache consults and ``chunks_read`` accounting
        match :meth:`read_chunk` exactly, and chunks yield as
        ``(index, chunk)`` in request order.
        """
        from .prefetch import DEFAULT_SPAN_CHUNKS

        cache = self.chunk_cache
        path = str(self.path)
        pending: list[int] = []
        for index in indices:
            if cache is not None:
                chunk = cache.get((path, index))
                if chunk is not None:
                    yield from self._drain_span(pending)
                    pending = []
                    self._note_read()
                    yield index, chunk
                    continue
            pending.append(index)
            if len(pending) >= DEFAULT_SPAN_CHUNKS:
                # drain per span so at most one span's payloads are resident,
                # preserving load_region's chunk-bounded memory contract
                yield from self._drain_span(pending)
                pending = []
        yield from self._drain_span(pending)

    def _drain_span(self, pending: list) -> Iterator:
        """Span-read, decode, cache and count the queued-up miss indices."""
        if not pending:
            return
        payloads = self.read_payload_span(pending)
        cache = self.chunk_cache
        path = str(self.path)
        for index in pending:
            chunk = self._chunk_from_payload(index, payloads[index])
            if cache is not None:
                cache.put((path, index), chunk)
            self._note_read()
            yield index, chunk

    def decompress_chunk(self, chunk) -> np.ndarray:
        """Decompress one chunk object with the store's codec.

        The codec instance can be reconfigured with :meth:`use_codec` (e.g. a
        pyblaz codec with a non-default kernel backend).  Decompression
        failures on corrupt chunk contents are reported as :class:`CodecError`
        like decoding failures.
        """
        try:
            return self.codec.decompress(chunk)
        except CodecError:
            raise
        except DECODE_ERRORS as exc:
            raise CodecError(
                f"corrupt chunk contents in {self.codec_name} store: {exc}"
            ) from exc

    def load_compressed(self) -> CompressedArray:
        """Assemble the full :class:`CompressedArray` (bit-identical to one-shot).

        Only meaningful for pyblaz stores, whose per-slab ``maxima``/``indices``
        concatenate exactly; other codecs' chunks are independent streams.
        """
        chunks = list(self.iter_chunks())
        if not all(isinstance(chunk, CompressedArray) for chunk in chunks):
            raise CodecError(
                f"load_compressed assembles pyblaz chunks; this store holds "
                f"{self.codec_name!r} streams — use load() or iter_chunks()"
            )
        maxima = np.concatenate([chunk.maxima for chunk in chunks], axis=0)
        indices = np.concatenate([chunk.indices for chunk in chunks], axis=0)
        return CompressedArray(
            settings=chunks[0].settings, shape=self.shape, maxima=maxima, indices=indices
        )

    # ------------------------------------------------------------------ decompression
    def load(self) -> np.ndarray:
        """Decompress the whole array, one chunk at a time."""
        out: np.ndarray | None = None
        for (_, _, n_rows, row_start, _), chunk in zip(self._chunks, self.iter_chunks()):
            decompressed = self.decompress_chunk(chunk)
            if out is None:
                out = np.empty(self.shape, dtype=decompressed.dtype)
            out[row_start : row_start + n_rows] = decompressed
        return out

    def load_region(self, region) -> np.ndarray:
        """Decompress only the chunks intersecting ``region``.

        ``region`` is an index expression like ``np.ndarray`` accepts for basic
        indexing — a slice/int or a tuple of them, at most one per dimension
        (missing trailing dimensions default to ``slice(None)``).  Steps along
        axis 0 must be positive.  Only the chunk records whose rows intersect the
        axis-0 range are read and decoded; memory use is bounded by the chunk
        size, not the array size.  Adjacent intersecting records are read
        through the coalescing reader — one positional read per span instead
        of one per chunk (observable via :attr:`preads`), with byte-identical
        results.
        """
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > self.ndim:
            raise ValueError(
                f"region has {len(region)} dimensions, the store has {self.ndim}"
            )
        region = region + (slice(None),) * (self.ndim - len(region))

        first = region[0]
        squeeze_rows = isinstance(first, (int, np.integer))
        if squeeze_rows:
            index = int(first)
            if index < 0:
                index += self.shape[0]
            if not 0 <= index < self.shape[0]:
                raise IndexError(f"row {first} out of range for {self.shape[0]} rows")
            start, stop, step = index, index + 1, 1
        else:
            start, stop, step = first.indices(self.shape[0])
            if step <= 0:
                raise ValueError("load_region requires a positive step along axis 0")

        selected: list[int] = []
        local_by_index: dict[int, slice] = {}
        for chunk_index, (_, _, n_rows, row_start, _) in enumerate(self._chunks):
            row_end = row_start + n_rows
            if row_end <= start or row_start >= stop:
                continue
            # first requested row that lands inside this chunk and on the step grid
            global_first = max(start, row_start)
            remainder = (global_first - start) % step
            if remainder:
                global_first += step - remainder
            global_stop = min(stop, row_end)
            if global_first >= global_stop:
                continue
            selected.append(chunk_index)
            local_by_index[chunk_index] = slice(
                global_first - row_start, global_stop - row_start, step
            )

        parts = []
        for chunk_index, chunk in self._iter_chunks_coalesced(selected):
            decompressed = self.decompress_chunk(chunk)
            parts.append(decompressed[(local_by_index[chunk_index],) + region[1:]])

        if parts:
            assembled = np.concatenate(parts, axis=0)
        else:
            empty_rows = (0,) + self.shape[1:]
            assembled = np.empty(empty_rows, dtype=self.dtype)[(slice(None),) + region[1:]]
        return assembled[0] if squeeze_rows else assembled

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close the underlying file handle (reads fail afterwards)."""
        self._handle.close()

    def __enter__(self) -> "CompressedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        described = self.settings.describe() if self.settings is not None else "-"
        return (
            f"CompressedStore(shape={self.shape}, chunks={self.n_chunks}, "
            f"codec={self.codec_name}, {described})"
        )


def load_region(store: CompressedStore, region) -> np.ndarray:
    """Module-level convenience for :meth:`CompressedStore.load_region`."""
    return store.load_region(region)
