"""Streaming compressed-space reductions: fold over chunks, reuse ``core.ops``.

Each reduction visits one chunk's :class:`CompressedArray` at a time and combines
per-chunk results computed by the (already tested) operations in
:mod:`repro.core.ops`, so a store of any size reduces in chunk-sized memory:

* the dot product and squared L2 norm are plain sums over blocks, so they
  distribute over chunks exactly;
* the mean is a block-count-weighted average of per-chunk (padded-domain) means.

Sources may be a :class:`repro.streaming.CompressedStore` or any iterable of
chunk :class:`CompressedArray` objects (e.g. ``store.iter_chunks()``).
"""

from __future__ import annotations

import math
from itertools import zip_longest
from typing import Iterator

import numpy as np

from ..core import ops
from ..core.compressed import CompressedArray
from .store import CompressedStore

__all__ = ["stream_mean", "stream_l2_norm", "stream_dot"]


def _chunk_iter(source) -> Iterator[CompressedArray]:
    if isinstance(source, CompressedStore):
        if source.settings is None:
            from ..core.exceptions import CodecError

            raise CodecError(
                f"streaming reductions fold pyblaz chunks via core.ops; this "
                f"store holds {source.codec_name!r} streams"
            )
        return source.iter_chunks()
    return iter(source)


def stream_mean(source, *, padded: bool = True) -> float:
    """The array mean, folded chunk-by-chunk (cf. :func:`repro.core.ops.mean`).

    With ``padded=True`` (the paper's semantics) the mean is over the zero-padded
    block domain; with ``padded=False`` it is rescaled to the original element
    count.  Matches the one-shot ``ops.mean`` of the assembled array up to
    floating-point summation order.
    """
    total = 0.0
    n_blocks = 0
    n_elements = 0
    n_padded = 0
    for chunk in _chunk_iter(source):
        total += ops.mean(chunk) * chunk.n_blocks
        n_blocks += chunk.n_blocks
        n_elements += chunk.n_elements
        n_padded += chunk.n_padded_elements
    if n_blocks == 0:
        raise ValueError("cannot reduce an empty chunk stream")
    value = total / n_blocks
    if not padded:
        value *= n_padded / n_elements
    return value


def stream_l2_norm(source) -> float:
    """The L2 norm, folded chunk-by-chunk (cf. :func:`repro.core.ops.l2_norm`).

    Accumulates each chunk's squared norm via ``ops.dot(chunk, chunk)`` and takes
    one square root at the end, so no per-chunk rounding is reintroduced.
    """
    total = 0.0
    seen = False
    for chunk in _chunk_iter(source):
        total += ops.dot(chunk, chunk)
        seen = True
    if not seen:
        raise ValueError("cannot reduce an empty chunk stream")
    return math.sqrt(total)


def stream_dot(a, b) -> float:
    """The dot product of two identically chunked sources (cf. ``ops.dot``).

    The two sources must agree chunk-by-chunk in shape and settings; a
    :class:`CompressedStore` pair written with the same ``slab_rows`` satisfies
    this, and ``ops.dot`` enforces per-chunk compatibility.
    """
    total = 0.0
    seen = False
    iter_a, iter_b = _chunk_iter(a), _chunk_iter(b)
    sentinel = object()
    for chunk_a, chunk_b in zip_longest(iter_a, iter_b, fillvalue=sentinel):
        if chunk_a is sentinel or chunk_b is sentinel:
            raise ValueError("stream_dot requires identically chunked sources")
        if chunk_a.shape != chunk_b.shape:
            raise ValueError(
                f"chunk shapes differ ({chunk_a.shape} vs {chunk_b.shape}); "
                "recompress with matching slab_rows"
            )
        total += ops.dot(chunk_a, chunk_b)
        seen = True
    if not seen:
        raise ValueError("cannot reduce an empty chunk stream")
    return total
