"""Deprecated streaming-reduction aliases (superseded by :mod:`repro.streaming.ops`).

The original out-of-core layer shipped exactly three hand-rolled reductions —
``stream_mean``, ``stream_l2_norm`` and ``stream_dot``.  The generic engine in
:mod:`repro.streaming.ops` now evaluates the *whole* Table I operation set over
chunked stores via the partial-fold forms of :mod:`repro.core.ops.folds`, so
these three survive only as thin deprecation shims with their historical names
and behaviour (same sources accepted, same ``ValueError``/``CodecError``
conditions).  New code should call ``streaming.ops.mean`` /
``streaming.ops.l2_norm`` / ``streaming.ops.dot`` directly.
"""

from __future__ import annotations

import warnings

from . import ops as _ops

__all__ = ["stream_mean", "stream_l2_norm", "stream_dot"]


def _warn_deprecated(old: str, new: str) -> None:
    """Emit the shim's deprecation warning pointing at the replacement."""
    warnings.warn(
        f"{old} is deprecated; use repro.streaming.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def stream_mean(source, *, padded: bool = True) -> float:
    """Deprecated alias of :func:`repro.streaming.ops.mean` (same contract)."""
    _warn_deprecated("stream_mean", "ops.mean")
    return _ops.mean(source, padded=padded)


def stream_l2_norm(source) -> float:
    """Deprecated alias of :func:`repro.streaming.ops.l2_norm` (same contract)."""
    _warn_deprecated("stream_l2_norm", "ops.l2_norm")
    return _ops.l2_norm(source)


def stream_dot(a, b) -> float:
    """Deprecated alias of :func:`repro.streaming.ops.dot` (same contract)."""
    _warn_deprecated("stream_dot", "ops.dot")
    return _ops.dot(a, b)
