"""Reduced-precision floating-point emulation substrate.

The paper's compressor converts input data to one of ``bfloat16``, ``float16``,
``float32`` or ``float64`` before transforming it (§III-A(a)), and its shallow-water
study (§V-A) compares simulation runs carried out at different working precisions.
NumPy has no native ``bfloat16``, and we want the precision-lowering semantics to be
explicit and testable rather than an artifact of whatever dtype the backend happens
to support.  This subpackage therefore provides:

* :class:`FloatFormat` — a description of a binary floating-point format
  (significand bits, exponent bits, and the derived range/epsilon quantities).
* :data:`BFLOAT16`, :data:`FLOAT16`, :data:`FLOAT32`, :data:`FLOAT64` — the four
  formats PyBlaz supports.
* :func:`round_to_format` — round a float64 array to a format, reproducing the
  significand truncation, overflow-to-infinity and subnormal behaviour of a cast.
* :func:`quantize_model` / :class:`PrecisionEmulator` — convenience wrappers used by
  the shallow-water simulator to run an entire state update at an emulated precision.

All functions are pure and vectorized over numpy arrays.
"""

from .formats import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    FLOAT64,
    FORMATS_BY_NAME,
    FloatFormat,
    resolve_format,
)
from .rounding import PrecisionEmulator, machine_epsilon, round_to_format, ulp

__all__ = [
    "FloatFormat",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FLOAT64",
    "FORMATS_BY_NAME",
    "resolve_format",
    "round_to_format",
    "machine_epsilon",
    "ulp",
    "PrecisionEmulator",
]
