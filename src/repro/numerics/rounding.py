"""Round float64 arrays to reduced-precision formats.

The compressor's first step (§III-A(a)) lowers the working precision of the input
array; the shallow-water experiment (§V-A) runs an entire simulation at a lowered
precision.  Both are implemented here as explicit rounding operations on float64
arrays so their error contribution is reproducible and directly testable.

For the formats numpy implements natively (float16/32/64) rounding is a round-trip
cast.  ``bfloat16`` is emulated bit-exactly by round-to-nearest-even on the upper
16 bits of the float32 representation — the same rule hardware bfloat16 units use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .formats import BFLOAT16, FLOAT64, FloatFormat, resolve_format

__all__ = ["round_to_format", "machine_epsilon", "ulp", "PrecisionEmulator"]


def _round_to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float values to bfloat16 (round-to-nearest-even), returned as float32.

    The result is exactly representable in bfloat16: the low 16 bits of its float32
    pattern are zero.  NaNs are preserved; values exceeding the (float32-like)
    bfloat16 range become infinities, matching a hardware cast.
    """
    as32 = np.asarray(values, dtype=np.float32)
    bits = as32.view(np.uint32)
    # round-to-nearest-even on the 16 low bits we are about to drop
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    # NaN payloads must stay NaN: re-set a quiet NaN where the input was NaN
    result = rounded.view(np.float32).copy()
    nan_mask = np.isnan(as32)
    if np.any(nan_mask):
        result[nan_mask] = np.float32(np.nan)
    return result


def round_to_format(values: np.ndarray, fmt: FloatFormat | str) -> np.ndarray:
    """Round ``values`` to ``fmt`` and return them as a float64 array.

    The returned array contains only values exactly representable in ``fmt``
    (plus infinities/NaNs produced by overflow), but is stored at float64 so that
    subsequent arithmetic does not accumulate further format error.

    Parameters
    ----------
    values:
        Input array (any real dtype).
    fmt:
        Target format or its name.
    """
    fmt = resolve_format(fmt)
    values = np.asarray(values)
    if fmt.numpy_dtype is not None and values.dtype == fmt.numpy_dtype:
        # already exactly representable in fmt: the round-trip cast is the
        # identity, so a single widening cast suffices (hot-path shortcut for
        # e.g. float32 inputs compressed at float32 working precision)
        return values.astype(np.float64)
    arr = np.asarray(values, dtype=np.float64)
    if fmt is FLOAT64 or fmt.name == "float64":
        return arr.copy()
    if fmt is BFLOAT16 or fmt.name == "bfloat16":
        return _round_to_bfloat16(arr).astype(np.float64)
    assert fmt.numpy_dtype is not None
    with np.errstate(over="ignore", invalid="ignore"):
        return arr.astype(fmt.numpy_dtype).astype(np.float64)


def machine_epsilon(fmt: FloatFormat | str) -> float:
    """Machine epsilon (gap between 1.0 and the next representable value) of ``fmt``."""
    return resolve_format(fmt).machine_epsilon


def ulp(values: np.ndarray, fmt: FloatFormat | str) -> np.ndarray:
    """Unit-in-the-last-place spacing of ``fmt`` at each element of ``values``.

    Useful for asserting that rounding error stays below half an ulp.
    Zeros map to the smallest subnormal spacing; non-finite values map to NaN.
    """
    fmt = resolve_format(fmt)
    arr = np.abs(np.asarray(values, dtype=np.float64))
    out = np.full(arr.shape, np.nan)
    finite = np.isfinite(arr)
    mag = np.where(arr[finite] == 0.0, fmt.smallest_normal, arr[finite])
    exponent = np.floor(np.log2(mag))
    exponent = np.clip(exponent, fmt.min_exponent, fmt.max_exponent)
    out[finite] = 2.0 ** (exponent - fmt.fraction_bits)
    return out


@dataclass
class PrecisionEmulator:
    """Applies format rounding after every arithmetic step of a simulation.

    The shallow-water solver calls :meth:`apply` on each updated state array so
    that the entire run behaves as if it had been carried out in ``fmt``.  With
    ``fmt`` = float64 the emulator is the identity, which keeps the solver code
    free of special cases.

    Attributes
    ----------
    fmt:
        Target working precision.
    count_roundings:
        When True, :attr:`rounding_calls` counts how many arrays were rounded,
        which tests use to verify the emulator is actually exercised.
    """

    fmt: FloatFormat
    count_roundings: bool = False
    rounding_calls: int = 0

    def __init__(self, fmt: FloatFormat | str, count_roundings: bool = False):
        object.__setattr__ if False else None  # keep dataclass semantics simple
        self.fmt = resolve_format(fmt)
        self.count_roundings = count_roundings
        self.rounding_calls = 0

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to the emulated precision."""
        if self.count_roundings:
            self.rounding_calls += 1
        if self.fmt is FLOAT64:
            return np.asarray(values, dtype=np.float64)
        return round_to_format(values, self.fmt)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.apply(values)
