"""Descriptions of the binary floating-point formats PyBlaz supports.

A :class:`FloatFormat` captures the parameters of an IEEE-754-style binary format:
the number of stored significand (fraction) bits, the number of exponent bits, and
everything derivable from those two (bias, maximum finite value, smallest normal,
machine epsilon).  The four formats used by the paper are provided as module-level
constants.

``bfloat16`` is not an IEEE interchange format but follows the same construction
(1 sign bit, 8 exponent bits, 7 fraction bits); it shares float32's exponent range
and therefore "avoids NaNs because of its longer exponent" as §V-B puts it, while
having a much shorter significand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FloatFormat",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FLOAT64",
    "FORMATS_BY_NAME",
    "resolve_format",
]


@dataclass(frozen=True)
class FloatFormat:
    """Parameters of a binary floating-point format.

    Parameters
    ----------
    name:
        Canonical lower-case name, e.g. ``"bfloat16"``.
    fraction_bits:
        Number of explicitly stored significand bits (not counting the hidden bit).
    exponent_bits:
        Number of exponent bits.
    storage_bits:
        Total storage width in bits (1 sign bit + exponent + fraction, possibly
        padded); used for compressed-size accounting.
    numpy_dtype:
        The numpy dtype natively implementing this format, or ``None`` when the
        format must be emulated (bfloat16).
    """

    name: str
    fraction_bits: int
    exponent_bits: int
    storage_bits: int
    numpy_dtype: np.dtype | None = field(default=None, compare=False)

    # ------------------------------------------------------------------ derived
    @property
    def precision_bits(self) -> int:
        """Significand precision including the hidden leading bit."""
        return self.fraction_bits + 1

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        return (1 << self.exponent_bits) - 2 - self.exponent_bias

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.exponent_bias

    @property
    def machine_epsilon(self) -> float:
        """Gap between 1.0 and the next representable number."""
        return float(2.0 ** (-self.fraction_bits))

    @property
    def max_finite(self) -> float:
        """Largest representable finite magnitude."""
        return float((2.0 - 2.0 ** (-self.fraction_bits)) * 2.0 ** self.max_exponent)

    @property
    def smallest_normal(self) -> float:
        return float(2.0 ** self.min_exponent)

    @property
    def smallest_subnormal(self) -> float:
        return float(2.0 ** (self.min_exponent - self.fraction_bits))

    @property
    def is_native(self) -> bool:
        """Whether numpy implements this format natively."""
        return self.numpy_dtype is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BFLOAT16 = FloatFormat("bfloat16", fraction_bits=7, exponent_bits=8, storage_bits=16)
FLOAT16 = FloatFormat(
    "float16", fraction_bits=10, exponent_bits=5, storage_bits=16, numpy_dtype=np.dtype(np.float16)
)
FLOAT32 = FloatFormat(
    "float32", fraction_bits=23, exponent_bits=8, storage_bits=32, numpy_dtype=np.dtype(np.float32)
)
FLOAT64 = FloatFormat(
    "float64", fraction_bits=52, exponent_bits=11, storage_bits=64, numpy_dtype=np.dtype(np.float64)
)

FORMATS_BY_NAME: dict[str, FloatFormat] = {
    "bfloat16": BFLOAT16,
    "bf16": BFLOAT16,
    "float16": FLOAT16,
    "fp16": FLOAT16,
    "half": FLOAT16,
    "float32": FLOAT32,
    "fp32": FLOAT32,
    "single": FLOAT32,
    "float64": FLOAT64,
    "fp64": FLOAT64,
    "double": FLOAT64,
}


def resolve_format(spec: "FloatFormat | str | np.dtype | type") -> FloatFormat:
    """Resolve a user-provided format specification to a :class:`FloatFormat`.

    Accepts an existing :class:`FloatFormat`, a name (``"fp16"``, ``"bfloat16"``,
    ``"float32"`` ...), a numpy dtype, or a numpy scalar type.

    Raises
    ------
    ValueError
        If the specification does not name a supported format.
    """
    if isinstance(spec, FloatFormat):
        return spec
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in FORMATS_BY_NAME:
            return FORMATS_BY_NAME[key]
        raise ValueError(f"unknown float format {spec!r}")
    try:
        dtype = np.dtype(spec)
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValueError(f"cannot interpret {spec!r} as a float format") from exc
    for fmt in (FLOAT16, FLOAT32, FLOAT64):
        if fmt.numpy_dtype == dtype:
            return fmt
    raise ValueError(f"unsupported float dtype {dtype}")
