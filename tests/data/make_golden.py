"""Regenerate the golden-file fixtures for the codec format-stability test.

Run from the repository root::

    PYTHONPATH=src python tests/data/make_golden.py

This should only ever be run when the stream format version is deliberately
bumped; the whole point of the fixture is that ordinary changes must NOT alter
the bytes ``serialize`` produces for version-2 streams, and the accompanying
test fails loudly if they do.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import CompressionSettings, Compressor, low_frequency_mask
from repro.core.codec import save

DATA_DIR = Path(__file__).parent


def golden_input() -> np.ndarray:
    """A fixed 10×12 field whose shape forces padding in both dimensions."""
    rows = np.arange(10, dtype=np.float64).reshape(-1, 1)
    cols = np.arange(12, dtype=np.float64).reshape(1, -1)
    return 0.25 * rows - 0.125 * cols + 0.0625 * rows * cols - 3.0


def golden_settings() -> CompressionSettings:
    return CompressionSettings(
        block_shape=(4, 4),
        float_format="float32",
        index_dtype="int16",
        transform="dct",
        pruning_mask=low_frequency_mask((4, 4), 0.5),
    )


def main() -> None:
    compressed = Compressor(golden_settings()).compress(golden_input())
    save(compressed, DATA_DIR / "golden_v2.pyblaz")
    np.savez(
        DATA_DIR / "golden_v2_expected.npz",
        shape=np.asarray(compressed.shape, dtype=np.int64),
        maxima=compressed.maxima,
        indices=compressed.indices,
        decompressed=Compressor(golden_settings()).decompress(compressed),
    )
    print(f"wrote golden_v2.pyblaz ({(DATA_DIR / 'golden_v2.pyblaz').stat().st_size} bytes)")


if __name__ == "__main__":
    main()
