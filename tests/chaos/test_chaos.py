"""Chaos suite: every fault class at every seam, asserting the reliability
contract — an injected fault yields either a bitwise-correct result after
retry/degradation or a clean typed error, never a hang and never a silent
wrong scalar.  All fault plans are seeded, so each run replays identically.

Run by the CI chaos-smoke job: ``pytest tests/chaos -q``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.kernels import backend_is_available
from repro.parallel import ProcessExecutor
from repro.reliability import (
    FaultRule,
    IntegrityError,
    RetryPolicy,
    WorkerCrashError,
    inject,
)
from repro.streaming import ChunkedCompressor, CompressedStore, ShardedStore
from tests.conftest import smooth_field

_FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.001, seed=0)


@pytest.fixture
def store(tmp_path):
    settings = CompressionSettings(block_shape=(4, 4), float_format="float32",
                                   index_dtype="int16")
    chunked = ChunkedCompressor(settings, slab_rows=8)
    opened = chunked.compress_to_store(smooth_field((24, 16), seed=21),
                                       tmp_path / "chaos.pblzc")
    yield opened
    opened.close()


def _reopen(store, retry_policy=_FAST_RETRY) -> CompressedStore:
    return CompressedStore(store.path, retry_policy=retry_policy)


class TestReadFaults:
    """Store-read faults: transient ones retry to bitwise-identical bytes,
    persistent ones surface as typed errors naming the chunk."""

    @pytest.mark.parametrize("kind", ["os_error", "bit_flip", "short_read",
                                      "latency"])
    def test_transient_fault_retries_to_bitwise_identical(self, store, kind):
        baseline = store.load()  # fault-off reference
        rule = FaultRule(kind, chunk_index=1, delay_seconds=0.01)
        with inject(rule, seed=3) as plan:
            with _reopen(store) as faulted:
                assert np.array_equal(faulted.load(), baseline)
                expected_retries = 0 if kind == "latency" else 1
                assert faulted.read_retries == expected_retries
        assert plan.fired[kind] == 1  # the fault really happened

    @pytest.mark.parametrize("kind", ["bit_flip", "short_read"])
    def test_persistent_corruption_is_a_typed_error(self, store, kind):
        rule = FaultRule(kind, chunk_index=1, times=50)
        with inject(rule, seed=3):
            with _reopen(store) as faulted:
                with pytest.raises(IntegrityError, match="chunk 1") as info:
                    faulted.load()
                assert info.value.chunk_index == 1

    def test_persistent_os_error_exhausts_retries(self, store):
        with inject(FaultRule("os_error", chunk_index=0, times=50), seed=3):
            with _reopen(store) as faulted:
                with pytest.raises(OSError):
                    faulted.read_payload(0)
                assert faulted.read_retries == _FAST_RETRY.attempts - 1

    def test_engine_results_identical_with_faults_retried(self, store):
        baseline = engine.evaluate({"m": expr.mean(store),
                                    "n": expr.l2_norm(store)})
        rules = [FaultRule("os_error", chunk_index=0),
                 FaultRule("bit_flip", chunk_index=2)]
        with inject(*rules, seed=3) as plan:
            with _reopen(store) as faulted:
                chaotic = engine.evaluate({"m": expr.mean(faulted),
                                           "n": expr.l2_norm(faulted)})
        assert chaotic == baseline  # scalar-exact: no silent wrong value
        assert plan.fired["os_error"] == 1 and plan.fired["bit_flip"] == 1


def _square_job(value):
    return value * value


class TestWorkerCrashes:
    """A pooled worker hard-exiting surfaces as WorkerCrashError naming the
    batch, and the retried (fault-consumed) run gives correct results."""

    def test_map_jobs_crash_is_typed_then_retries_clean(self):
        executor = ProcessExecutor(n_workers=2)
        jobs = [(v,) for v in range(6)]
        with inject(FaultRule("worker_crash", job_index=2), seed=3) as plan:
            with pytest.raises(WorkerCrashError) as info:
                executor.map_jobs(_square_job, jobs)
            assert info.value.n_jobs == 6
            assert info.value.job_index is not None
            assert "retry" in str(info.value)
            # the rule fired once and is consumed: the retry succeeds
            assert executor.map_jobs(_square_job, jobs) == [0, 1, 4, 9, 16, 25]
        assert plan.fired["worker_crash"] == 1

    def test_imap_jobs_crash_is_typed(self):
        executor = ProcessExecutor(n_workers=2)
        jobs = [(v,) for v in range(6)]
        with inject(FaultRule("worker_crash", job_index=0), seed=3):
            with pytest.raises(WorkerCrashError):
                list(executor.imap_jobs(_square_job, jobs))
            assert list(executor.imap_jobs(_square_job, jobs)) == [
                0, 1, 4, 9, 16, 25,
            ]

    def test_single_job_inline_path_is_never_armed(self):
        # one job runs on the calling thread; arming it would kill the caller
        executor = ProcessExecutor(n_workers=2)
        with inject(FaultRule("worker_crash"), seed=3) as plan:
            assert executor.map_jobs(_square_job, [(3,)]) == [9]
        assert plan.fired["worker_crash"] == 0


@pytest.mark.skipif(not backend_is_available("gemm"),
                    reason="gemm backend unavailable")
class TestCompiledKernelFaults:
    """A compiled kernel failing at runtime degrades to the interpreter
    mid-sweep with identical results, recorded in the execution report."""

    def test_kernel_fault_degrades_to_interpreter_bitwise(self, store):
        outputs = {"m": expr.mean(store), "v": expr.variance(store)}
        baseline = engine.plan(outputs).execute()  # interpreted reference

        plan = engine.plan(outputs, backend="gemm")
        with inject(FaultRule("compiled_kernel"), seed=3) as faultplan:
            degraded = plan.execute(backend="gemm")
        assert faultplan.fired["compiled_kernel"] == 1
        assert plan.last_execution["runtime_fallbacks"] == 1
        assert "failed at runtime" in plan.last_execution["fallback_reason"]
        assert degraded == pytest.approx(baseline, rel=1e-6)

    def test_fault_off_compiled_run_records_no_fallback(self, store):
        plan = engine.plan({"m": expr.mean(store)}, backend="gemm")
        plan.execute(backend="gemm")
        assert plan.last_execution["runtime_fallbacks"] == 0

    def test_mixed_groups_count_one_fallback_two_interpreted(self, store, tmp_path):
        # regression: with a structural group already interpreting, a runtime
        # kernel fault in the *compiled* group must record exactly one
        # fallback and leave both groups interpreted — the fallback counter
        # must not absorb (or be absorbed by) the born-interpreted group
        other = ChunkedCompressor(store.settings, slab_rows=8).compress_to_store(
            smooth_field((24, 16), seed=22), tmp_path / "other.pblzc"
        )
        with other:
            outputs = {"a": expr.mean(store),
                       "b": expr.mean(expr.scale(expr.source(other), 2.0))}
            baseline = engine.plan(outputs).execute()
            plan = engine.plan(outputs, backend="gemm")
            with inject(FaultRule("compiled_kernel"), seed=3) as faultplan:
                degraded = plan.execute(backend="gemm")
            stats = plan.last_execution
        assert faultplan.fired["compiled_kernel"] == 1
        assert stats["compiled_groups"] == 0
        assert stats["interpreted_groups"] == 2
        assert stats["runtime_fallbacks"] == 1
        assert "failed at runtime" in stats["fallback_reason"]
        assert degraded == baseline  # both groups interpreted: bit-identical


class TestShardedStoreCorruption:
    """On-disk corruption of one shard (the CI job's ``dd`` scenario) is
    detected by ``repro verify-store`` naming the shard *and* chunk, repaired
    from a mirror replica, and the repaired store keeps serving incremental
    answers bit-identical to the pre-corruption ones."""

    def _grown_with_mirror(self, tmp_path):
        import shutil

        from repro.streaming import append_shard, init_sharded_store

        settings = CompressionSettings(block_shape=(4, 4),
                                       float_format="float32",
                                       index_dtype="int16")
        path = tmp_path / "grown.shards"
        init_sharded_store(path, smooth_field((16, 8), seed=31), settings,
                           slab_rows=8).close()
        append_shard(path, smooth_field((8, 8), seed=32), slab_rows=8).close()
        mirror = tmp_path / "mirror.shards"
        shutil.copytree(path, mirror)
        return path, mirror

    def _flip_chunk_bytes(self, path, shard_index, chunk_index) -> None:
        """Overwrite 8 bytes inside one chunk record, as CI does with dd."""
        from repro.streaming.sharded import shard_filename

        shard_path = path / shard_filename(shard_index)
        with CompressedStore(shard_path) as shard:
            offset, n_bytes, _, _, _ = shard._chunks[chunk_index]
        with open(shard_path, "r+b") as handle:
            handle.seek(offset + n_bytes // 2)
            handle.write(b"\xff" * 8)

    def test_cli_detects_names_shard_and_chunk_then_repairs(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path, mirror = self._grown_with_mirror(tmp_path)
        with ShardedStore(path) as store:
            expected = engine.plan({"m": expr.mean(expr.source(store)),
                                    "n": expr.l2_norm(expr.source(store))}).execute()
        self._flip_chunk_bytes(path, shard_index=1, chunk_index=0)

        # detection: exit 3, output names exactly the damaged shard and chunk
        assert cli_main(["verify-store", str(path)]) == 3
        scan = capsys.readouterr().out
        assert "shard 1 (shard-000001.pblzc)" in scan
        assert "chunk 0: CORRUPT" in scan
        flagged = [line for line in scan.splitlines() if line.startswith("shard")
                   and ("CORRUPT" in line or "MISMATCH" in line)]
        assert flagged and all(line.startswith("shard 1") for line in flagged)
        assert "store CORRUPT (1 bad shard(s))" in scan

        # repair from the mirror replica: exit 0 and a clean re-scan
        assert cli_main(["verify-store", str(path),
                         "--repair-from", str(mirror)]) == 0
        captured = capsys.readouterr()
        assert "repaired 1 chunk(s)" in captured.err
        assert "shard 1 chunk 0" in captured.err
        assert cli_main(["verify-store", str(path)]) == 0
        capsys.readouterr()

        # the repaired store still serves incrementally, bit-identical
        with ShardedStore(path) as repaired:
            assert repaired.partials_fresh()
            plan = engine.plan({"m": expr.mean(expr.source(repaired)),
                                "n": expr.l2_norm(expr.source(repaired))})
            assert plan.execute() == expected
            assert plan.last_execution["incremental_groups"] == 1

    def test_faulted_shard_reads_retry_to_identical(self, tmp_path):
        # the PR 8 injection harness composes with sharded reads: a transient
        # bit flip inside one shard retries to bitwise-identical bytes
        path, _ = self._grown_with_mirror(tmp_path)
        with ShardedStore(path, use_partials=False,
                          retry_policy=_FAST_RETRY) as store:
            baseline = store.load()
        rule = FaultRule("bit_flip", chunk_index=0)
        with inject(rule, seed=3) as plan:
            with ShardedStore(path, use_partials=False,
                              retry_policy=_FAST_RETRY) as faulted:
                assert np.array_equal(faulted.load(), baseline)
                assert faulted.read_retries == 1
        assert plan.fired["bit_flip"] == 1


class TestPrefetchChaos:
    """Fault injection composes with the readahead pipeline (PR 10): a fault
    inside a prefetched span either retries to bit-identical chunks or
    surfaces the same typed error as the serial loop — and an aborted
    pipeline never leaks its fetch threads."""

    @staticmethod
    def _decoded(store, *, prefetch):
        return [store.decompress_chunk(chunk).tobytes()
                for chunk in store.iter_chunks(prefetch=prefetch)]

    @pytest.mark.parametrize("kind", ["latency", "short_read", "bit_flip"])
    def test_transient_fault_in_span_retries_to_identical(self, store, kind):
        baseline = self._decoded(store, prefetch=0)
        rule = FaultRule(kind, chunk_index=1, delay_seconds=0.005)
        with inject(rule, seed=3) as plan:
            with _reopen(store) as faulted:
                assert self._decoded(faulted, prefetch=4) == baseline
                expected_retries = 0 if kind == "latency" else 1
                assert faulted.read_retries == expected_retries
        assert plan.fired[kind] == 1  # the fault hit the prefetched span

    @pytest.mark.parametrize("kind", ["bit_flip", "short_read"])
    def test_persistent_corruption_is_typed_under_prefetch(self, store, kind):
        rule = FaultRule(kind, chunk_index=1, times=50)
        with inject(rule, seed=3):
            with _reopen(store) as faulted:
                with pytest.raises(IntegrityError, match="chunk 1") as info:
                    self._decoded(faulted, prefetch=4)
                assert info.value.chunk_index == 1

    def test_no_retry_policy_surfaces_span_fault(self, store):
        # without a retry policy the span's first error propagates, exactly
        # like the serial loop's contract
        with inject(FaultRule("bit_flip", chunk_index=0, times=50), seed=3):
            with CompressedStore(store.path, retry_policy=None) as faulted:
                with pytest.raises(IntegrityError):
                    self._decoded(faulted, prefetch=4)

    def test_aborted_pipeline_under_faults_leaks_no_threads(self, store):
        import threading

        baseline_threads = threading.active_count()
        rule = FaultRule("latency", delay_seconds=0.005, times=50)
        with inject(rule, seed=3):
            with _reopen(store) as faulted:
                iterator = faulted.iter_chunks(prefetch=4)
                next(iterator)
                iterator.close()  # mid-pipeline abort with spans in flight
                assert faulted.chunks_prefetched > faulted.chunks_read
        assert threading.active_count() == baseline_threads

    def test_engine_sweep_with_prefetch_matches_under_faults(self, store):
        baseline = engine.evaluate({"m": expr.mean(store),
                                    "n": expr.l2_norm(store)})
        rules = [FaultRule("os_error", chunk_index=0),
                 FaultRule("bit_flip", chunk_index=2)]
        with inject(*rules, seed=3) as plan:
            with _reopen(store) as faulted:
                chaotic = engine.evaluate({"m": expr.mean(faulted),
                                           "n": expr.l2_norm(faulted)},
                                          prefetch=4)
        assert chaotic == baseline  # scalar-exact through the pipeline
        assert plan.fired["os_error"] == 1 and plan.fired["bit_flip"] == 1
