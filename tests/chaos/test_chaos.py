"""Chaos suite: every fault class at every seam, asserting the reliability
contract — an injected fault yields either a bitwise-correct result after
retry/degradation or a clean typed error, never a hang and never a silent
wrong scalar.  All fault plans are seeded, so each run replays identically.

Run by the CI chaos-smoke job: ``pytest tests/chaos -q``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.kernels import backend_is_available
from repro.parallel import ProcessExecutor
from repro.reliability import (
    FaultRule,
    IntegrityError,
    RetryPolicy,
    WorkerCrashError,
    inject,
)
from repro.streaming import ChunkedCompressor, CompressedStore
from tests.conftest import smooth_field

_FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.001, seed=0)


@pytest.fixture
def store(tmp_path):
    settings = CompressionSettings(block_shape=(4, 4), float_format="float32",
                                   index_dtype="int16")
    chunked = ChunkedCompressor(settings, slab_rows=8)
    opened = chunked.compress_to_store(smooth_field((24, 16), seed=21),
                                       tmp_path / "chaos.pblzc")
    yield opened
    opened.close()


def _reopen(store, retry_policy=_FAST_RETRY) -> CompressedStore:
    return CompressedStore(store.path, retry_policy=retry_policy)


class TestReadFaults:
    """Store-read faults: transient ones retry to bitwise-identical bytes,
    persistent ones surface as typed errors naming the chunk."""

    @pytest.mark.parametrize("kind", ["os_error", "bit_flip", "short_read",
                                      "latency"])
    def test_transient_fault_retries_to_bitwise_identical(self, store, kind):
        baseline = store.load()  # fault-off reference
        rule = FaultRule(kind, chunk_index=1, delay_seconds=0.01)
        with inject(rule, seed=3) as plan:
            with _reopen(store) as faulted:
                assert np.array_equal(faulted.load(), baseline)
                expected_retries = 0 if kind == "latency" else 1
                assert faulted.read_retries == expected_retries
        assert plan.fired[kind] == 1  # the fault really happened

    @pytest.mark.parametrize("kind", ["bit_flip", "short_read"])
    def test_persistent_corruption_is_a_typed_error(self, store, kind):
        rule = FaultRule(kind, chunk_index=1, times=50)
        with inject(rule, seed=3):
            with _reopen(store) as faulted:
                with pytest.raises(IntegrityError, match="chunk 1") as info:
                    faulted.load()
                assert info.value.chunk_index == 1

    def test_persistent_os_error_exhausts_retries(self, store):
        with inject(FaultRule("os_error", chunk_index=0, times=50), seed=3):
            with _reopen(store) as faulted:
                with pytest.raises(OSError):
                    faulted.read_payload(0)
                assert faulted.read_retries == _FAST_RETRY.attempts - 1

    def test_engine_results_identical_with_faults_retried(self, store):
        baseline = engine.evaluate({"m": expr.mean(store),
                                    "n": expr.l2_norm(store)})
        rules = [FaultRule("os_error", chunk_index=0),
                 FaultRule("bit_flip", chunk_index=2)]
        with inject(*rules, seed=3) as plan:
            with _reopen(store) as faulted:
                chaotic = engine.evaluate({"m": expr.mean(faulted),
                                           "n": expr.l2_norm(faulted)})
        assert chaotic == baseline  # scalar-exact: no silent wrong value
        assert plan.fired["os_error"] == 1 and plan.fired["bit_flip"] == 1


def _square_job(value):
    return value * value


class TestWorkerCrashes:
    """A pooled worker hard-exiting surfaces as WorkerCrashError naming the
    batch, and the retried (fault-consumed) run gives correct results."""

    def test_map_jobs_crash_is_typed_then_retries_clean(self):
        executor = ProcessExecutor(n_workers=2)
        jobs = [(v,) for v in range(6)]
        with inject(FaultRule("worker_crash", job_index=2), seed=3) as plan:
            with pytest.raises(WorkerCrashError) as info:
                executor.map_jobs(_square_job, jobs)
            assert info.value.n_jobs == 6
            assert info.value.job_index is not None
            assert "retry" in str(info.value)
            # the rule fired once and is consumed: the retry succeeds
            assert executor.map_jobs(_square_job, jobs) == [0, 1, 4, 9, 16, 25]
        assert plan.fired["worker_crash"] == 1

    def test_imap_jobs_crash_is_typed(self):
        executor = ProcessExecutor(n_workers=2)
        jobs = [(v,) for v in range(6)]
        with inject(FaultRule("worker_crash", job_index=0), seed=3):
            with pytest.raises(WorkerCrashError):
                list(executor.imap_jobs(_square_job, jobs))
            assert list(executor.imap_jobs(_square_job, jobs)) == [
                0, 1, 4, 9, 16, 25,
            ]

    def test_single_job_inline_path_is_never_armed(self):
        # one job runs on the calling thread; arming it would kill the caller
        executor = ProcessExecutor(n_workers=2)
        with inject(FaultRule("worker_crash"), seed=3) as plan:
            assert executor.map_jobs(_square_job, [(3,)]) == [9]
        assert plan.fired["worker_crash"] == 0


@pytest.mark.skipif(not backend_is_available("gemm"),
                    reason="gemm backend unavailable")
class TestCompiledKernelFaults:
    """A compiled kernel failing at runtime degrades to the interpreter
    mid-sweep with identical results, recorded in the execution report."""

    def test_kernel_fault_degrades_to_interpreter_bitwise(self, store):
        outputs = {"m": expr.mean(store), "v": expr.variance(store)}
        baseline = engine.plan(outputs).execute()  # interpreted reference

        plan = engine.plan(outputs, backend="gemm")
        with inject(FaultRule("compiled_kernel"), seed=3) as faultplan:
            degraded = plan.execute(backend="gemm")
        assert faultplan.fired["compiled_kernel"] == 1
        assert plan.last_execution["runtime_fallbacks"] == 1
        assert "failed at runtime" in plan.last_execution["fallback_reason"]
        assert degraded == pytest.approx(baseline, rel=1e-6)

    def test_fault_off_compiled_run_records_no_fallback(self, store):
        plan = engine.plan({"m": expr.mean(store)}, backend="gemm")
        plan.execute(backend="gemm")
        assert plan.last_execution["runtime_fallbacks"] == 0
