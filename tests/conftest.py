"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionSettings, Compressor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


def smooth_field(shape, seed: int = 0, noise: float = 0.02) -> np.ndarray:
    """Smooth multi-frequency field plus small noise — realistic compressible data."""
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, s) for s in shape], indexing="ij")
    values = np.zeros(shape)
    for k, g in enumerate(grids, start=1):
        values += np.sin(2 * np.pi * k * g) + 0.3 * np.cos(3 * np.pi * g)
    if noise:
        values += noise * rng.standard_normal(shape)
    return values


@pytest.fixture
def field_3d() -> np.ndarray:
    """A 3-D smooth field whose shape is a multiple of (4, 4, 4)."""
    return smooth_field((16, 20, 24), seed=1)


@pytest.fixture
def field_2d() -> np.ndarray:
    """A 2-D smooth field whose shape is a multiple of (8, 8)."""
    return smooth_field((40, 48), seed=2)


@pytest.fixture
def settings_3d() -> CompressionSettings:
    return CompressionSettings(block_shape=(4, 4, 4), float_format="float32", index_dtype="int16")


@pytest.fixture
def settings_2d() -> CompressionSettings:
    return CompressionSettings(block_shape=(8, 8), float_format="float64", index_dtype="int16")


@pytest.fixture
def compressor_3d(settings_3d) -> Compressor:
    return Compressor(settings_3d)


@pytest.fixture
def compressor_2d(settings_2d) -> Compressor:
    return Compressor(settings_2d)
