"""Property: sharded stores are indistinguishable from one store, bit for bit.

The sharded layer's load-bearing invariants, swept by Hypothesis over 1–3
dimensions, ragged shard/chunk splits (every append draws its own row count;
only the final one may break block alignment) and arbitrary non-empty subsets
of the reductions, under serial, threaded and (one deterministic case) process
execution:

* **bit-identity** — a fused plan over a :class:`ShardedStore` produces
  exactly (``==``) the scalars of the same plan over a single
  :class:`CompressedStore` holding the identical chunk records, whether the
  sharded run serves folds from persisted partials or sweeps every chunk;
* **incremental == cold** — after K appends, the partial-served answers equal
  a cold full sweep bit for bit, decode zero chunks for one-pass subsets, and
  ``last_execution["incremental_groups"]`` records the served group; appends
  written with ``update_partials=False`` disable serving (clean fallback, same
  scalars) until :func:`refresh_partials` restores it.

The single-store reference is built by copying the sharded store's chunk
records verbatim through :class:`CompressedStoreWriter` — the two layouts then
hold byte-identical records in the same global order, so any divergence is the
sharded layer's fault, not compression noise.
"""

import tempfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np
from hypothesis import given, settings as hyp_settings, strategies as st

from repro import engine
from repro.core import CompressionSettings
from repro.engine import expr
from repro.parallel import ProcessExecutor, ThreadedExecutor
from repro.streaming import (
    CompressedStore,
    CompressedStoreWriter,
    ShardedStore,
    append_shard,
    init_sharded_store,
    refresh_partials,
)

#: op name -> two-pass?; reductions over one logical array (binary ops take
#: the same source twice, which keeps dot/cosine on the incremental path).
OPERATIONS = {
    "mean": False,
    "l2_norm": False,
    "variance": True,
    "standard_deviation": True,
    "dot": False,
    "cosine_similarity": False,
    "euclidean_distance": False,
}

#: euclidean_distance folds through ``diff_square``, which has no persisted
#: partial form — a pass-1 group containing it must sweep (clean fallback).
_NON_SERVABLE = frozenset({"euclidean_distance"})


def _servable(names) -> bool:
    """True when the fused pass-1 group can be served from shard partials."""
    return not _NON_SERVABLE.intersection(names)


@st.composite
def sharded_case(draw):
    """Arrays for shard 0 + K appends, settings, ragged splits, op subset."""
    ndim = draw(st.integers(1, 3))
    extents = {1: (2,), 2: (2, 4), 3: (2, 2, 4)}[ndim]
    block = draw(st.sampled_from([extents, tuple(reversed(extents))]))
    block_rows = block[0]
    tail = tuple(draw(st.integers(1, 9)) for _ in range(ndim - 1))
    slab_rows = draw(st.integers(1, 3)) * block_rows
    float_format = draw(st.sampled_from(["bfloat16", "float32", "float64"]))
    settings = CompressionSettings(
        block_shape=block, float_format=float_format, index_dtype="int16"
    )
    # every shard but the last must stay block-aligned for appends to be
    # legal; the final append may be ragged (it owns the global tail chunk)
    n_appends = draw(st.integers(0, 3))
    row_counts = [draw(st.integers(1, 4)) * block_rows for _ in range(n_appends)]
    row_counts.append(draw(st.integers(1, 3 * block_rows)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    arrays = [
        np.cumsum(rng.standard_normal((rows,) + tail), axis=0) * 0.05
        for rows in row_counts
    ]
    subset = draw(st.sets(st.sampled_from(sorted(OPERATIONS)), min_size=1))
    return arrays, settings, slab_rows, sorted(subset)


@contextmanager
def _sharded(arrays, settings, slab_rows, partials=None):
    """Build a sharded store from ``arrays`` (one shard each) in a temp dir.

    ``partials`` optionally gives a per-shard ``update_partials`` flag list.
    """
    flags = partials or [True] * len(arrays)
    with tempfile.TemporaryDirectory(prefix="sharded_prop_") as tmp:
        path = Path(tmp) / "grown.shards"
        init_sharded_store(
            path, arrays[0], settings, slab_rows=slab_rows,
            update_partials=flags[0],
        ).close()
        for array, flag in zip(arrays[1:], flags[1:]):
            append_shard(path, array, slab_rows=slab_rows,
                         update_partials=flag).close()
        yield path


@contextmanager
def _single_copy(sharded: ShardedStore, settings):
    """A single store holding the sharded store's chunk records verbatim."""
    with tempfile.TemporaryDirectory(prefix="sharded_ref_") as tmp:
        target = Path(tmp) / "single.pblzc"
        with CompressedStoreWriter(target, settings) as writer:
            for chunk in sharded.iter_chunks():
                writer.append(chunk)
        with CompressedStore(target) as store:
            yield store


def _expressions(names, store) -> dict:
    """Expression per requested op, binary ops taking the source twice."""
    x = expr.source(store)
    builders = {
        "mean": lambda: expr.mean(x),
        "l2_norm": lambda: expr.l2_norm(x),
        "variance": lambda: expr.variance(x),
        "standard_deviation": lambda: expr.standard_deviation(x),
        "dot": lambda: expr.dot(x, x),
        "cosine_similarity": lambda: expr.cosine_similarity(x, x),
        "euclidean_distance": lambda: expr.euclidean_distance(x, x),
    }
    return {name: builders[name]() for name in names}


def _drop_zero_norm_cosine(store, names):
    """cosine(x, x) is undefined on an all-zero field; swap in mean."""
    from repro.streaming import ops as stream_ops

    if "cosine_similarity" in names and stream_ops.l2_norm(store) == 0.0:
        return [n for n in names if n != "cosine_similarity"] or ["mean"]
    return names


class TestShardedMatchesSingleStore:
    @given(case=sharded_case())
    @hyp_settings(max_examples=30, deadline=None)
    def test_any_subset_bit_identical_served_and_swept(self, case):
        arrays, settings, slab_rows, names = case
        with _sharded(arrays, settings, slab_rows) as path:
            with ShardedStore(path) as sharded:
                names = _drop_zero_norm_cosine(sharded, names)
                with _single_copy(sharded, settings) as single:
                    reference = engine.plan(_expressions(names, single)).execute()

                # cold full sweep: partials disabled, every chunk decodes
                with ShardedStore(path, use_partials=False) as swept:
                    plan = engine.plan(_expressions(names, swept))
                    assert plan.execute() == reference
                    assert plan.last_execution["incremental_groups"] == 0
                    assert swept.chunks_read > 0

                # partial-served run: same scalars; a servable pass-1 group
                # decodes nothing, a non-servable one sweeps every chunk
                served = engine.plan(_expressions(names, sharded))
                before = sharded.chunks_read
                assert served.execute() == reference
                two_pass = any(OPERATIONS[name] for name in names)
                if _servable(names):
                    assert served.last_execution["incremental_groups"] == 1
                    expected = sharded.n_chunks if two_pass else 0
                    assert sharded.chunks_read - before == expected
                else:
                    assert served.last_execution["incremental_groups"] == 0
                    assert sharded.chunks_read - before >= sharded.n_chunks

    @given(case=sharded_case())
    @hyp_settings(max_examples=10, deadline=None)
    def test_threaded_executor_bit_identical(self, case):
        arrays, settings, slab_rows, names = case
        executor = ThreadedExecutor(n_workers=2)
        with _sharded(arrays, settings, slab_rows) as path:
            with ShardedStore(path, use_partials=False) as swept:
                names = _drop_zero_norm_cosine(swept, names)
                plan = engine.plan(_expressions(names, swept))
                assert plan.execute(executor=executor) == plan.execute()

    def test_process_executor_bit_identical(self):
        """One (slow to spawn) process-pool case over a three-shard store."""
        rng = np.random.default_rng(7)
        arrays = [
            np.cumsum(rng.standard_normal((rows, 12)), axis=0) * 0.05
            for rows in (24, 16, 10)
        ]
        settings = CompressionSettings(
            block_shape=(4, 4), float_format="float32", index_dtype="int16"
        )
        names = sorted(OPERATIONS)
        with _sharded(arrays, settings, 8) as path:
            with ShardedStore(path, use_partials=False) as swept:
                plan = engine.plan(_expressions(names, swept))
                assert plan.execute(
                    executor=ProcessExecutor(n_workers=2)
                ) == plan.execute()
            # region reads assemble the same bytes as the single-store copy
            with ShardedStore(path) as sharded:
                with _single_copy(sharded, settings) as single:
                    for region in (slice(0, 24), slice(20, 44), slice(3, 50, 2), 37):
                        assert np.array_equal(
                            sharded.load_region(region), single.load_region(region)
                        )
                    assert np.array_equal(sharded.load(), single.load())


class TestIncrementalEqualsColdSweep:
    @given(case=sharded_case())
    @hyp_settings(max_examples=20, deadline=None)
    def test_partials_after_appends_equal_cold_sweep(self, case):
        arrays, settings, slab_rows, names = case
        with _sharded(arrays, settings, slab_rows) as path:
            with ShardedStore(path, use_partials=False) as swept:
                names = _drop_zero_norm_cosine(swept, names)
                cold = engine.plan(_expressions(names, swept)).execute()
            with ShardedStore(path) as sharded:
                assert sharded.partials_fresh()
                plan = engine.plan(_expressions(names, sharded))
                assert plan.execute() == cold
                assert plan.last_execution["incremental_groups"] == (
                    1 if _servable(names) else 0
                )

    @given(case=sharded_case(), stale_last=st.booleans())
    @hyp_settings(max_examples=15, deadline=None)
    def test_stale_appends_fall_back_until_refreshed(self, case, stale_last):
        arrays, settings, slab_rows, names = case
        flags = [True] * len(arrays)
        flags[-1 if stale_last else 0] = False
        with _sharded(arrays, settings, slab_rows, partials=flags) as path:
            with ShardedStore(path, use_partials=False) as swept:
                names = _drop_zero_norm_cosine(swept, names)
                # keep the subset servable so fresh-vs-stale is observable
                names = [n for n in names if n not in _NON_SERVABLE] or ["mean"]
                cold = engine.plan(_expressions(names, swept)).execute()

            with ShardedStore(path) as stale:
                assert not stale.partials_fresh()
                assert stale.fold_state("square") is None
                plan = engine.plan(_expressions(names, stale))
                assert plan.execute() == cold  # clean fallback, same scalars
                assert plan.last_execution["incremental_groups"] == 0
                revision_before = stale.revision

            assert refresh_partials(path) == 1
            with ShardedStore(path) as fresh:
                assert fresh.partials_fresh()
                assert fresh.revision == revision_before  # content unchanged
                plan = engine.plan(_expressions(names, fresh))
                assert plan.execute() == cold
                assert plan.last_execution["incremental_groups"] == 1
